"""Ablations of FUNNEL's design choices (not in the paper's tables).

Each ablation isolates one mechanism DESIGN.md calls out:

* **IKA vs exact SVD** — same transform, the Krylov path must agree at
  the detection peak and win on amortised per-window cost.
* **median/MAD gate** — without Eq. 11 the raw subspace score fires on
  plain noise; the gate suppresses stable sections.
* **DiD on/off** — the accuracy gap between ``funnel`` and
  ``improved_sst`` on seasonal KPIs is entirely the DiD stage.
* **omega sensitivity** — 5 (quick mitigation) vs 9 (evaluation) vs 15
  (precise assessment): detection delay grows with omega while the
  false-positive behaviour stays controlled.
* **MRLS sparsity scale** — lower lambda delays the l1 absorption of a
  young shift (slower detection), demonstrating the mechanism behind
  MRLS's delay profile.
"""

import time

import numpy as np
import pytest

from repro.baselines.mrls import MrlsDetector, MrlsParams
from repro.baselines.wow import WeekOverWeekDetector, WowParams
from repro.core.funnel import Funnel, FunnelConfig
from repro.core.ika import IkaSST
from repro.core.rsst import ImprovedSST, ImprovedSSTParams
from repro.core.scoring import robust_normalise


@pytest.fixture(scope="module")
def step_series():
    rng = np.random.default_rng(17)
    x = 50.0 + rng.normal(0, 1.0, size=400)
    x[250:] += 5.0
    return x


def test_ablation_ika_vs_exact_svd(benchmark, step_series):
    xs = robust_normalise(step_series, baseline=250)
    exact = ImprovedSST()
    ika = IkaSST()

    exact_scores = exact.scores(xs)
    ika_scores = benchmark(ika.scores, xs)

    t0 = time.perf_counter()
    exact.scores(xs)
    exact_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    ika.scores(xs)
    ika_time = time.perf_counter() - t0
    print("\nIKA speedup over exact SVD: %.1fx" % (exact_time / ika_time))
    print("peak agreement: exact@%d=%.2f, ika@%d=%.2f"
          % (np.argmax(exact_scores), exact_scores.max(),
             np.argmax(ika_scores), ika_scores.max()))

    assert ika_time < exact_time
    assert abs(int(np.argmax(exact_scores))
               - int(np.argmax(ika_scores))) <= 5
    active = slice(17, -17)
    corr = np.corrcoef(exact_scores[active], ika_scores[active])[0, 1]
    assert corr > 0.9


def test_ablation_median_mad_gate(benchmark, step_series):
    """The Eq. 11 gate localises the change: without it the subspace
    score is substantial *everywhere* on noisy data (the documented SST
    noise-fragility), so the change point barely stands out; the gate
    multiplies in the robust location/scale movement and makes the
    change-region score dominate the quiet regions."""
    xs = robust_normalise(step_series, baseline=250)
    gated = IkaSST(ImprovedSSTParams(gated=True))
    raw = IkaSST(ImprovedSSTParams(gated=False))
    gated_scores = benchmark.pedantic(lambda: gated.scores(xs),
                                      rounds=1, iterations=1)
    raw_scores = raw.scores(xs)

    def contrast(scores):
        change_region = scores[245:265].max()
        quiet = np.median(scores[30:230])
        return change_region / max(quiet, 1e-9)

    raw_contrast = contrast(raw_scores)
    gated_contrast = contrast(gated_scores)
    print("\nchange-vs-quiet score contrast: raw %.1fx, gated %.1fx"
          % (raw_contrast, gated_contrast))
    # Raw discordance is high on plain noise too...
    assert np.median(raw_scores[30:230]) > 0.2
    # ...the gate makes the change region stand out far more sharply.
    assert gated_contrast > 2.0 * raw_contrast


def test_ablation_did_on_off(benchmark, table1_result):
    rows = benchmark.pedantic(lambda: table1_result.table1(
        methods=["funnel", "improved_sst"]), rounds=1, iterations=1)
    by = {(r["method"], r["type"]): r for r in rows}
    print()
    for kpi_type in ("seasonal", "stationary", "variable"):
        with_did = by[("funnel", kpi_type)]["accuracy"]
        without = by[("improved_sst", kpi_type)]["accuracy"]
        print("%-10s accuracy with DiD %.4f, without %.4f"
              % (kpi_type, with_did, without))
        assert with_did >= without
    # The seasonal gap is the big one.
    gap_seasonal = (by[("funnel", "seasonal")]["accuracy"]
                    - by[("improved_sst", "seasonal")]["accuracy"])
    assert gap_seasonal > 0.1


def test_ablation_omega_sensitivity(benchmark, step_series):
    delays = {}

    def run():
        for omega in (5, 9, 15):
            cfg = FunnelConfig(sst=ImprovedSSTParams(omega=omega))
            changes = Funnel(cfg).detect(step_series, change_index=250)
            delays[omega] = changes[0].index - 250 if changes else None
        return delays

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ndetection delay by omega:", delays)
    assert all(d is not None for d in delays.values())
    # Larger windows look further ahead before they can declare.
    assert delays[5] <= delays[9] <= delays[15]


def test_ablation_mrls_absorption_lag(benchmark):
    """The l1 absorption lag: a freshly-started level shift scores much
    lower than the same shift once it has aged into the window — the
    mechanism behind MRLS's detection delay.  Lower RPCA sparsity
    weights shift where the absorption happens (reported, not asserted:
    the crossover point is seed-dependent)."""
    rng = np.random.default_rng(31)
    x = 10.0 + 0.3 * rng.normal(size=200)
    x[120:] += 1.5

    def stats_for(scale):
        detector = MrlsDetector(MrlsParams(rpca_sparsity_scale=scale))
        young = detector.statistic_for_window(x[123 - 32:123])
        aged = detector.statistic_for_window(x[136 - 32:136])
        changes = detector.detect(x)
        post = [c for c in changes if c.index >= 120]
        delay = post[0].index - 120 if post else None
        return young, aged, delay

    results = benchmark.pedantic(
        lambda: {s: stats_for(s) for s in (1.0, 0.7)},
        rounds=1, iterations=1)
    print()
    for scale, (young, aged, delay) in results.items():
        print("lambda x%.1f: young-step stat %.2f, aged-step stat %.2f, "
              "detection delay %s min" % (scale, young, aged, delay))
        assert aged > young            # the absorption lag exists
    assert results[1.0][2] is not None # the shift is eventually caught


def test_ablation_week_over_week_vs_did(benchmark):
    """The classic seasonal heuristic (week-over-week, related work
    [10]) handles recurring patterns like FUNNEL's historical DiD does —
    but unlike DiD it cannot tell a fleet-wide event from a
    treated-group impact, because it has no notion of a control group."""
    from repro.core.funnel import Funnel
    from repro.synthetic.patterns import SeasonalPattern
    rng = np.random.default_rng(41)
    pattern = SeasonalPattern(base=200.0, daily_amplitude=0.6,
                              noise_sigma=3.0, weekend_factor=1.0,
                              daily_events=((9 * 3600, 11 * 3600, 0.4),))
    timestamps = np.arange(5 * 1440, dtype=np.int64) * 60
    clean = pattern.sample(timestamps, rng)
    incident = clean.copy()
    at = 4 * 1440 + 840
    incident[at:] -= 100.0

    wow = WeekOverWeekDetector(WowParams(period=1440, n_periods=3))

    def run():
        return (wow.detect(clean, first_only=True),
                wow.detect(incident, first_only=True))

    clean_hits, incident_hits = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    print("\nWoW on clean seasonality: %d alarms; on the incident: "
          "declared at +%s min"
          % (len(clean_hits),
             incident_hits[0].index - at if incident_hits else "n/a"))
    assert clean_hits == []            # seasonal events absorbed
    assert incident_hits               # the real shift is caught

    # The structural limitation: a fleet-wide (shared) event is
    # indistinguishable from impact for WoW, while DiD separates them.
    funnel = Funnel()
    window = incident[at - 120:at + 120]
    history = np.vstack([
        incident[at - 120 - d * 1440:at + 120 - d * 1440]
        for d in range(1, 4)
    ])
    verdict = funnel.assess(window, 120, history=history)
    print("FUNNEL (historical DiD) on the same incident:",
          verdict.verdict.value)
    assert verdict.positive
