"""Chaos-harness overhead: fault injection and checkpointing vs. clean.

Replays one synthetic scenario four ways — clean, under the
``drop-delay-dup`` fault plan, with periodic checkpointing, and with
both — and writes ``benchmarks/BENCH_chaos.json`` with per-mode wall
time, fragments/sec and injected-fault counts.  The point of the
numbers: the harness must stay cheap enough to leave on in CI (the
fault plan is stateless hashing per event; a checkpoint is one JSONL
write every N ticks), and the faulted replay must still deliver the
full verdict set.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_chaos_overhead.py
"""

import json
import pathlib

from repro.engine import FleetScenarioSpec, reset_shared_cache
from repro.faults import DELAY, preset_plan
from repro.faults.injector import FAULTS_INJECTED_METRIC
from repro.live import parity_live_config, replay_scenario
from repro.live.checkpoint import CHECKPOINTS_METRIC
from repro.telemetry.timeseries import MINUTE

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_chaos.json"
CKPT_PATH = pathlib.Path(__file__).parent / ".bench_chaos.ckpt"

SPEC = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=4,
                         window_bins=120, change_offset=60,
                         history_days=1, seed=7)
FAULT_SEED = 11
CHECKPOINT_EVERY = 25


def _config(plan=None):
    if plan is None:
        return parity_live_config(SPEC)
    grace = max((rule.delay_bins for rule in plan.rules
                 if rule.kind == DELAY), default=0) * MINUTE
    return parity_live_config(SPEC, repair_from_store=True,
                              close_grace_seconds=grace)


def _measure(mode: str, plan=None, checkpoint: bool = False) -> dict:
    reset_shared_cache()
    kwargs = {}
    if checkpoint:
        kwargs = {"checkpoint_path": str(CKPT_PATH),
                  "checkpoint_every": CHECKPOINT_EVERY}
    report = replay_scenario(SPEC, live_config=_config(plan),
                             fault_plan=plan, **kwargs)
    counters = report.service_report["counters"]
    return {
        "mode": mode,
        "wall_seconds": round(report.wall_seconds, 4),
        "fragments_per_second": round(report.fragments_per_second, 1),
        "verdicts": len(report.verdicts),
        "faults_injected": counters.get(FAULTS_INJECTED_METRIC, 0),
        "checkpoints_written": counters.get(CHECKPOINTS_METRIC, 0),
    }


def run_bench() -> dict:
    plan = preset_plan("drop-delay-dup", seed=FAULT_SEED)
    runs = [
        _measure("clean"),
        _measure("faults", plan=plan),
        _measure("checkpoint", checkpoint=True),
        _measure("faults+checkpoint", plan=plan, checkpoint=True),
    ]
    clean = runs[0]["wall_seconds"]
    for run in runs:
        run["overhead_x"] = round(run["wall_seconds"] / clean, 2)
    report = {"spec": {"n_changes": SPEC.n_changes,
                       "n_servers": SPEC.n_servers,
                       "window_bins": SPEC.window_bins},
              "fault_plan": plan.describe(),
              "checkpoint_every_ticks": CHECKPOINT_EVERY,
              "runs": runs}
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if CKPT_PATH.exists():
        CKPT_PATH.unlink()
    return report


def test_chaos_overhead(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Chaos-harness overhead (vs clean replay):")
    for run in report["runs"]:
        print("  %-17s %6.3fs (%.2fx)  faults=%-5d checkpoints=%d"
              % (run["mode"], run["wall_seconds"], run["overhead_x"],
                 run["faults_injected"], run["checkpoints_written"]))

    runs = {run["mode"]: run for run in report["runs"]}
    assert runs["faults"]["faults_injected"] > 0
    assert runs["checkpoint"]["checkpoints_written"] > 0
    # every mode still settles the full change set with verdicts
    for run in report["runs"]:
        assert run["verdicts"] == runs["clean"]["verdicts"]
    # the harness stays cheap: well under an order of magnitude
    assert runs["faults+checkpoint"]["overhead_x"] < 10


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
