"""Core scoring throughput: ``IkaSST.scores_batch`` over a series grid.

The batched scorer is the arithmetic floor of the whole pipeline —
every per-tick pooled/fused pass in the live service and every offline
sweep bottoms out in one ``scores_batch`` call.  This bench sweeps an
``n_series x T`` grid (fleet width x series length), measures scored
points/sec for the stacked call, and compares it against the naive
per-row loop (``scores`` once per series) to record the stacking
speedup.  Results land in ``benchmarks/BENCH_core.json``.

Points/sec counts *scored* indices (``hi - lo`` per row), not raw
samples, so cells are comparable across T: the figure is detector
decisions per second, the unit fleet capacity planning uses.

Scale with ``REPRO_BENCH_CORE_REPEATS`` (timing repeats per cell,
default 3; the best repeat is kept).  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_core_scoring.py
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.core.ika import IkaSST

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_core.json"

#: (n_series, T) cells.  T=64 is the live-tick regime — the pooled /
#: fused tick scores many short pending segments per pass, and that is
#: where stacking pays (per-call setup amortises across rows).  The
#: longer cells cover warmup rescores and offline sweeps, where the
#: einsum windows grow memory-bound and stacking converges to ~1x.
GRID = (
    (16, 64),
    (64, 64),
    (256, 64),
    (8, 256),
    (64, 256),
    (64, 1024),
)

#: Per-row loop comparison skipped above this (the loop is the slow
#: side by construction; no need to burn minutes re-proving it).
LOOP_MAX_SERIES = 256


def _repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_CORE_REPEATS", "3"))


def _grid_stack(rng: np.random.Generator, n_series: int, width: int):
    """Step-at-midpoint streams, the scenario generators' shape."""
    stack = 50.0 + rng.normal(0.0, 0.5, size=(n_series, width))
    stack[:, width // 2:] += 4.0
    return stack


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_cell(scorer: IkaSST, rng: np.random.Generator,
                  n_series: int, width: int) -> dict:
    stack = _grid_stack(rng, n_series, width)
    lo, hi = scorer._score_range(width)
    scored_points = n_series * (hi - lo)
    repeats = _repeats()

    batched = scorer.scores_batch(stack)
    batch_seconds = _best_seconds(lambda: scorer.scores_batch(stack),
                                  repeats)
    doc = {
        "n_series": n_series,
        "series_length": width,
        "scored_points": scored_points,
        "batch_seconds": round(batch_seconds, 5),
        "points_per_second": round(scored_points / batch_seconds, 1),
    }
    if n_series <= LOOP_MAX_SERIES:
        looped = np.stack([scorer.scores(row) for row in stack])
        # The stacked call is the per-row arithmetic, bitwise.
        assert looped.tobytes() == batched.tobytes()
        loop_seconds = _best_seconds(
            lambda: [scorer.scores(row) for row in stack], repeats)
        doc["loop_seconds"] = round(loop_seconds, 5)
        doc["stacking_speedup"] = round(loop_seconds / batch_seconds, 3)
    return doc


def run_bench() -> dict:
    scorer = IkaSST()
    rng = np.random.default_rng(7)
    cells = [_measure_cell(scorer, rng, n_series, width)
             for n_series, width in GRID]
    report = {
        "omega": scorer.params.omega,
        "eta": scorer.params.eta,
        "repeats": _repeats(),
        "cells": cells,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_core_scoring_throughput(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Core scores_batch throughput (omega=%d):" % report["omega"])
    for cell in report["cells"]:
        speedup = cell.get("stacking_speedup")
        print("  %4d series x %5d bins: %12.0f points/s%s"
              % (cell["n_series"], cell["series_length"],
                 cell["points_per_second"],
                 "" if speedup is None
                 else ", %.2fx vs per-row loop" % speedup))

    for cell in report["cells"]:
        assert cell["points_per_second"] > 0
        assert cell["scored_points"] > 0
    by_key = {(c["n_series"], c["series_length"]): c
              for c in report["cells"]}
    # In the tick regime stacking must clearly beat the per-row loop
    # (measured ~2x; 1.3 floor absorbs timer noise on busy hosts).
    assert by_key[(64, 64)]["stacking_speedup"] >= 1.3
    assert by_key[(256, 64)]["stacking_speedup"] >= 1.3
    # In the memory-bound long-T regime stacking may only break even,
    # but it must never collapse below the loop (noise-tolerant floor).
    assert by_key[(64, 1024)]["stacking_speedup"] >= 0.7
    # Per-point throughput must hold up as the batch widens at fixed
    # short T — per-call overhead amortises across rows (0.9 floor).
    assert by_key[(256, 64)]["points_per_second"] >= \
        0.9 * by_key[(16, 64)]["points_per_second"]


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
