"""Engine throughput: items/sec, serial vs. process-pool execution.

Runs the same synthetic fleet job set through
:func:`repro.engine.execute_jobs` serially and with 1/2/4 workers, and
writes ``benchmarks/BENCH_engine.json`` with the measured items/sec per
configuration (plus the host's usable core count — the speedup a pool
can deliver is bounded by it, so the scaling assertion only fires when
the cores are actually there).

Scale with ``REPRO_BENCH_ENGINE_CHANGES`` (changes in the synthetic
fleet scenario, default 6).  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

import json
import os
import pathlib
import time

from repro.engine import (EngineConfig, FleetScenarioSpec,
                          SyntheticFleetSource, execute_jobs,
                          spec_for_method)

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_engine.json"

WORKER_COUNTS = (0, 1, 2, 4)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                        # non-Linux fallback
        return os.cpu_count() or 1


def _fleet_jobs():
    n_changes = int(os.environ.get("REPRO_BENCH_ENGINE_CHANGES", "6"))
    source = SyntheticFleetSource(FleetScenarioSpec(
        n_services=5, n_servers=40, n_changes=n_changes,
        history_days=1, seed=13))
    return list(source.plan_jobs([spec_for_method("funnel"),
                                  spec_for_method("improved_sst")]))


def _measure(jobs, workers: int) -> dict:
    config = EngineConfig(workers=workers, batch_size=8)
    started = time.perf_counter()
    results = execute_jobs(jobs, config=config)
    elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "jobs": len(results),
        "seconds": round(elapsed, 4),
        "items_per_second": round(len(results) / elapsed, 2),
    }


def run_bench() -> dict:
    jobs = _fleet_jobs()
    runs = [_measure(jobs, workers) for workers in WORKER_COUNTS]
    serial = runs[0]["items_per_second"]
    report = {
        "cpus": _usable_cpus(),
        "job_count": len(jobs),
        "runs": runs,
        "speedup_vs_serial": {
            str(r["workers"]): round(r["items_per_second"] / serial, 3)
            for r in runs[1:]
        },
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_engine_throughput(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Engine throughput (%d jobs, %d usable cores):"
          % (report["job_count"], report["cpus"]))
    for run in report["runs"]:
        label = "serial" if run["workers"] == 0 else \
            "%d workers" % run["workers"]
        print("  %-10s %8.1f items/s" % (label, run["items_per_second"]))

    for run in report["runs"]:
        assert run["jobs"] == report["job_count"]
        assert run["items_per_second"] > 0
    # Pool scaling needs physical cores; a 1-core container cannot show
    # it, so the >= 1.5x criterion is asserted only where it can hold.
    if report["cpus"] >= 4:
        assert report["speedup_vs_serial"]["4"] >= 1.5


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
