"""Engine throughput: items/sec — serial vs. pool, per-item vs. batched.

Runs the same synthetic fleet job set through
:func:`repro.engine.execute_jobs` along two dimensions:

* **per-item** execution at 0/1/2/4 workers (the classic scaling rows);
* **batched** detect (``detect_mode="batched"``: one stacked scoring
  pass per batch, per-item attribution for declared jobs only) over a
  full workers x batch-size grid.

and writes ``benchmarks/BENCH_engine.json`` with items/sec per
configuration, the batched-vs-per-item serial speedup, and the pooled
batched speedups.  The host's usable core count is recorded because the
speedup a process pool can deliver is bounded by it — the scaling
assertions only fire when the cores are actually there; the
batched-vs-per-item ratio is algorithmic and holds on any host.

Scale with ``REPRO_BENCH_ENGINE_CHANGES`` (changes in the synthetic
fleet scenario, default 6).  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

import json
import os
import pathlib
import time

from repro.engine import (EngineConfig, FleetScenarioSpec,
                          SyntheticFleetSource, execute_jobs,
                          reset_shared_cache, spec_for_method)

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_engine.json"

WORKER_COUNTS = (0, 1, 2, 4)
GRID_WORKERS = (0, 1, 2, 4)
GRID_BATCH_SIZES = (8, 32)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                        # non-Linux fallback
        return os.cpu_count() or 1


def _fleet_jobs():
    n_changes = int(os.environ.get("REPRO_BENCH_ENGINE_CHANGES", "6"))
    source = SyntheticFleetSource(FleetScenarioSpec(
        n_services=5, n_servers=40, n_changes=n_changes,
        history_days=1, seed=13))
    return list(source.plan_jobs([spec_for_method("funnel"),
                                  spec_for_method("improved_sst")]))


def _measure(jobs, workers: int, batch_size: int = 8,
             detect_mode: str = "per_item", repeats: int = 3) -> dict:
    # Best-of-N: each configuration is timed ``repeats`` times and the
    # fastest run wins, damping scheduler noise on small shared hosts.
    best = None
    for _ in range(max(1, repeats)):
        reset_shared_cache()
        config = EngineConfig(workers=workers, batch_size=batch_size,
                              detect_mode=detect_mode)
        started = time.perf_counter()
        results = execute_jobs(jobs, config=config)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, len(results))
    elapsed, n_results = best
    return {
        "workers": workers,
        "batch_size": batch_size,
        "detect_mode": detect_mode,
        "jobs": n_results,
        "seconds": round(elapsed, 4),
        "items_per_second": round(n_results / elapsed, 2),
    }


def run_bench() -> dict:
    jobs = _fleet_jobs()
    runs = [_measure(jobs, workers) for workers in WORKER_COUNTS]
    grid = [_measure(jobs, workers, batch_size, detect_mode="batched")
            for workers in GRID_WORKERS
            for batch_size in GRID_BATCH_SIZES]
    serial = runs[0]["items_per_second"]
    batched_by_key = {(r["workers"], r["batch_size"]): r["items_per_second"]
                      for r in grid}
    batched_serial = batched_by_key[(0, GRID_BATCH_SIZES[0])]
    report = {
        "cpus": _usable_cpus(),
        "job_count": len(jobs),
        "runs": runs,
        "batched_grid": grid,
        "speedup_vs_serial": {
            str(r["workers"]): round(r["items_per_second"] / serial, 3)
            for r in runs[1:]
        },
        # The tentpole dimension: one stacked scoring pass + vectorised
        # candidate gating vs. the per-item reference path, both serial.
        "batched_vs_per_item_serial": round(batched_serial / serial, 3),
        # Satellite: the pool regression fix — packed (deduped) payloads
        # mean pooled batched runs are no longer slower than serial.
        "pooled_batched_speedup": {
            str(workers): round(
                batched_by_key[(workers, GRID_BATCH_SIZES[0])]
                / batched_serial, 3)
            for workers in GRID_WORKERS[1:]
        },
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_engine_throughput(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Engine throughput (%d jobs, %d usable cores):"
          % (report["job_count"], report["cpus"]))
    for run in report["runs"]:
        label = "serial" if run["workers"] == 0 else \
            "%d workers" % run["workers"]
        print("  per-item %-10s %8.1f items/s"
              % (label, run["items_per_second"]))
    for run in report["batched_grid"]:
        label = "serial" if run["workers"] == 0 else \
            "%d workers" % run["workers"]
        print("  batched  %-10s bs=%-3d %8.1f items/s"
              % (label, run["batch_size"], run["items_per_second"]))
    print("  batched/per-item (serial): %.2fx"
          % report["batched_vs_per_item_serial"])

    for run in report["runs"] + report["batched_grid"]:
        assert run["jobs"] == report["job_count"]
        assert run["items_per_second"] > 0
    # Stacked detect amortises scoring and gating regardless of cores;
    # the 1.5x floor leaves headroom for timer noise (typical: >= 2x).
    assert report["batched_vs_per_item_serial"] >= 1.5
    # Pool scaling needs physical cores; a 1-core container cannot show
    # it, so the scaling criteria are asserted only where they can hold.
    if report["cpus"] >= 4:
        assert report["speedup_vs_serial"]["4"] >= 1.5
    if report["cpus"] >= 2:
        assert report["pooled_batched_speedup"]["2"] >= 1.0


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
