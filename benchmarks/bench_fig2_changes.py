"""Fig. 2 — anatomy of the KPI changes FUNNEL targets.

The paper's Fig. 2 shows a normalised KPI exhibiting the two change
shapes FUNNEL declares — a level shift and a ramp up — with their start
and end points annotated.  This bench regenerates the exemplar series,
runs the declaration pipeline on it, and checks that both changes are
found, classified correctly, and that their estimated starts line up
with the injected ground truth.
"""

import numpy as np

from repro.core.funnel import Funnel
from repro.eval.report import render_ascii_series
from repro.synthetic.effects import LevelShift, Ramp, apply_effects


def build_fig2_series(seed=2):
    rng = np.random.default_rng(seed)
    base = 0.55 + 0.012 * rng.normal(size=1200)
    return apply_effects(base, [
        Ramp(start=200, magnitude=0.35, duration=120),      # ramp up
        LevelShift(start=700, magnitude=-0.45),             # level shift
    ])


def test_fig2_level_shift_and_ramp(benchmark):
    series = benchmark.pedantic(build_fig2_series, rounds=1, iterations=1)
    print()
    print(render_ascii_series(series, title="Fig. 2: normalised KPI with "
                              "a ramp up (t=200..320) and a level shift "
                              "(t=700)"))

    funnel = Funnel()
    ramp_changes = funnel.detect(series, change_index=195)
    assert ramp_changes, "the ramp must be declared"
    ramp = ramp_changes[0]
    print("ramp:  declared kind=%s start=%d detected=%d"
          % (ramp.kind, ramp.start_index, ramp.index))

    shift_changes = funnel.detect(series, change_index=695)
    assert shift_changes, "the level shift must be declared"
    shift = shift_changes[0]
    print("shift: declared kind=%s start=%d direction=%+d"
          % (shift.kind, shift.start_index, shift.direction))

    assert 195 <= ramp.start_index <= 260
    assert shift.kind == "level_shift"
    assert 695 <= shift.start_index <= 710
    assert shift.direction == -1
