"""Fig. 5 — CCDFs of detection delay for FUNNEL, CUSUM and MRLS.

Paper medians: FUNNEL 13.2 min, MRLS 21.3 min, CUSUM 37.7 min — FUNNEL's
median delay is 38.02% below MRLS's and 64.99% below CUSUM's, and its
distribution is the most concentrated (shortest worst case).

Reproduction notes: FUNNEL's median lands at the paper's value (its
floor is the 7-minute persistence rule plus the scoring lookahead);
CUSUM is reliably the slowest.  Our MRLS operates at the calibrated
fast-but-noisy point the paper mentions ("occasionally, MRLS can detect
a level shift within 7 minutes, at the cost of much more false
positives" — visible in its Table 1 TNR), so its median sits below
FUNNEL's here; see EXPERIMENTS.md.
"""

from repro.eval.report import render_ccdf


def test_fig5_delay_ccdf(benchmark, table1_result):
    delays = benchmark.pedantic(lambda: table1_result.delays, rounds=1,
                                iterations=1)
    print()
    curves = {}
    for method in ("funnel", "cusum", "mrls"):
        if method in delays and len(delays[method]):
            curves[method] = delays[method].ccdf()
    print(render_ccdf(curves))
    for method, dist in sorted(delays.items()):
        print("%-12s n=%3d median=%5.1f min  p90=%5.1f  max=%5.1f"
              % (method, len(dist), dist.median, dist.percentile(90),
                 dist.percentile(100)))
    funnel = delays["funnel"]
    cusum = delays["cusum"]
    print("FUNNEL median reduction vs CUSUM: %.1f%% (paper: 64.99%%)"
          % funnel.reduction_vs(cusum))
    if "mrls" in delays and len(delays["mrls"]):
        print("FUNNEL median reduction vs MRLS: %.1f%% (paper: 38.02%%)"
              % funnel.reduction_vs(delays["mrls"]))

    # Headline shape: FUNNEL beats CUSUM decisively, and its
    # distribution is tightly concentrated around the persistence floor.
    assert funnel.median < cusum.median
    assert funnel.percentile(90) <= cusum.percentile(90)
    assert funnel.median <= 20.0          # paper: 13.2 min
    assert funnel.percentile(90) - funnel.median <= 15.0
