"""Fig. 6 — the Redis load-balancing case study (section 5.1).

Paper: after a configuration change aimed at balancing traffic, FUNNEL
determined that 16 of 118 KPIs in the impact set changed — NIC
throughput shifted *down* on the saturated class A Redis servers
(Fig. 6a) and *up* on the underused class B servers (Fig. 6b), despite
NIC throughput's strong natural variability.
"""

from repro.eval.report import render_ascii_series
from repro.simulation.cases import redis_case


def test_fig6_redis_load_balancing(benchmark):
    result = benchmark.pedantic(redis_case, rounds=1, iterations=1)
    print()
    print(render_ascii_series(
        result.class_a_example,
        title="Fig. 6a: class A Redis NIC throughput (config change at "
              "t=%d)" % result.change_index))
    print(render_ascii_series(
        result.class_b_example,
        title="Fig. 6b: class B Redis NIC throughput"))
    a_down = sum(1 for k in result.flagged
                 if "redis-a" in k and result.directions[k] < 0)
    b_up = sum(1 for k in result.flagged
               if "redis-b" in k and result.directions[k] > 0)
    false_flags = [k for k in result.flagged if "other" in k]
    print("flagged %d / %d KPIs (paper: 16 / 118): %d class-A down, "
          "%d class-B up, %d spurious"
          % (result.flagged_count, result.total_kpis, a_down, b_up,
             len(false_flags)))

    # Paper shape: ~16 of 118 KPIs flagged, split between the NIC
    # throughput of the two server classes, in opposite directions, and
    # no unaffected KPI dragged in.
    assert 12 <= result.flagged_count <= 18
    assert a_down >= 6 and b_up >= 6
    assert len(false_flags) <= 1
    for name in result.flagged:
        if "redis-a" in name:
            assert result.directions[name] == -1
        elif "redis-b" in name:
            assert result.directions[name] == +1
