"""Fig. 7 — the advertising anti-cheat incident (section 5.2).

Paper: a software upgrade silently broke the anti-cheating check for
iPhone browsers, so effective advertisement clicks (a strongly seasonal
KPI) dropped sharply; the operations team found it manually after 1.5 h,
while FUNNEL — had it been in the loop — flagged it 10 minutes after the
upgrade, attributing the drop to the software change despite the
seasonality.
"""

from repro.eval.report import render_ascii_series
from repro.simulation.cases import advertising_case
from repro.types import Verdict


def test_fig7_advertising_incident(benchmark):
    result = benchmark.pedantic(advertising_case, rounds=1, iterations=1)
    print()
    window = result.clicks[result.change_index - 600:
                           result.change_index + 600]
    print(render_ascii_series(
        window,
        title="Fig. 7: normalised effective clicks (upgrade at centre, "
              "recovery %d min later)" % (result.recovery_index
                                          - result.change_index)))
    print("verdict: %s, control: %s, DiD alpha: %.2f"
          % (result.assessment.verdict.value, result.assessment.control,
             result.assessment.did_estimate))
    print("detection delay: %d min (paper: ~10 min; manual assessment: "
          "%d min)" % (result.detection_delay_minutes,
                       result.manual_delay_minutes))

    assert result.assessment.verdict is Verdict.CAUSED_BY_CHANGE
    assert result.assessment.control == "history"
    assert result.assessment.change.direction == -1
    assert result.detected_within_10_minutes
    assert result.detection_delay_minutes < result.manual_delay_minutes / 3
