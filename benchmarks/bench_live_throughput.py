"""Live-service throughput: fragments/sec and detection lag vs. fleet size.

Replays the same synthetic scenario through
:func:`repro.live.replay_scenario` at 1x / 4x / 16x the base fleet size
(servers scale; so do the subscribed KPI streams), once with
per-detector scoring, once with the pooled scoring loop
(``pooled_scoring=True``: every tracker's pending segment scored in one
stacked call per tick), and once with the fused ingest plane on top
(``fused_ingest=True``: store→queue→arena moves whole tick batches and
the arena scatter-writes + broadcast-normalises them), and writes
``benchmarks/BENCH_live.json`` with fragments/sec, p50/p99 detection
lag in bins, per-scale wall time, and the pooled- and
fused-vs-per-detector speedups per scale.  A final forced-overload
round (tiny queues, throttled drain budget) verifies that backpressure
keeps the peak queue depth bounded while the shed counters account for
every dropped fragment.

A second round sweeps the **shards axis** of the multi-process cluster
runtime (:mod:`repro.cluster`) on the 16x fleet and writes
``benchmarks/BENCH_cluster.json``.  Throughput there is scenario
fragments over the **critical path** — the slowest shard's CPU seconds
(``time.process_time``, measured inside each worker) plus the fan-in
merge — because shards burn CPU concurrently: on a many-core host the
elapsed wall converges to the critical path, while on a single-core CI
host the shards timeshare and elapsed stays flat even though the
per-shard work reduction is real.  Both accountings plus the host's CPU
count are recorded.

Scale with ``REPRO_BENCH_LIVE_CHANGES`` (changes per scenario, default
2) and ``REPRO_BENCH_CLUSTER_CHANGES`` (cluster round, default 4).
Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_live_throughput.py
"""

import json
import os
import pathlib
import tempfile

from repro.cluster import cluster_replay_scenario
from repro.engine import FleetScenarioSpec
from repro.live import ClusterConfig, parity_live_config, replay_scenario
from repro.live.assessor import FUSED_BATCHES_METRIC, FUSED_ROWS_METRIC
from repro.live.pool import POOLED_BATCHES_METRIC, POOLED_SERIES_METRIC
from repro.live.queues import SHED_FRAGMENTS_METRIC
from repro.obs.metrics import Histogram

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_live.json"
CLUSTER_OUT_PATH = pathlib.Path(__file__).parent / "BENCH_cluster.json"

BASE_SERVICES = 2
BASE_SERVERS = 8
SCALES = (1, 4, 16)

#: Cluster round: shard counts swept on the 16x fleet.
SHARD_COUNTS = (1, 2, 4)
CLUSTER_SCALE = 16
#: 128 virtual nodes spread the 16x fleet's entities evenly enough that
#: the slowest shard stays close to the mean (the speedup ceiling).
CLUSTER_RING_REPLICAS = 128


def _spec(scale: int) -> FleetScenarioSpec:
    n_changes = int(os.environ.get("REPRO_BENCH_LIVE_CHANGES", "2"))
    return FleetScenarioSpec(
        n_services=BASE_SERVICES * scale,
        n_servers=BASE_SERVERS * scale,
        n_changes=n_changes,
        window_bins=120,
        change_offset=60,
        history_days=1,
        seed=7,
    )


#: Detection-lag buckets (bins): single-bin resolution through the
#: interesting low range, then coarser out to a full window.
LAG_BUCKETS = tuple(float(b) for b in range(1, 33)) + (
    48.0, 64.0, 96.0, 128.0, 192.0, 256.0)


def _percentile(values, q):
    """Bucketed estimate, same estimator the health telemetry reports."""
    if not values:
        return None
    hist = Histogram("bench_detection_lag_bins", buckets=LAG_BUCKETS)
    for value in values:
        hist.observe(float(value))
    return round(hist.percentile(q), 2)


def _measure(scale: int, pooled: bool, fused: bool = False) -> dict:
    spec = _spec(scale)
    config = parity_live_config(spec, score_chunk_bins=8,
                                pooled_scoring=pooled or fused,
                                fused_ingest=fused)
    report = replay_scenario(spec, live_config=config, flush_bins=4)
    lags = list(report.detection_lag_bins)
    counters = report.service_report["counters"]
    doc = {
        "scale": scale,
        "services": spec.n_services,
        "servers": spec.n_servers,
        "scoring": ("fused" if fused
                    else "pooled" if pooled else "per_detector"),
        "fragments_streamed": report.fragments_streamed,
        "fragments_per_second": round(report.fragments_per_second, 1),
        "wall_seconds": round(report.wall_seconds, 4),
        "verdicts": len(report.verdicts),
        "detection_lag_bins_p50": _percentile(lags, 50),
        "detection_lag_bins_p99": _percentile(lags, 99),
        "peak_queue_depth": report.service_report["peak_queue_depth"],
    }
    if pooled or fused:
        batches = counters.get(POOLED_BATCHES_METRIC, 0)
        doc["pooled_batches"] = batches
        doc["pooled_series"] = counters.get(POOLED_SERIES_METRIC, 0)
        doc["pooled_mean_batch"] = (
            round(doc["pooled_series"] / batches, 2) if batches else None)
    if fused:
        doc["fused_batches"] = counters.get(FUSED_BATCHES_METRIC, 0)
        doc["fused_rows"] = counters.get(FUSED_ROWS_METRIC, 0)
    return doc


def _measure_overload() -> dict:
    spec = _spec(1)
    config = parity_live_config(spec, queue_capacity=2,
                                max_fragments_per_tick=8)
    report = replay_scenario(spec, live_config=config)
    counters = report.service_report["counters"]
    return {
        "queue_capacity": 2,
        "drain_budget": 8,
        "fragments_streamed": report.fragments_streamed,
        "shed_fragments": counters.get(SHED_FRAGMENTS_METRIC, 0),
        "peak_queue_depth": report.service_report["peak_queue_depth"],
        "closed_changes": report.service_report["closed_changes"],
        "verdicts": len(report.verdicts),
    }


def _cluster_spec() -> FleetScenarioSpec:
    n_changes = int(os.environ.get("REPRO_BENCH_CLUSTER_CHANGES", "4"))
    base = _spec(CLUSTER_SCALE)
    return FleetScenarioSpec(
        n_services=base.n_services, n_servers=base.n_servers,
        n_changes=n_changes, window_bins=base.window_bins,
        change_offset=base.change_offset,
        history_days=base.history_days, seed=base.seed)


def _measure_cluster(n_shards: int, workdir: str):
    spec = _cluster_spec()
    config = parity_live_config(spec, score_chunk_bins=8,
                                pooled_scoring=True)
    report = cluster_replay_scenario(
        spec=spec, live_config=config, flush_bins=4,
        cluster=ClusterConfig(n_shards=n_shards,
                              replicas=CLUSTER_RING_REPLICAS),
        workdir=os.path.join(workdir, "shards-%d" % n_shards))
    doc = {
        "shards": n_shards,
        "services": spec.n_services,
        "servers": spec.n_servers,
        "changes": spec.n_changes,
        "scenario_fragments": report.scenario_fragments,
        "fragments_streamed": report.fragments_streamed,
        "verdicts": len(report.verdicts),
        "shard_cpu_seconds": {key: round(value, 4) for key, value
                              in sorted(report.shard_cpu_seconds.items())},
        "critical_path_seconds": round(report.critical_path_seconds, 4),
        "merge_seconds": round(report.merge_seconds, 4),
        "elapsed_seconds": round(report.elapsed_seconds, 4),
        "fragments_per_second": round(report.fragments_per_second, 1),
        "elapsed_fragments_per_second": round(
            report.scenario_fragments / report.elapsed_seconds, 1),
        "restarts": sum(report.restarts.values()),
        "duplicate_verdicts": report.duplicate_verdicts,
    }
    return report, doc


def run_cluster_bench() -> dict:
    workdir = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    runs, reference, identical = [], None, True
    for n_shards in SHARD_COUNTS:
        report, doc = _measure_cluster(n_shards, workdir)
        if reference is None:
            reference = report.verdicts
        else:
            identical = identical and report.verdicts == reference
        runs.append(doc)
    by_shards = {run["shards"]: run for run in runs}
    out = {
        "cpus": os.cpu_count() or 1,
        "scale": CLUSTER_SCALE,
        "ring_replicas": CLUSTER_RING_REPLICAS,
        "accounting": "fragments_per_second = scenario_fragments / "
                      "critical_path_seconds (slowest shard's CPU time "
                      "+ merge); elapsed_* records the wall clock, "
                      "which only shows the speedup when cpus >= shards",
        "runs": runs,
        "merged_identical": identical,
        "speedup_4_vs_1": round(
            by_shards[4]["fragments_per_second"]
            / by_shards[1]["fragments_per_second"], 3),
        "elapsed_speedup_4_vs_1": round(
            by_shards[4]["elapsed_fragments_per_second"]
            / by_shards[1]["elapsed_fragments_per_second"], 3),
    }
    CLUSTER_OUT_PATH.write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")
    return out


def run_bench() -> dict:
    runs = [_measure(scale, pooled=False) for scale in SCALES]
    pooled_runs = [_measure(scale, pooled=True) for scale in SCALES]
    fused_runs = [_measure(scale, pooled=True, fused=True)
                  for scale in SCALES]
    overload = _measure_overload()
    report = {
        "runs": runs,
        "pooled_runs": pooled_runs,
        "fused_runs": fused_runs,
        "pooled_speedup": {
            str(scale): round(pooled["fragments_per_second"]
                              / plain["fragments_per_second"], 3)
            for scale, plain, pooled in zip(SCALES, runs, pooled_runs)
        },
        "fused_speedup": {
            str(scale): round(fused["fragments_per_second"]
                              / plain["fragments_per_second"], 3)
            for scale, plain, fused in zip(SCALES, runs, fused_runs)
        },
        "overload": overload,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_live_throughput(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Live replay throughput:")
    for run in (report["runs"] + report["pooled_runs"]
                + report["fused_runs"]):
        print("  %2dx fleet (%3d servers, %-12s): %9.0f frag/s, "
              "lag p50=%s p99=%s bins"
              % (run["scale"], run["servers"], run["scoring"],
                 run["fragments_per_second"],
                 run["detection_lag_bins_p50"],
                 run["detection_lag_bins_p99"]))
    overload = report["overload"]
    print("  pooled speedup by scale: %s" % report["pooled_speedup"])
    print("  fused speedup by scale:  %s" % report["fused_speedup"])
    print("  overload: shed=%d peak_depth=%d"
          % (overload["shed_fragments"], overload["peak_queue_depth"]))

    for plain, pooled, fused in zip(report["runs"], report["pooled_runs"],
                                    report["fused_runs"]):
        for run in (plain, pooled, fused):
            assert run["fragments_per_second"] > 0
            assert run["verdicts"] > 0
        # Pooling and fusing are throughput modes: identical verdict
        # counts and identical detection-lag quantiles, by construction.
        for run in (pooled, fused):
            assert run["verdicts"] == plain["verdicts"]
            assert run["detection_lag_bins_p50"] == \
                plain["detection_lag_bins_p50"]
            assert run["detection_lag_bins_p99"] == \
                plain["detection_lag_bins_p99"]
            # Each pooled batch must actually stack several detectors.
            assert run["pooled_mean_batch"] is None or \
                run["pooled_mean_batch"] >= 1.0
        # The fused path must actually take the tensor scatter.
        assert fused["fused_batches"] > 0
        assert fused["fused_rows"] > 0
    # At fleet scale the stacked pass must not lose to per-detector
    # scoring (0.85 floor absorbs timer noise; typical: >= 1.5x).
    assert report["pooled_speedup"]["16"] >= 0.85
    # Fused ingest rides the pooled plane: same floor, same rationale.
    assert report["fused_speedup"]["16"] >= 0.85
    # Backpressure: shedding happened, yet memory stayed bounded and
    # every admitted change still closed with verdicts.
    assert overload["shed_fragments"] > 0
    assert overload["peak_queue_depth"] <= 2 * 64
    assert overload["closed_changes"] > 0
    assert overload["verdicts"] > 0


def test_cluster_throughput(benchmark):
    report = benchmark.pedantic(run_cluster_bench, rounds=1, iterations=1)

    print()
    print("Cluster replay throughput (16x fleet, critical-path):")
    for run in report["runs"]:
        print("  %d shard(s): %9.0f frag/s critical-path "
              "(%.0f elapsed), crit=%.3fs, verdicts=%d"
              % (run["shards"], run["fragments_per_second"],
                 run["elapsed_fragments_per_second"],
                 run["critical_path_seconds"], run["verdicts"]))
    print("  speedup 4 vs 1: %.2fx critical-path, %.2fx elapsed "
          "(on %d cpu(s))"
          % (report["speedup_4_vs_1"],
             report["elapsed_speedup_4_vs_1"], report["cpus"]))

    # The contract: identical merged verdicts at every shard count,
    # no restarts or duplicates in a clean run.
    assert report["merged_identical"]
    first = report["runs"][0]
    for run in report["runs"]:
        assert run["verdicts"] == first["verdicts"] > 0
        assert run["restarts"] == 0
        assert run["duplicate_verdicts"] == 0
        assert run["fragments_streamed"] >= run["scenario_fragments"]
    # Sharding must genuinely cut the critical path (the committed
    # BENCH_cluster.json shows > 2.5x; 2.0 is the noise-tolerant floor).
    assert report["speedup_4_vs_1"] >= 2.0


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
    print(json.dumps(run_cluster_bench(), indent=2, sort_keys=True))
