"""Observability overhead: engine and live throughput, obs off vs. on.

Two rounds, both best-of-``ROUNDS`` with modes interleaved so clock
drift hits them equally:

* **engine** — the same synthetic fleet job set through
  :func:`repro.engine.execute_jobs` with no observability attached and
  with a full :class:`repro.obs.ObsContext` (spans, metrics, worker
  telemetry channel), serially — the serial path pays the channel on
  every batch, so it upper-bounds the per-job cost.
* **live health** — a 16x-fleet pooled live replay with no health
  telemetry vs. a full :class:`repro.obs.HealthMonitor` (per-tick
  heartbeat JSONL, SLO burn tracking, FUNNEL-on-FUNNEL
  self-assessment).  The fault-free replay must also self-detect
  nothing — the zero-false-positive half of the health contract.

Writes ``benchmarks/BENCH_obs.json``; the acceptance target is <5%
overhead for each round.

Scale with ``REPRO_BENCH_OBS_CHANGES`` (changes in the engine fleet
scenario, default 6) and ``REPRO_BENCH_OBS_LIVE_SCALE`` (live fleet
multiplier, default 16).  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import json
import os
import pathlib
import tempfile
import time

from repro.engine import (EngineConfig, FleetScenarioSpec,
                          SyntheticFleetSource, execute_jobs,
                          reset_shared_cache, spec_for_method)
from repro.live import parity_live_config, replay_scenario
from repro.obs import HealthConfig, HealthMonitor, ObsContext

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_obs.json"

ROUNDS = 3
#: The live replay is sub-second at bench scale and its wall time has a
#: long noise tail (GC, heartbeat flushes hitting disk), so its best-of
#: needs more rounds to converge than the engine round does.
LIVE_ROUNDS = 5
OVERHEAD_BUDGET = 0.05


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                        # non-Linux fallback
        return os.cpu_count() or 1


def _fleet_jobs():
    n_changes = int(os.environ.get("REPRO_BENCH_OBS_CHANGES", "6"))
    source = SyntheticFleetSource(FleetScenarioSpec(
        n_services=5, n_servers=40, n_changes=n_changes,
        history_days=1, seed=13))
    return list(source.plan_jobs([spec_for_method("funnel"),
                                  spec_for_method("improved_sst")]))


def _one_round(jobs, config, observed: bool):
    reset_shared_cache()
    obs = ObsContext() if observed else None
    started = time.perf_counter()
    results = execute_jobs(jobs, config=config, obs=obs)
    elapsed = time.perf_counter() - started
    return elapsed, len(results), (obs.span_count if obs else 0)


def _measure(jobs):
    """Both modes, rounds interleaved so clock drift (CPU warm-up,
    frequency scaling) hits them equally; best-of per mode."""
    config = EngineConfig(workers=0, batch_size=8)
    _one_round(jobs, config, observed=True)       # shared warm-up
    best = {False: float("inf"), True: float("inf")}
    span_count = 0
    n_jobs = 0
    for _ in range(ROUNDS):
        for observed in (False, True):
            elapsed, n_jobs, spans = _one_round(jobs, config, observed)
            best[observed] = min(best[observed], elapsed)
            span_count = max(span_count, spans)
    return [{
        "observed": observed,
        "jobs": n_jobs,
        "rounds": ROUNDS,
        "best_seconds": round(best[observed], 4),
        "items_per_second": round(n_jobs / best[observed], 2),
        "span_count": span_count if observed else 0,
    } for observed in (False, True)]


def _live_spec() -> FleetScenarioSpec:
    scale = int(os.environ.get("REPRO_BENCH_OBS_LIVE_SCALE", "16"))
    return FleetScenarioSpec(
        n_services=2 * scale, n_servers=8 * scale, n_changes=2,
        window_bins=120, change_offset=60, history_days=1, seed=7)


def _one_live_round(spec, with_health: bool, heartbeat_dir):
    config = parity_live_config(spec, score_chunk_bins=8,
                                pooled_scoring=True)
    health = None
    if with_health:
        health = HealthMonitor(HealthConfig(heartbeat_path=os.path.join(
            heartbeat_dir, "heartbeat.jsonl")))
    report = replay_scenario(spec, live_config=config, flush_bins=4,
                             health=health)
    detections = (len(report.service_report["health"]["self_detections"])
                  if with_health else 0)
    return report.wall_seconds, report.fragments_streamed, detections


def _measure_live():
    """Live replay with and without health telemetry, interleaved."""
    spec = _live_spec()
    best = {False: float("inf"), True: float("inf")}
    fragments = 0
    detections = 0
    with tempfile.TemporaryDirectory() as heartbeat_dir:
        _one_live_round(spec, True, heartbeat_dir)    # shared warm-up
        for _ in range(LIVE_ROUNDS):
            for with_health in (False, True):
                elapsed, fragments, found = _one_live_round(
                    spec, with_health, heartbeat_dir)
                best[with_health] = min(best[with_health], elapsed)
                if with_health:
                    detections = max(detections, found)
    return [{
        "health": with_health,
        "servers": spec.n_servers,
        "fragments_streamed": fragments,
        "rounds": LIVE_ROUNDS,
        "best_seconds": round(best[with_health], 4),
        "fragments_per_second": round(fragments / best[with_health], 1),
        "self_detections": detections if with_health else 0,
    } for with_health in (False, True)]


def run_bench() -> dict:
    jobs = _fleet_jobs()
    baseline, observed = _measure(jobs)
    overhead = (observed["best_seconds"] / baseline["best_seconds"]) - 1.0
    live_baseline, live_health = _measure_live()
    live_overhead = (live_health["best_seconds"]
                     / live_baseline["best_seconds"]) - 1.0
    report = {
        "cpus": _usable_cpus(),
        "job_count": len(jobs),
        "baseline": baseline,
        "observed": observed,
        "overhead_fraction": round(overhead, 4),
        "live_baseline": live_baseline,
        "live_health": live_health,
        "live_overhead_fraction": round(live_overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_obs_overhead(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Observability overhead (%d jobs, serial, best of %d):"
          % (report["job_count"], ROUNDS))
    print("  obs off  %8.1f items/s" %
          report["baseline"]["items_per_second"])
    print("  obs on   %8.1f items/s  (%d spans)" %
          (report["observed"]["items_per_second"],
           report["observed"]["span_count"]))
    print("  overhead %+7.2f%%" % (100 * report["overhead_fraction"]))
    print("Live health overhead (%d servers, pooled, best of %d):"
          % (report["live_baseline"]["servers"], LIVE_ROUNDS))
    print("  health off %8.0f frag/s" %
          report["live_baseline"]["fragments_per_second"])
    print("  health on  %8.0f frag/s" %
          report["live_health"]["fragments_per_second"])
    print("  overhead %+7.2f%%" % (100 * report["live_overhead_fraction"]))

    assert report["baseline"]["jobs"] == report["job_count"]
    assert report["observed"]["span_count"] > report["job_count"]
    assert report["overhead_fraction"] < OVERHEAD_BUDGET
    assert report["live_overhead_fraction"] < OVERHEAD_BUDGET
    # The health contract's zero-false-positive half: a fault-free
    # replay's self-assessment must declare nothing.
    assert report["live_health"]["self_detections"] == 0


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
