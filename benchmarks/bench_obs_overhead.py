"""Observability overhead: engine throughput with obs off vs. on.

Runs the same synthetic fleet job set through
:func:`repro.engine.execute_jobs` with no observability attached and
with a full :class:`repro.obs.ObsContext` (spans, metrics, worker
telemetry channel), serially — the serial path pays the channel on
every batch, so it upper-bounds the per-job cost.  Each mode is
measured ``ROUNDS`` times and the best (minimum) wall-clock per mode is
compared, which filters scheduler noise the way timeit does.  Writes
``benchmarks/BENCH_obs.json``; the acceptance target is <5% overhead.

Scale with ``REPRO_BENCH_OBS_CHANGES`` (changes in the synthetic fleet
scenario, default 6).  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import json
import os
import pathlib
import time

from repro.engine import (EngineConfig, FleetScenarioSpec,
                          SyntheticFleetSource, execute_jobs,
                          reset_shared_cache, spec_for_method)
from repro.obs import ObsContext

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_obs.json"

ROUNDS = 3
OVERHEAD_BUDGET = 0.05


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                        # non-Linux fallback
        return os.cpu_count() or 1


def _fleet_jobs():
    n_changes = int(os.environ.get("REPRO_BENCH_OBS_CHANGES", "6"))
    source = SyntheticFleetSource(FleetScenarioSpec(
        n_services=5, n_servers=40, n_changes=n_changes,
        history_days=1, seed=13))
    return list(source.plan_jobs([spec_for_method("funnel"),
                                  spec_for_method("improved_sst")]))


def _one_round(jobs, config, observed: bool):
    reset_shared_cache()
    obs = ObsContext() if observed else None
    started = time.perf_counter()
    results = execute_jobs(jobs, config=config, obs=obs)
    elapsed = time.perf_counter() - started
    return elapsed, len(results), (obs.span_count if obs else 0)


def _measure(jobs):
    """Both modes, rounds interleaved so clock drift (CPU warm-up,
    frequency scaling) hits them equally; best-of per mode."""
    config = EngineConfig(workers=0, batch_size=8)
    _one_round(jobs, config, observed=True)       # shared warm-up
    best = {False: float("inf"), True: float("inf")}
    span_count = 0
    n_jobs = 0
    for _ in range(ROUNDS):
        for observed in (False, True):
            elapsed, n_jobs, spans = _one_round(jobs, config, observed)
            best[observed] = min(best[observed], elapsed)
            span_count = max(span_count, spans)
    return [{
        "observed": observed,
        "jobs": n_jobs,
        "rounds": ROUNDS,
        "best_seconds": round(best[observed], 4),
        "items_per_second": round(n_jobs / best[observed], 2),
        "span_count": span_count if observed else 0,
    } for observed in (False, True)]


def run_bench() -> dict:
    jobs = _fleet_jobs()
    baseline, observed = _measure(jobs)
    overhead = (observed["best_seconds"] / baseline["best_seconds"]) - 1.0
    report = {
        "cpus": _usable_cpus(),
        "job_count": len(jobs),
        "baseline": baseline,
        "observed": observed,
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_obs_overhead(benchmark):
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print()
    print("Observability overhead (%d jobs, serial, best of %d):"
          % (report["job_count"], ROUNDS))
    print("  obs off  %8.1f items/s" %
          report["baseline"]["items_per_second"])
    print("  obs on   %8.1f items/s  (%d spans)" %
          (report["observed"]["items_per_second"],
           report["observed"]["span_count"]))
    print("  overhead %+7.2f%%" % (100 * report["overhead_fraction"]))

    assert report["baseline"]["jobs"] == report["job_count"]
    assert report["observed"]["span_count"] > report["job_count"]
    assert report["overhead_fraction"] < OVERHEAD_BUDGET


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2, sort_keys=True))
