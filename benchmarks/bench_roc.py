"""ROC curves per baseline — section 4.1's alternative protocol.

The paper argues its fixed-best-threshold comparison "draws the same
conclusion as ... calculating the accuracies and plotting the receiver
operating characteristic (ROC) curves".  This bench checks that claim on
the reproduction corpus: the per-method ROC AUCs must rank the methods
the same way Table 1's accuracies do on their decisive KPI types.
"""

import pytest

from repro.baselines.cusum import CusumDetector
from repro.baselines.mrls import MrlsDetector
from repro.eval.calibrate import _peak_post_statistic, collect_statistics
from repro.eval.roc import roc_curve
from repro.synthetic.dataset import CorpusSpec, EvaluationCorpus

from conftest import bench_scale, mrls_stride_for


@pytest.fixture(scope="module")
def corpus_items():
    scale = min(bench_scale(), 0.05)
    return list(EvaluationCorpus(CorpusSpec(scale=scale)))


def _curve_for(detector, items, stride=1):
    stats = collect_statistics(
        items, lambda item: _peak_post_statistic(detector, item),
        stride=stride,
    )
    return roc_curve(stats)


def test_roc_cusum_threshold_conflict_across_types(benchmark,
                                                   corpus_items):
    """Table 1's CUSUM failure in ROC form: within each KPI type the
    statistic ranks items acceptably, but one *global* threshold cannot
    serve both — any threshold recalling stationary positives lets the
    seasonal negatives (whose diurnal drift accumulates into enormous
    CUSUM sums) flood through."""
    detector = CusumDetector()

    def run():
        stationary = [i for i in corpus_items
                      if i.character.value == "stationary"]
        seasonal = [i for i in corpus_items
                    if i.character.value == "seasonal"]
        stationary_curve = _curve_for(detector, stationary)
        seasonal_stats = collect_statistics(
            seasonal, lambda item: _peak_post_statistic(detector, item))
        return stationary_curve, seasonal_stats

    stationary_curve, seasonal_stats = benchmark.pedantic(
        run, rounds=1, iterations=1)
    threshold, fpr, tpr = stationary_curve.operating_point(0.95)
    negatives = [s for s in seasonal_stats if not s.positive]
    neg_weight = sum(s.weight for s in negatives)
    seasonal_fpr = sum(s.weight for s in negatives
                       if s.statistic > threshold) / neg_weight
    print("\nCUSUM stationary AUC %.3f; @TPR>=%.2f threshold %.1f -> "
          "stationary FPR %.1f%%, seasonal FPR %.1f%%"
          % (stationary_curve.auc, tpr, threshold, 100 * fpr,
             100 * seasonal_fpr))
    assert stationary_curve.auc > 0.9
    # The stationary-calibrated threshold is hopeless on seasonal KPIs.
    assert seasonal_fpr > 5 * max(fpr, 0.02)


def test_roc_mrls_spike_confusion_on_variable(benchmark, corpus_items):
    detector = MrlsDetector()
    stride = max(1, mrls_stride_for(min(bench_scale(), 0.05)) // 2 or 1)

    def run():
        variable = [i for i in corpus_items
                    if i.character.value == "variable"]
        stationary = [i for i in corpus_items
                      if i.character.value == "stationary"]
        return (_curve_for(detector, variable, stride=stride),
                _curve_for(detector, stationary, stride=stride))

    variable_curve, stationary_curve = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print("\nMRLS AUC: variable %.3f, stationary %.3f"
          % (variable_curve.auc, stationary_curve.auc))
    threshold, fpr, tpr = variable_curve.operating_point(0.9)
    print("MRLS @ TPR>=0.9 on variable: threshold %.2f -> FPR %.1f%%"
          % (threshold, 100 * fpr))
    # Benign spikes rob MRLS of separability on variable KPIs relative
    # to stationary ones (Table 1's variable row in ROC form).
    assert stationary_curve.auc >= variable_curve.auc - 0.05
    # Reaching high recall on variable data costs real false positives.
    assert fpr > 0.01
