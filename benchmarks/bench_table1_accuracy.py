"""Table 1 — Precision, Recall, TNR, Accuracy per KPI type and method.

Regenerates the paper's Table 1 on the synthetic corpus: the section 4.1
composition (items, class balance, x86 clean-half synthesis), each
method seeing exactly what it saw in the paper (FUNNEL with DiD
controls, the others detection-only on the treated aggregate).

Paper values for orientation::

    FUNNEL        seasonal  98.28 / 100.00 / 100.00 / 100.00
                  stationary 100.00 / 100.00 / 100.00 / 100.00
                  variable   68.47 /  99.48 /  99.88 /  99.88
    Improved SST  seasonal    1.10 / 100.00 /  81.93 /  81.96
    CUSUM         seasonal    0.76 /  84.21 /  77.97 /  77.98
    MRLS          variable    0.61 /  97.04 /  57.85 /  57.95
"""

import math

from repro.eval.report import render_table1


def test_table1_accuracy(benchmark, table1_result):
    rows = benchmark.pedantic(lambda: table1_result.table1(), rounds=1,
                              iterations=1)
    print()
    print(render_table1(rows))
    overall = table1_result.overall("funnel")
    print("FUNNEL overall accuracy: %.3f%% (paper: >99.8%%)"
          % (100.0 * overall.accuracy))

    # Headline shape assertions (paper section 4.2.1):
    # 1. FUNNEL achieves >99% accuracy on every KPI type.
    by = {(r["method"], r["type"]): r for r in rows}
    for kpi_type in ("seasonal", "stationary", "variable"):
        assert by[("funnel", kpi_type)]["accuracy"] > 0.99
    # 2. Overall accuracy clears the paper's 99.8% bar.
    assert overall.accuracy > 0.998
    # 3. DiD is what rescues precision on seasonal KPIs: the improved
    #    SST without DiD collapses there.
    sst_seasonal = by[("improved_sst", "seasonal")]
    funnel_seasonal = by[("funnel", "seasonal")]
    assert sst_seasonal["precision"] < 0.5 * funnel_seasonal["precision"]
    # 4. CUSUM is weakest on seasonal KPIs.
    cusum = {t: by[("cusum", t)]["accuracy"]
             for t in ("seasonal", "stationary", "variable")}
    assert cusum["seasonal"] == min(cusum.values())
    # 5. Every method keeps the paper-level recall on its strong types.
    assert by[("funnel", "stationary")]["recall"] > 0.85
    mrls_variable = by[("mrls", "variable")]
    if not math.isnan(mrls_variable["recall"]):
        assert mrls_variable["recall"] > 0.5
