"""Table 2 — per-window computational cost and cores for one million KPIs.

Paper values (C++ on a 2.4 GHz Xeon E5645): FUNNEL 401.8 us, CUSUM
1.846 ms, MRLS 2.852 s per window; 7 / 31 / 47526 cores for 1M KPIs
collected every minute.  Absolute numbers differ under NumPy, but the
ordering (FUNNEL fastest, MRLS orders of magnitude slowest because of
its iterated SVDs) is the reproduced claim.
"""

import numpy as np
import pytest

from repro.baselines.cusum import CusumDetector
from repro.baselines.mrls import MrlsDetector
from repro.core.ika import IkaSST
from repro.core.rsst import ImprovedSST
from repro.eval.cost import measure_method_costs
from repro.eval.report import render_table2


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(5)
    return 50.0 + rng.normal(0.0, 1.0, size=2048)


def test_funnel_per_window(benchmark, series):
    """FUNNEL's deployed path: batched IKA scoring, amortised."""
    scorer = IkaSST()
    n_windows = series.size - scorer.params.window_length + 1
    benchmark(scorer.scores, series)
    benchmark.extra_info["windows_per_call"] = n_windows
    benchmark.extra_info["us_per_window"] = (
        benchmark.stats["mean"] / n_windows * 1e6)


def test_exact_sst_per_window(benchmark, series):
    """The SVD reference path FUNNEL replaces (ablation reference)."""
    scorer = ImprovedSST()
    t = scorer.params.first_index()
    benchmark(scorer.score_at, series, t)


def test_cusum_per_window(benchmark, series):
    """One CUSUM statistic + Taylor bootstrap (the MERCURY deployment)."""
    detector = CusumDetector()
    window = series[:detector.params.window]

    def work():
        detector.statistic_for_window(window)
        detector._bootstrap_significant(window)

    benchmark(work)


def test_mrls_per_window(benchmark, series):
    """One multiscale robust-local-subspace statistic (iterated SVDs)."""
    detector = MrlsDetector()
    window = series[:detector.params.window]
    benchmark(detector.statistic_for_window, window)


def test_table2_summary(benchmark):
    reports = benchmark.pedantic(
        lambda: measure_method_costs(min_seconds=0.4,
                                     include_exact_sst=True),
        rounds=1, iterations=1)
    print()
    print(render_table2(reports))
    funnel = reports["funnel"].seconds_per_window
    cusum = reports["cusum"].seconds_per_window
    mrls = reports["mrls"].seconds_per_window
    print("speedups vs FUNNEL: cusum %.1fx, mrls %.0fx"
          % (cusum / funnel, mrls / funnel))
    print("cores for 1M KPIs: funnel %d, cusum %d, mrls %d "
          "(paper: 7 / 31 / 47526)"
          % (reports["funnel"].cores_for(), reports["cusum"].cores_for(),
             reports["mrls"].cores_for()))

    # The reproduced claim is the ordering and the scale of the gaps.
    assert funnel < cusum < mrls
    assert mrls / funnel > 20.0
    # One commodity core handles hundreds of thousands of KPIs with the
    # batched IKA path (the paper: one 12-core server for 1M KPIs).
    assert reports["funnel"].cores_for() <= 12
