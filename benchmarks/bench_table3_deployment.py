"""Table 3 — one-week deployment statistics and precision.

Paper (daily averages over one week of real deployment): 24119 software
changes, 268 with impact, 2,256,390 KPIs monitored, 10,249 KPI changes
detected, 98.21% precision (the operations team verified detections
only; recall was unmeasurable on live data — the simulation knows the
ground truth, so it is reported as well).

The simulated week is volume-scaled (``DeploymentSpec.scale``); the
rates — impact rate, detections per KPI, precision — are scale-free and
are what the assertions pin.
"""

import os

from repro.simulation.deployment import DeploymentSpec, simulate_week


def test_table3_deployment_week(benchmark, funnel_config):
    scale = float(os.environ.get("REPRO_BENCH_DEPLOY_SCALE", "0.001"))
    spec = DeploymentSpec(scale=scale, days=7)
    report = benchmark.pedantic(
        lambda: simulate_week(spec, funnel_config), rounds=1, iterations=1)

    row = report.as_table3_row()
    print()
    print("Table 3 (daily averages, volume scale %.4g):" % scale)
    print("  #software changes:        %8.0f   (paper: 24119)"
          % row["software_changes_per_day"])
    print("  #changes that have impact:%8.0f   (paper:   268)"
          % row["impactful_changes_per_day"])
    print("  #KPIs:                    %8.0f   (paper: 2256390)"
          % row["kpis_per_day"])
    print("  #KPI changes:             %8.0f   (paper: 10249)"
          % row["kpi_changes_per_day"])
    print("  Precision:                %8.2f%%  (paper: 98.21%%)"
          % (100.0 * row["precision"]))
    print("  Recall (unmeasured in the paper): %.2f%%"
          % (100.0 * row["recall"]))

    assert row["precision"] > 0.95
    assert row["recall"] > 0.7
    # Detections are a small fraction of monitored KPIs (paper:
    # 10249 / 2256390 ~= 0.45%; the simulated corpus carries a higher
    # positive rate per monitored KPI, so allow an order of magnitude).
    assert row["kpi_changes_per_day"] < 0.2 * row["kpis_per_day"]
