"""Shared fixtures for the reproduction benchmarks.

Scale control:  set ``REPRO_BENCH_SCALE`` (default 0.05) to grow or
shrink the evaluation corpus; 1.0 reproduces the paper's full 9982-item
corpus (MRLS is then sampled — see ``mrls_stride`` below).  Calibrated
baseline thresholds are cached in ``benchmarks/.calibration.json`` per
(scale, seed) so repeated bench runs skip the sweep.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.baselines.cusum import CusumParams
from repro.baselines.mrls import MrlsParams
from repro.core.funnel import FunnelConfig
from repro.eval.calibrate import calibrate_baseline
from repro.eval.runner import evaluate_corpus, make_method
from repro.synthetic.dataset import CorpusSpec, EvaluationCorpus

CACHE_PATH = pathlib.Path(__file__).parent / ".calibration.json"
CALIBRATION_SEED = 77


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def mrls_stride_for(scale: float) -> int:
    """Keep the MRLS corpus pass around a few hundred items."""
    items = int(9982 * scale)
    return max(1, items // 300)


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def calibrated_thresholds(scale):
    """Best-accuracy thresholds for CUSUM and MRLS (section 4.1
    protocol), calibrated on a held-out corpus and cached on disk."""
    key = "scale=%.4f,seed=%d,v2" % (scale, CALIBRATION_SEED)
    cache = {}
    if CACHE_PATH.exists():
        cache = json.loads(CACHE_PATH.read_text())
    if key not in cache:
        spec = CorpusSpec(scale=min(scale, 0.05), seed=CALIBRATION_SEED)
        cusum = calibrate_baseline("cusum", EvaluationCorpus(spec))
        mrls = calibrate_baseline(
            "mrls", EvaluationCorpus(spec),
            stride=mrls_stride_for(min(scale, 0.05)), recall_floor=0.8)
        cache[key] = {"cusum": cusum.threshold, "mrls": mrls.threshold}
        CACHE_PATH.write_text(json.dumps(cache, indent=2))
    return cache[key]


@pytest.fixture(scope="session")
def funnel_config():
    # did_threshold = 1.0: the corpus mixes change-sensitive and
    # insensitive services, so the midpoint of the paper's suggested
    # range is used for all of them.
    return FunnelConfig(did_threshold=1.0)


@pytest.fixture(scope="session")
def table1_result(scale, calibrated_thresholds, funnel_config):
    """The full four-method evaluation (shared by Table 1 and Fig. 5)."""
    corpus = EvaluationCorpus(CorpusSpec(scale=scale))
    methods = {
        "funnel": make_method("funnel", funnel_config=funnel_config),
        "improved_sst": make_method("improved_sst",
                                    funnel_config=funnel_config),
        "cusum": make_method("cusum", cusum_params=CusumParams(
            threshold=calibrated_thresholds["cusum"])),
        "mrls": make_method("mrls", mrls_params=MrlsParams(
            threshold=calibrated_thresholds["mrls"])),
    }
    return evaluate_corpus(corpus, methods,
                           mrls_stride=mrls_stride_for(scale))
