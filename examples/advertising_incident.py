#!/usr/bin/env python
"""The advertising anti-cheat incident (paper section 5.2, Fig. 7).

A software upgrade silently breaks the anti-cheating check for iPhone
browsers: every iPhone click gets classified as a cheat and the
*effective clicks* KPI — strongly seasonal — drops sharply.  Manually
the operations team needed 1.5 hours to notice; FUNNEL flags the drop
within ~10 minutes and attributes it to the upgrade using the 30-day
historical control (the upgrade was fully launched, so there is no peer
control group).

Run:
    python examples/advertising_incident.py
"""

from repro.eval.report import render_ascii_series
from repro.simulation import advertising_case
from repro.types import Verdict


def main() -> None:
    result = advertising_case()

    window = result.clicks[result.change_index - 360:
                           result.change_index + 360]
    print(render_ascii_series(
        window, height=14,
        title="effective clicks, +-6h around the upgrade "
              "(drop at centre, fixed %d min later)"
              % (result.recovery_index - result.change_index)))

    assessment = result.assessment
    print()
    print("verdict:          ", assessment.verdict.value)
    print("control group:    ", assessment.control,
          "(Full Launching: no peers, 30 historical days)")
    print("DiD impact:        %+.1f robust sigmas"
          % assessment.did_estimate)
    print("detection delay:   %d minutes" % result.detection_delay_minutes)
    print("manual assessment: %d minutes (the paper's incident)"
          % result.manual_delay_minutes)
    saved = result.manual_delay_minutes - result.detection_delay_minutes
    print("time saved:        %d minutes of advertising revenue" % saved)

    assert assessment.verdict is Verdict.CAUSED_BY_CHANGE
    assert result.detected_within_10_minutes


if __name__ == "__main__":
    main()
