#!/usr/bin/env python
"""End-to-end dark-launch assessment on a simulated fleet.

Builds a small service topology (Fig. 1/Fig. 4 style), runs the
telemetry plane for a few hours, dark-launches a configuration change
that degrades memory utilisation on the treated servers, and lets
FUNNEL identify the impact set and assess every KPI in it.

Run:
    python examples/dark_launch_assessment.py
"""

from repro.simulation import ServiceScenario
from repro.topology.impact import identify_impact_set
from repro.types import ChangeKind


def main() -> None:
    scenario = ServiceScenario(seed=42)

    # A search-engine-ish hierarchy: naming implies the relationships
    # (section 3.1 — "FUNNEL derives the relationship among services
    # using the naming rules").
    scenario.add_service("search.frontend", n_servers=8)
    scenario.add_service("search.backend", n_servers=12)
    scenario.add_service("search.cache", n_servers=6)
    scenario.add_service("ads.serving", n_servers=4)
    scenario.fleet.add_relationship("search.frontend", "ads.serving")

    # Four hours of normal operation before anything changes.
    scenario.run(minutes=240)

    # Dark-launch a config change on search.backend; it regresses the
    # treated servers' memory utilisation by ~6 sigma.
    change = scenario.deploy_change(
        "search.backend", ChangeKind.CONFIG_CHANGE,
        effect_sigmas=6.0, metric="memory_utilization",
        description="increase worker threads 8 -> 32",
    )
    print("change %s deployed on %d of %d servers at t=%ds"
          % (change.change_id, len(change.hostnames),
             len(scenario.fleet.service("search.backend").hostnames),
             change.at_time))

    # Two more hours of measurements, then assess.
    scenario.run(minutes=120)
    assessment = scenario.assess(change)

    impact = assessment.impact_set
    print("\nimpact set:")
    print("  tservers:  %s" % (impact.treated_hostnames,))
    print("  cservers:  %d peers form the control group"
          % len(impact.cservers))
    print("  affected services: %s" % sorted(impact.affected_services))

    print("\nper-KPI verdicts (%d KPIs assessed):" % assessment.kpi_count)
    for key, result in assessment.results:
        marker = "  <-- impact" if result.positive else ""
        print("  %-48s %s%s" % (key, result.verdict.value, marker))

    flagged = assessment.flagged
    print("\nFUNNEL attributes %d KPI change(s) to %s"
          % (len(flagged), change.change_id))
    assert flagged, "the regression must be caught"
    assert all(k.metric == "memory_utilization" for k in flagged)

    # The impact-set identification is also available standalone:
    standalone = identify_impact_set(scenario.fleet, "search.backend",
                                     change.hostnames)
    assert standalone.treated_hostnames == impact.treated_hostnames


if __name__ == "__main__":
    main()
