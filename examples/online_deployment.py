#!/usr/bin/env python
"""A (scaled-down) week of online FUNNEL deployment (paper section 5).

Simulates the production setting of Table 3: a stream of software
changes per day, each with hundreds of monitored KPIs, a ~1% impact
rate, FUNNEL assessing everything online.  Prints the Table 3 row —
plus the recall, which the paper could not measure because operators
only verified FUNNEL's detections.

Run (takes ~1 minute at the default scale):
    python examples/online_deployment.py
"""

from repro.simulation import DeploymentSpec, simulate_week


def main() -> None:
    spec = DeploymentSpec(scale=0.0008, days=7)
    print("simulating %d days x %d changes/day ..."
          % (spec.days, spec.changes_per_day))

    def progress(day, counters):
        print("  day %d: %5d KPIs assessed, %4d detections, "
              "precision so far %.2f%%"
              % (day + 1, counters.kpis, counters.detections,
                 100.0 * counters.precision))

    report = simulate_week(spec, progress=progress)
    row = report.as_table3_row()

    print()
    print("Table 3 (daily averages, volume scaled by %.4g):" % spec.scale)
    print("  software changes / day:   %8.0f   (paper: 24119)"
          % row["software_changes_per_day"])
    print("  changes with impact / day:%8.0f   (paper:   268)"
          % row["impactful_changes_per_day"])
    print("  KPIs / day:               %8.0f   (paper: 2256390)"
          % row["kpis_per_day"])
    print("  KPI changes / day:        %8.0f   (paper: 10249)"
          % row["kpi_changes_per_day"])
    print("  precision:                %8.2f%%  (paper: 98.21%%)"
          % (100.0 * row["precision"]))
    print("  recall:                   %8.2f%%  (unmeasured in the paper)"
          % (100.0 * row["recall"]))

    assert row["precision"] > 0.9


if __name__ == "__main__":
    main()
