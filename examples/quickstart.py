#!/usr/bin/env python
"""Quickstart: assess one dark-launched software change with FUNNEL.

The scenario: a 16-server service; a configuration change is deployed
on 4 of them (Dark Launching) and accidentally raises memory
utilisation.  FUNNEL detects the behaviour change on the treated
servers' KPI, compares it against the untouched peers with a
difference-in-difference estimate, and attributes it to the change.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import Funnel, Verdict


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. Telemetry: one minute-binned KPI series per server. -------
    # Same-service servers are strongly correlated (load balancing),
    # which is what makes the peer control group work.
    n_servers, n_minutes = 16, 240
    shared_load = 55.0 + np.cumsum(rng.normal(0.0, 0.05, n_minutes))
    kpis = shared_load + rng.normal(0.0, 0.8, size=(n_servers, n_minutes))
    pristine = kpis.copy()           # kept for the counter-example below

    # --- 2. The software change. ---------------------------------------
    # Deployed at minute 120 on the first 4 servers; it leaks ~6 MB/min,
    # showing up as a level shift in memory utilisation.
    change_minute = 120
    treated, control = kpis[:4], kpis[4:]
    treated[:, change_minute:] += 6.0

    # --- 3. FUNNEL. -----------------------------------------------------
    funnel = Funnel()
    result = funnel.assess(treated, change_minute, control=control)

    print("verdict:           ", result.verdict.value)
    print("control group:     ", result.control)
    print("DiD impact (alpha): %+.2f robust sigmas" % result.did_estimate)
    change = result.change
    print("change kind:        %s (%s)" % (
        change.kind, "up" if change.direction > 0 else "down"))
    print("change started at:  minute %d" % change.start_index)
    print("declared at:        minute %d (delay %d min)" % (
        change.index, change.index - change.start_index))

    assert result.verdict is Verdict.CAUSED_BY_CHANGE

    # --- 4. Counter-example: an event that hits every server. ----------
    # A traffic surge moves treated AND control; the DiD estimate stays
    # near zero and FUNNEL refuses to blame the software change.
    surged = pristine
    surged[:, change_minute:] += 6.0
    result2 = funnel.assess(surged[:4], change_minute, control=surged[4:])
    print()
    print("same shift on every server -> verdict:", result2.verdict.value)
    assert result2.verdict is Verdict.OTHER_REASONS


if __name__ == "__main__":
    main()
