#!/usr/bin/env python
"""The Redis load-balancing case (paper section 5.1, Fig. 6).

A configuration change rebalances query traffic from the saturated
class A Redis servers (whose NICs ran near capacity) to the underused
class B servers.  FUNNEL assesses all 118 KPIs in the impact set and
flags only the NIC-throughput changes — downward on class A, upward on
class B — *validating* the expected effect of the change despite NIC
throughput's strong natural variability.

Run:
    python examples/redis_load_balancing.py
"""

from repro.eval.report import render_ascii_series
from repro.simulation import redis_case


def main() -> None:
    result = redis_case()

    print(render_ascii_series(
        result.class_a_example, height=10,
        title="class A NIC throughput (config change at t=%d)"
              % result.change_index))
    print()
    print(render_ascii_series(
        result.class_b_example, height=10,
        title="class B NIC throughput"))

    a_down = [k for k in result.flagged
              if "redis-a" in k and result.directions[k] < 0]
    b_up = [k for k in result.flagged
            if "redis-b" in k and result.directions[k] > 0]
    spurious = [k for k in result.flagged if "other" in k]

    print()
    print("KPIs in the impact set:     %d (paper: 118)"
          % result.total_kpis)
    print("KPI changes attributed:     %d (paper: 16)"
          % result.flagged_count)
    print("  class A, NIC down:        %d" % len(a_down))
    print("  class B, NIC up:          %d" % len(b_up))
    print("  unrelated KPIs flagged:   %d" % len(spurious))
    print()
    print("The rebalancing worked: traffic moved from class A to "
          "class B, and FUNNEL confirmed it from telemetry alone.")

    assert len(a_down) >= 6 and len(b_up) >= 6
    assert len(spurious) <= 1


if __name__ == "__main__":
    main()
