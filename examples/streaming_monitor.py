#!/usr/bin/env python
"""Online monitoring: metric-store pushes driving streaming FUNNEL.

This is the deployment wiring of paper section 2.2: agents deliver
1-minute measurements to the central store, the store *pushes* them to
FUNNEL through a subscription, and the streaming assessor raises its
verdict on the exact bin that completes the evidence — no batch job, no
polling.

Run:
    python examples/streaming_monitor.py
"""

import numpy as np

from repro.core.streaming import StreamingAssessor
from repro.telemetry.kpi import KpiKey
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries
from repro.types import Verdict


def main() -> None:
    rng = np.random.default_rng(21)
    n_treated, n_control, total_minutes, change_minute = 3, 9, 260, 130

    store = MetricStore()
    treated_keys = [KpiKey("server", "t-%d" % i, "latency_ms")
                    for i in range(n_treated)]
    control_keys = [KpiKey("server", "c-%d" % i, "latency_ms")
                    for i in range(n_control)]

    # FUNNEL subscribes: every append lands in a per-tick buffer; when a
    # tick is complete the assessor consumes it.
    assessor = StreamingAssessor(change_index=change_minute)
    tick_buffer = {}
    verdict_holder = {}

    def on_push(key: KpiKey, fragment: TimeSeries) -> None:
        tick_buffer[key] = float(fragment.values[-1])
        if len(tick_buffer) < n_treated + n_control:
            return                      # wait for the tick to complete
        treated = [tick_buffer[k] for k in treated_keys]
        control = [tick_buffer[k] for k in control_keys]
        tick_buffer.clear()
        outcome = assessor.push(treated, control)
        if outcome is not None and "result" not in verdict_holder:
            verdict_holder["result"] = (assessor.position - 1, outcome)

    store.subscribe(treated_keys + control_keys, on_push)

    # The "agents": shared load + per-server noise; the software change
    # at minute 130 regresses latency on the treated servers only.
    shared = 80.0 + rng.normal(0, 2.0, size=total_minutes)
    for minute in range(total_minutes):
        t = minute * 60
        for i, key in enumerate(treated_keys):
            value = shared[minute] + rng.normal(0, 1.0)
            if minute >= change_minute:
                value += 12.0            # the regression
            store.append(key, TimeSeries(t, 60, [value]))
        for key in control_keys:
            store.append(key, TimeSeries(t, 60,
                                         [shared[minute]
                                          + rng.normal(0, 1.0)]))

    assert "result" in verdict_holder, "the regression must be caught"
    minute, outcome = verdict_holder["result"]
    print("change deployed at minute:   %d" % change_minute)
    print("alert raised at minute:      %d (delay %d min)"
          % (minute, minute - change_minute))
    print("verdict:                     %s" % outcome.verdict.value)
    print("DiD impact:                  %+.1f robust sigmas"
          % outcome.did_estimate)
    print("change kind/direction:       %s / %+d"
          % (outcome.change.kind, outcome.change.direction))
    assert outcome.verdict is Verdict.CAUSED_BY_CHANGE


if __name__ == "__main__":
    main()
