"""repro: a reproduction of FUNNEL (Zhang et al., CoNEXT 2015).

FUNNEL assesses the impact of software changes in large Internet-based
services: it identifies the impact set of each change, detects KPI
behaviour changes with a robust, IKA-accelerated Singular Spectrum
Transform, and attributes them to the change with a
difference-in-difference comparison against peer or historical control
groups.

Quickstart::

    import numpy as np
    from repro import Funnel

    rng = np.random.default_rng(0)
    series = 50 + rng.normal(0, 1, size=(16, 200))
    treated, control = series[:4].copy(), series[4:]
    treated[:, 100:] += 8.0                     # the change's impact
    print(Funnel().assess(treated, change_index=100,
                          control=control).verdict)
"""

from .core import (Funnel, FunnelConfig, IkaSST, ImprovedSST,
                   ImprovedSSTParams, SingularSpectrumTransform, SSTParams)
from .types import (Assessment, ChangeKind, DetectedChange, KpiCharacter,
                    LaunchMode, Verdict)

__version__ = "1.0.0"

__all__ = [
    "Funnel", "FunnelConfig", "IkaSST", "ImprovedSST", "ImprovedSSTParams",
    "SingularSpectrumTransform", "SSTParams",
    "Assessment", "ChangeKind", "DetectedChange", "KpiCharacter",
    "LaunchMode", "Verdict",
    "__version__",
]
