"""Comparison baselines: CUSUM (MERCURY) and MRLS (PRISM) + Robust PCA."""

from .cusum import CusumDetector, CusumParams
from .mrls import MrlsDetector, MrlsParams
from .rpca import RpcaResult, robust_pca
from .wow import WeekOverWeekDetector, WowParams

__all__ = ["CusumDetector", "CusumParams", "MrlsDetector", "MrlsParams",
           "RpcaResult", "robust_pca",
           "WeekOverWeekDetector", "WowParams"]
