"""CUSUM behaviour-change detector — the MERCURY baseline ([20], section 6).

MERCURY (Mahimkar et al., SIGCOMM 2010) detects the performance impact of
upgrades with a CUmulative SUM statistic.  For each sliding input window
the first half calibrates the in-control mean and standard deviation; the
two-sided CUSUM recursions then accumulate standardised deviations over
the second half::

    S+_i = max(0, S+_{i-1} + z_i - slack)
    S-_i = max(0, S-_{i-1} - z_i - slack)

and a change is declared when either statistic exceeds a decision
threshold ``h``.  Significance is assessed the way CUSUM deployments
usually do (Taylor's method): the observed CUSUM range is compared with
the ranges of ``n_bootstrap`` random shufflings of the window — a genuine
change survives almost no shuffle.

This bootstrap is also what makes CUSUM's per-window cost exceed
FUNNEL's (Table 2): the statistic itself is O(W), but each window pays
``n_bootstrap`` resampled passes.

The detector's weaknesses reproduced in the paper's Table 1 follow from
the construction: the in-window calibration cannot tell a diurnal climb
from a level shift (poor precision on seasonal KPIs) and the cumulative
sum needs many post-change samples to cross ``h`` (long detection delay,
Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import DetectedChange, as_float_array
from ..core.scoring import classify_change, estimate_change_start

__all__ = ["CusumParams", "CusumDetector"]


@dataclass(frozen=True)
class CusumParams:
    """CUSUM tuning knobs.

    Attributes:
        window: sliding-window length ``W`` (the paper's best-accuracy
            setting for CUSUM is ``W = 60``).
        slack: the allowance ``k`` in standardised units; the classic
            choice 0.5 detects ~1-sigma shifts fastest.
        threshold: decision interval ``h`` in standardised units.
        n_bootstrap: shuffles for the significance test; 0 disables it.
        confidence: fraction of shuffles the observed range must beat.
    """

    window: int = 60
    slack: float = 0.5
    threshold: float = 8.0
    n_bootstrap: int = 100
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.window < 8:
            raise ParameterError("window must be >= 8, got %d" % self.window)
        if self.slack < 0:
            raise ParameterError("slack must be >= 0")
        if self.threshold <= 0:
            raise ParameterError("threshold must be > 0")
        if self.n_bootstrap < 0:
            raise ParameterError("n_bootstrap must be >= 0")
        if not 0.0 < self.confidence <= 1.0:
            raise ParameterError("confidence must be in (0, 1]")

    @property
    def calibration(self) -> int:
        """Leading samples of each window used to fit mean/sigma."""
        return self.window // 2


class CusumDetector:
    """Sliding-window two-sided CUSUM with bootstrap significance.

    The public surface mirrors the FUNNEL detectors: :meth:`scores` gives
    a per-index statistic (the larger of the two CUSUM statistics at the
    window end, in ``h`` units) and :meth:`detect` applies the decision
    threshold plus the bootstrap test and returns declared changes.
    """

    def __init__(self, params: Optional[CusumParams] = None, seed: int = 0) -> None:
        self.params = params or CusumParams()
        self._rng = np.random.default_rng(seed)

    # -- statistic ----------------------------------------------------------

    def statistic_for_window(self, window_values: Sequence[float]) -> float:
        """Peak two-sided CUSUM statistic over one window, in sigma units."""
        x = as_float_array(window_values, name="window")
        p = self.params
        if x.size < p.window:
            raise InsufficientDataError(
                "window has %d samples, need %d" % (x.size, p.window)
            )
        calib = x[:p.calibration]
        mu = float(calib.mean())
        sigma = float(calib.std())
        if sigma <= 0.0:
            sigma = 1e-9
        z = (x[p.calibration:] - mu) / sigma
        pos = neg = peak = 0.0
        for value in z:
            pos = max(0.0, pos + value - p.slack)
            neg = max(0.0, neg - value - p.slack)
            peak = max(peak, pos, neg)
        return peak

    def _bootstrap_significant(self, window_values: np.ndarray) -> bool:
        """Taylor's shuffle test on the CUSUM range of the window."""
        p = self.params
        if p.n_bootstrap == 0:
            return True
        x = window_values - window_values.mean()
        observed = self._cusum_range(x)
        shuffles = np.array([
            self._cusum_range(self._rng.permutation(x))
            for _ in range(p.n_bootstrap)
        ])
        beaten = float(np.mean(shuffles < observed))
        return beaten >= p.confidence

    @staticmethod
    def _cusum_range(centred: np.ndarray) -> float:
        cumulative = np.cumsum(centred)
        return float(cumulative.max() - cumulative.min())

    # -- detector interface ---------------------------------------------------

    def scores(self, series: Sequence[float]) -> np.ndarray:
        """Per-index CUSUM statistic, normalised by the threshold ``h``.

        ``scores[t] > 1`` means the window ending at ``t`` crossed the
        decision interval.  Indices before the first full window hold 0.
        """
        x = as_float_array(series)
        p = self.params
        if x.size < p.window:
            raise InsufficientDataError(
                "series of length %d is shorter than the window %d"
                % (x.size, p.window)
            )
        out = np.zeros(x.size, dtype=np.float64)
        for end in range(p.window, x.size + 1):
            stat = self.statistic_for_window(x[end - p.window:end])
            out[end - 1] = stat / p.threshold
        return out

    def detect(self, series: Sequence[float],
               first_only: bool = False) -> List[DetectedChange]:
        """Declared changes: threshold crossing + bootstrap significance."""
        x = as_float_array(series)
        p = self.params
        if x.size < p.window:
            raise InsufficientDataError(
                "series of length %d is shorter than the window %d"
                % (x.size, p.window)
            )
        changes: List[DetectedChange] = []
        end = p.window
        while end <= x.size:
            window = x[end - p.window:end]
            stat = self.statistic_for_window(window)
            if stat > p.threshold and self._bootstrap_significant(window):
                detected_at = end - 1
                start = estimate_change_start(x, detected_at,
                                              baseline=end - p.window
                                              + p.calibration)
                kind = classify_change(x, start, detected_at)
                calib_mean = window[:p.calibration].mean()
                direction = 1 if x[detected_at] >= calib_mean else -1
                changes.append(DetectedChange(
                    index=detected_at,
                    start_index=start,
                    score=stat / p.threshold,
                    kind=kind,
                    direction=direction,
                ))
                if first_only:
                    break
                end += p.window      # skip past the declared window
            else:
                end += 1
        return changes
