"""MRLS — Multiscale Robust Local Subspace (the PRISM baseline, [18]).

PRISM (Mahimkar et al., CoNEXT 2011) detects maintenance-induced
behaviour changes by modelling the *local* normal behaviour of a KPI as a
low-dimensional subspace fitted robustly (l1 criterion) at several time
scales, and scoring how far the most recent samples fall outside that
subspace.  The FUNNEL paper does not restate the algorithm; this
implementation follows the cited construction:

* each sliding window is analysed at ``scales`` (1-, 2-, 4-minute
  aggregation) to catch both abrupt and slow changes;
* at each scale the window's trajectory (Hankel) matrix is separated
  into a low-rank local subspace plus sparse deviations with Robust PCA
  (:func:`repro.baselines.rpca.robust_pca` — the iterated-SVD l1 step the
  paper's section 1 identifies as MRLS's cost);
* the change score is the robustly-normalised sparse energy attributed
  to the trailing samples of the window, maximised across scales.

The reproduction preserves the two behaviours the paper reports: low
detection delay with robustness to baseline contamination, but high
sensitivity to spikes in *variable* KPIs (the sparse component cannot
distinguish a persistent shift from a large one-off excursion — Table 1's
57.95% accuracy on variable data) and a per-window cost dominated by
dozens of full SVDs (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.hankel import diagonal_average, hankel_matrix
from ..core.robust import MAD_TO_SIGMA, median_and_mad
from ..core.scoring import classify_change, estimate_change_start
from ..exceptions import InsufficientDataError, ParameterError
from ..types import DetectedChange, as_float_array
from .rpca import robust_pca

__all__ = ["MrlsParams", "MrlsDetector"]


@dataclass(frozen=True)
class MrlsParams:
    """MRLS tuning knobs.

    Attributes:
        window: sliding-window length ``W`` (paper best: 32).
        scales: aggregation factors for the multiscale analysis.
        recent: number of trailing (finest-scale) samples whose sparse
            energy constitutes the change score.
        threshold: declared-change bound on the normalised score.
        spike_weight: down-weighting of the sparse (outlier) channel
            relative to the low-rank (persistent shift) channel.
        rpca_tolerance / rpca_max_iterations: forwarded to Robust PCA.
    """

    window: int = 32
    scales: Tuple[int, ...] = (1, 2, 4)
    recent: int = 4
    threshold: float = 4.0
    spike_weight: float = 0.4
    rpca_tolerance: float = 1e-6
    rpca_max_iterations: int = 100
    rpca_sparsity_scale: float = 1.0
    """Multiplier on Robust PCA's default ``1/sqrt(max(m, n))`` sparsity
    weight.  Lower values keep young level shifts in the sparse component
    longer (slower, more conservative detection) — used by the ablation
    benches to trade delay against false positives."""

    def __post_init__(self) -> None:
        if self.window < 8:
            raise ParameterError("window must be >= 8, got %d" % self.window)
        if not self.scales:
            raise ParameterError("at least one scale is required")
        if any(s < 1 for s in self.scales):
            raise ParameterError("scales must be positive, got %r"
                                 % (self.scales,))
        if max(self.scales) * 4 > self.window:
            raise ParameterError(
                "largest scale %d too coarse for window %d"
                % (max(self.scales), self.window)
            )
        if not 1 <= self.recent <= self.window:
            raise ParameterError("recent must be in [1, window]")
        if self.threshold <= 0:
            raise ParameterError("threshold must be positive")


def _aggregate(window_values: np.ndarray, scale: int) -> np.ndarray:
    """Average ``window_values`` over non-overlapping blocks of ``scale``."""
    if scale == 1:
        return window_values
    usable = (window_values.size // scale) * scale
    return window_values[-usable:].reshape(-1, scale).mean(axis=1)


class MrlsDetector:
    """Sliding-window multiscale robust-local-subspace change detector."""

    def __init__(self, params: Optional[MrlsParams] = None) -> None:
        self.params = params or MrlsParams()

    def statistic_for_window(self, window_values: Sequence[float]) -> float:
        """Normalised multiscale sparse-energy score for one window."""
        x = as_float_array(window_values, name="window")
        p = self.params
        if x.size < p.window:
            raise InsufficientDataError(
                "window has %d samples, need %d" % (x.size, p.window)
            )
        # Normalise by the *leading* half only: the trailing samples are
        # the ones under test and would deflate the scale when a change
        # is present in the window.
        _, scale_est = median_and_mad(x[:x.size // 2])
        sigma = MAD_TO_SIGMA * scale_est + 1e-9

        best = 0.0
        for scale in p.scales:
            agg = _aggregate(x, scale)
            emb = max(3, agg.size // 3)
            count = agg.size - emb + 1
            recent = max(1, -(-p.recent // scale))    # ceil division
            if count <= recent:
                continue
            trajectory = hankel_matrix(agg, emb, count)
            sparsity = (p.rpca_sparsity_scale
                        / np.sqrt(max(trajectory.shape)))
            result = robust_pca(
                trajectory,
                sparsity=sparsity,
                tolerance=p.rpca_tolerance,
                max_iterations=p.rpca_max_iterations,
            )
            # Map both components back to the time domain.  The l1
            # criterion treats a *young* level shift as sparse outliers:
            # only once the new level occupies enough of the window does
            # the nuclear norm find it cheaper to absorb it into the
            # local subspace — at which point the low-rank reconstruction
            # shows the shift.  This absorption lag is what gives MRLS
            # its multi-minute detection delay on genuine changes
            # (Fig. 5) despite its robustness to outliers.
            smooth = diagonal_average(result.low_rank)
            outliers = diagonal_average(result.sparse)

            baseline = np.median(smooth[:count - recent])
            shift_score = abs(
                float(np.median(smooth[-max(recent, 2):])) - baseline
            ) / sigma
            # The sparse channel fires immediately on any excursion, but
            # only *outsized* ones (the benign spikes of variable KPIs)
            # should cross a threshold calibrated for level shifts — hence
            # the down-weighting.
            spike_score = float(np.abs(outliers[-recent:]).max()) / sigma
            best = max(best, shift_score, p.spike_weight * spike_score)
        return best

    def scores(self, series: Sequence[float]) -> np.ndarray:
        """Per-index MRLS statistic, normalised by the threshold.

        ``scores[t] > 1`` means the window ending at ``t`` scored above
        the declaration threshold.
        """
        x = as_float_array(series)
        p = self.params
        if x.size < p.window:
            raise InsufficientDataError(
                "series of length %d is shorter than the window %d"
                % (x.size, p.window)
            )
        out = np.zeros(x.size, dtype=np.float64)
        for end in range(p.window, x.size + 1):
            stat = self.statistic_for_window(x[end - p.window:end])
            out[end - 1] = stat / p.threshold
        return out

    def detect(self, series: Sequence[float],
               first_only: bool = False) -> List[DetectedChange]:
        """Declared changes at threshold crossings of the MRLS statistic."""
        x = as_float_array(series)
        p = self.params
        if x.size < p.window:
            raise InsufficientDataError(
                "series of length %d is shorter than the window %d"
                % (x.size, p.window)
            )
        changes: List[DetectedChange] = []
        end = p.window
        while end <= x.size:
            stat = self.statistic_for_window(x[end - p.window:end])
            if stat > p.threshold:
                detected_at = end - 1
                start = estimate_change_start(x, detected_at,
                                              baseline=max(1, end - p.window))
                kind = classify_change(x, start, detected_at)
                window = x[end - p.window:end]
                direction = 1 if x[detected_at] >= np.median(window) else -1
                changes.append(DetectedChange(
                    index=detected_at,
                    start_index=start,
                    score=stat / p.threshold,
                    kind=kind,
                    direction=direction,
                ))
                if first_only:
                    break
                end += p.window
            else:
                end += 1
        return changes
