"""Robust PCA via the Inexact Augmented Lagrange Multiplier method.

The MRLS baseline ([18], PRISM) builds robust local subspaces by
iterating SVDs under an l1 criterion; the paper's complexity discussion
points at Lin, Chen & Ma's ALM algorithm ([17]) as the canonical way such
decompositions are computed.  This module implements the inexact ALM for

    minimise  ||L||_* + lambda * ||S||_1   subject to  D = L + S

i.e. the separation of an observation matrix ``D`` into a low-rank part
``L`` (the local subspace / normal behaviour) and a sparse part ``S``
(outliers, spikes and behaviour changes).  Every iteration performs one
full SVD — this is precisely the cost that makes MRLS four orders of
magnitude slower than FUNNEL in Table 2, so no attempt is made to
shortcut it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConvergenceError, ParameterError

__all__ = ["RpcaResult", "robust_pca"]


@dataclass(frozen=True)
class RpcaResult:
    """Decomposition ``D = low_rank + sparse`` with convergence metadata."""

    low_rank: np.ndarray
    sparse: np.ndarray
    iterations: int
    converged: bool

    @property
    def rank(self) -> int:
        """Numerical rank of the recovered low-rank component."""
        s = np.linalg.svd(self.low_rank, compute_uv=False)
        if s.size == 0 or s[0] == 0.0:
            return 0
        return int(np.sum(s > 1e-9 * s[0]))


def _shrink(matrix: np.ndarray, tau: float) -> np.ndarray:
    """Elementwise soft-thresholding (the l1 proximal operator)."""
    return np.sign(matrix) * np.maximum(np.abs(matrix) - tau, 0.0)


def _svd_shrink(matrix: np.ndarray, tau: float) -> np.ndarray:
    """Singular-value thresholding (the nuclear-norm proximal operator)."""
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    s = np.maximum(s - tau, 0.0)
    return (u * s) @ vt


def robust_pca(observations: np.ndarray, sparsity: Optional[float] = None,
               tolerance: float = 1e-7, max_iterations: int = 200,
               strict: bool = False) -> RpcaResult:
    """Inexact-ALM Robust PCA of ``observations``.

    Args:
        observations: the ``m x n`` data matrix ``D``.
        sparsity: the trade-off ``lambda``; defaults to the standard
            ``1 / sqrt(max(m, n))``.
        tolerance: relative Frobenius residual at which to stop.
        max_iterations: iteration cap.
        strict: raise :class:`~repro.exceptions.ConvergenceError` instead
            of returning a non-converged result when the cap is hit.

    Returns:
        The :class:`RpcaResult` decomposition.
    """
    d = np.asarray(observations, dtype=np.float64)
    if d.ndim != 2 or d.size == 0:
        raise ParameterError(
            "observations must be a non-empty 2-D matrix, got shape %s"
            % (d.shape,)
        )
    if not np.all(np.isfinite(d)):
        raise ParameterError("observations contain NaN or infinite values")
    m, n = d.shape
    if sparsity is None:
        sparsity = 1.0 / np.sqrt(max(m, n))
    if sparsity <= 0:
        raise ParameterError("sparsity must be positive, got %g" % sparsity)

    norm_fro = np.linalg.norm(d)
    if norm_fro == 0.0:
        zeros = np.zeros_like(d)
        return RpcaResult(zeros, zeros.copy(), iterations=0, converged=True)

    # Standard inexact-ALM initialisation (Lin et al., Algorithm 5).
    norm_two = np.linalg.svd(d, compute_uv=False)[0]
    norm_inf = np.abs(d).max() / sparsity
    dual_norm = max(norm_two, norm_inf)
    y = d / dual_norm
    mu = 1.25 / norm_two
    mu_cap = mu * 1e7
    rho = 1.5

    low_rank = np.zeros_like(d)
    sparse = np.zeros_like(d)
    converged = False
    iteration = 0

    while iteration < max_iterations:
        iteration += 1
        low_rank = _svd_shrink(d - sparse + y / mu, 1.0 / mu)
        sparse = _shrink(d - low_rank + y / mu, sparsity / mu)
        residual = d - low_rank - sparse
        y = y + mu * residual
        mu = min(mu * rho, mu_cap)
        if np.linalg.norm(residual) / norm_fro < tolerance:
            converged = True
            break

    if not converged and strict:
        raise ConvergenceError(
            "robust PCA did not converge in %d iterations" % max_iterations,
            iterations=iteration,
        )
    return RpcaResult(low_rank=low_rank, sparse=sparse,
                      iterations=iteration, converged=converged)
