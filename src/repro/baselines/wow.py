"""Week-over-week change detection — the seasonal-decomposition baseline.

Section 6 cites Chen et al. [10] ("A provider-side view of web search
response time"): to handle strongly seasonal series they detect changes
*week over week*, comparing each sample against the same clock position
in previous weeks instead of against the immediate past.  This is the
classic operations-team heuristic FUNNEL's historical DiD generalises,
so it makes a natural extra baseline for the seasonal ablations:

* it is nearly immune to any pattern that repeats weekly (by
  construction), but
* it needs weeks of history per KPI, and
* its delay is bounded below by the deviation-persistence it demands —
  with far less statistical machinery than DiD it cannot separate "the
  whole service moved" from "the change moved the treated servers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.robust import MAD_TO_SIGMA, median_and_mad
from ..core.scoring import classify_change, estimate_change_start
from ..exceptions import InsufficientDataError, ParameterError
from ..types import DetectedChange, as_float_array

__all__ = ["WowParams", "WeekOverWeekDetector"]


@dataclass(frozen=True)
class WowParams:
    """Week-over-week tuning knobs.

    Attributes:
        period: samples per seasonal period (10080 for weekly at
            1-minute bins; tests typically use daily periods).
        n_periods: how many past periods form the reference.
        threshold_sigmas: deviation (in robust sigmas of the reference
            spread) that marks a sample anomalous.
        persistence: consecutive anomalous samples required to declare.
    """

    period: int = 7 * 24 * 60
    n_periods: int = 4
    threshold_sigmas: float = 4.0
    persistence: int = 7

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ParameterError("period must be >= 2 samples")
        if self.n_periods < 1:
            raise ParameterError("n_periods must be >= 1")
        if self.threshold_sigmas <= 0:
            raise ParameterError("threshold_sigmas must be positive")
        if self.persistence < 1:
            raise ParameterError("persistence must be >= 1")

    @property
    def history_needed(self) -> int:
        return self.period * self.n_periods


class WeekOverWeekDetector:
    """Detects deviations from the same-clock-position reference.

    For each sample ``x[t]`` with ``t >= period * n_periods``, the
    reference set is ``{x[t - k*period] : k = 1..n_periods}``; the sample
    is anomalous when it leaves the reference median by more than
    ``threshold_sigmas`` robust sigmas (reference MAD pooled with a
    global noise floor).  A run of ``persistence`` anomalous samples on
    one side declares a change.
    """

    def __init__(self, params: Optional[WowParams] = None) -> None:
        self.params = params or WowParams()

    def deviations(self, series: Sequence[float]) -> np.ndarray:
        """Per-sample deviation in robust sigmas (0 where no history)."""
        x = as_float_array(series)
        p = self.params
        if x.size <= p.history_needed:
            raise InsufficientDataError(
                "need more than %d samples for %d periods of history, "
                "have %d" % (p.history_needed, p.n_periods, x.size)
            )
        out = np.zeros(x.size, dtype=np.float64)
        # Global noise floor: robust scale of one-period differences.
        diffs = x[p.period:] - x[:-p.period]
        _, floor = median_and_mad(diffs)
        floor = MAD_TO_SIGMA * floor + 1e-9

        start = p.history_needed
        n_ref = p.n_periods
        refs = np.empty((n_ref, x.size - start), dtype=np.float64)
        for k in range(1, n_ref + 1):
            refs[k - 1] = x[start - k * p.period:
                            x.size - k * p.period]
        ref_median = np.median(refs, axis=0)
        ref_mad = np.median(np.abs(refs - ref_median), axis=0)
        scale = np.maximum(MAD_TO_SIGMA * ref_mad, floor)
        out[start:] = (x[start:] - ref_median) / scale
        return out

    def detect(self, series: Sequence[float],
               first_only: bool = False) -> List[DetectedChange]:
        """Declared changes from persistent week-over-week deviations."""
        x = as_float_array(series)
        p = self.params
        z = self.deviations(x)
        changes: List[DetectedChange] = []
        run = 0
        direction = 0
        t = p.history_needed
        while t < x.size:
            value = z[t]
            if abs(value) > p.threshold_sigmas:
                side = 1 if value > 0 else -1
                if run and side != direction:
                    run = 0
                direction = side
                run += 1
                if run >= p.persistence:
                    start = estimate_change_start(
                        x, t, baseline=t - run,
                        threshold_sigmas=p.threshold_sigmas)
                    changes.append(DetectedChange(
                        index=t,
                        start_index=min(start, t),
                        score=float(np.abs(z[t - run + 1:t + 1]).max()),
                        kind=classify_change(x, min(start, t), t),
                        direction=direction,
                    ))
                    if first_only:
                        return changes
                    run = 0
                    t += p.persistence
                    continue
            else:
                run = 0
            t += 1
        return changes
