"""Software changes: records, the change log, rollout policies."""

from .change import ConfigScope, SoftwareChange, next_change_id
from .log import ChangeLog
from .rollout import RolloutPlan, RolloutPolicy, plan_rollout

__all__ = ["ConfigScope", "SoftwareChange", "next_change_id", "ChangeLog",
           "RolloutPlan", "RolloutPolicy", "plan_rollout"]
