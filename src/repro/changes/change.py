"""Software-change records — paper section 2.1.

FUNNEL assesses two change types: *software upgrades* (new features, bug
fixes, performance work — assessed as a whole, not per feature) and
*configuration changes* (OS/infrastructure configuration, service
configuration, deployment scale, data source).  A change is identified
by the service it targets, the servers it was deployed on, and its
timestamp; whether it was Dark or Full launched follows from comparing
the deployed servers with the service's full deployment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import ChangeLogError
from ..types import ChangeKind, LaunchMode

__all__ = ["SoftwareChange", "ConfigScope", "next_change_id",
           "combine_changes"]

_change_counter = itertools.count(1)


def next_change_id() -> str:
    """A process-unique change identifier (``chg-000001``-style)."""
    return "chg-%06d" % next(_change_counter)


class ConfigScope:
    """The configuration-change scopes enumerated in section 2.1."""

    OS = "os"
    INFRASTRUCTURE = "infrastructure"
    SERVICE = "service"
    DEPLOYMENT_SCALE = "deployment_scale"
    DATA_SOURCE = "data_source"

    ALL = (OS, INFRASTRUCTURE, SERVICE, DEPLOYMENT_SCALE, DATA_SOURCE)


@dataclass(frozen=True)
class SoftwareChange:
    """One software change as recorded in the change deployment logs.

    Attributes:
        change_id: unique identifier.
        kind: upgrade or configuration change.
        service: the changed service's name.
        hostnames: servers the change was deployed on (the tservers).
        at_time: deployment timestamp (simulation seconds).
        description: operator-facing summary.
        config_scope: for configuration changes, one of
            :class:`ConfigScope`; ``None`` for upgrades.
    """

    change_id: str
    kind: ChangeKind
    service: str
    hostnames: Tuple[str, ...]
    at_time: int
    description: str = ""
    config_scope: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.change_id:
            raise ChangeLogError("change_id must be non-empty")
        if not self.service:
            raise ChangeLogError("change %s names no service" % self.change_id)
        hostnames = tuple(self.hostnames)
        if not hostnames:
            raise ChangeLogError(
                "change %s deployed on no servers" % self.change_id
            )
        if len(set(hostnames)) != len(hostnames):
            raise ChangeLogError(
                "change %s lists duplicate servers" % self.change_id
            )
        object.__setattr__(self, "hostnames", hostnames)
        if self.kind is ChangeKind.CONFIG_CHANGE:
            if (self.config_scope is not None
                    and self.config_scope not in ConfigScope.ALL):
                raise ChangeLogError(
                    "invalid config scope %r" % self.config_scope
                )
        elif self.config_scope is not None:
            raise ChangeLogError(
                "software upgrades carry no config scope"
            )

    def launch_mode(self, service_hostnames: Tuple[str, ...]) -> LaunchMode:
        """Dark vs Full launching, given the service's full deployment."""
        remaining = set(service_hostnames) - set(self.hostnames)
        return LaunchMode.DARK if remaining else LaunchMode.FULL


def combine_changes(changes: "Tuple[SoftwareChange, ...]",
                    description: str = "") -> SoftwareChange:
    """Merge concurrent/consecutive same-service changes into one record.

    Section 2.1 excludes interactions across multiple concurrent changes
    on a server but notes they "can be considered as one combined change
    as a straw man approach" — this is that straw man: the combined
    record targets the union of the servers, is stamped with the earliest
    deployment time, and is typed as an upgrade if any member is one
    (the broader of the two kinds).

    Raises:
        ChangeLogError: if the changes span multiple services or the
            input is empty.
    """
    members = tuple(changes)
    if not members:
        raise ChangeLogError("cannot combine zero changes")
    services = {c.service for c in members}
    if len(services) != 1:
        raise ChangeLogError(
            "combined changes must share one service, got %s"
            % sorted(services)
        )
    hostnames = tuple(dict.fromkeys(
        host for change in members for host in change.hostnames
    ))
    kind = (ChangeKind.SOFTWARE_UPGRADE
            if any(c.kind is ChangeKind.SOFTWARE_UPGRADE for c in members)
            else ChangeKind.CONFIG_CHANGE)
    joined = description or "; ".join(
        c.description for c in members if c.description
    )
    return SoftwareChange(
        change_id=next_change_id(),
        kind=kind,
        service=members[0].service,
        hostnames=hostnames,
        at_time=min(c.at_time for c in members),
        description=joined,
    )
