"""The change deployment log.

Paper section 3.1: "The set of tservers is directly obtained from the
software change logs."  The log is the source of truth FUNNEL reads
impact sets from; it also enforces the operational practice section 3.1
relies on: "The operations team usually does not deploy two software
changes in one service at the same time."
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..exceptions import ChangeLogError
from .change import SoftwareChange

__all__ = ["ChangeLog"]


class ChangeLog:
    """Append-only record of software changes, indexed by service and time."""

    def __init__(self, concurrency_guard_seconds: int = 3600) -> None:
        """Args:
            concurrency_guard_seconds: two changes to the *same service*
                closer than this are rejected, encoding the no-concurrent-
                changes practice (1 hour matches the paper's assessment
                horizon).  Set 0 to disable.
        """
        self._by_id: Dict[str, SoftwareChange] = {}
        self._by_service: Dict[str, List[SoftwareChange]] = {}
        self.concurrency_guard_seconds = concurrency_guard_seconds

    def record(self, change: SoftwareChange) -> SoftwareChange:
        """Append a change; rejects duplicates and same-service overlaps."""
        if change.change_id in self._by_id:
            raise ChangeLogError("duplicate change id %r" % change.change_id)
        if self.concurrency_guard_seconds:
            for other in self._by_service.get(change.service, ()):
                if (abs(other.at_time - change.at_time)
                        < self.concurrency_guard_seconds):
                    raise ChangeLogError(
                        "change %s overlaps %s on service %r within the "
                        "%d-second guard"
                        % (change.change_id, other.change_id, change.service,
                           self.concurrency_guard_seconds)
                    )
        self._by_id[change.change_id] = change
        self._by_service.setdefault(change.service, []).append(change)
        self._by_service[change.service].sort(key=lambda c: c.at_time)
        return change

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[SoftwareChange]:
        return iter(sorted(self._by_id.values(), key=lambda c: c.at_time))

    def get(self, change_id: str) -> SoftwareChange:
        try:
            return self._by_id[change_id]
        except KeyError:
            raise ChangeLogError("unknown change id %r" % change_id) from None

    def for_service(self, service: str) -> List[SoftwareChange]:
        return list(self._by_service.get(service, ()))

    def in_window(self, from_time: int, to_time: int) -> List[SoftwareChange]:
        """Changes with ``from_time <= at_time < to_time``, time-ordered."""
        return [c for c in self if from_time <= c.at_time < to_time]

    def latest_before(self, service: str,
                      at_time: int) -> Optional[SoftwareChange]:
        """The most recent change to ``service`` strictly before ``at_time``.

        Used to assess baseline contamination: a recent prior change may
        still pollute the 30-day historical control.
        """
        candidates = [c for c in self._by_service.get(service, ())
                      if c.at_time < at_time]
        return candidates[-1] if candidates else None
