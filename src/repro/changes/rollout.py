"""Rollout policies: Dark Launching and Full Launching.

Paper section 1: instead of rolling a change out to all servers at once,
the operations team "deploys the software change on a subset of servers
at the beginning and continuously monitors a predefined list of KPIs"
(Dark Launching).  The rollout policy decides the treated subset; the
remainder become the control group FUNNEL's DiD stage compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ChangeLogError, ParameterError
from ..types import ChangeKind, LaunchMode
from .change import SoftwareChange, next_change_id

__all__ = ["RolloutPolicy", "RolloutPlan", "plan_rollout"]


@dataclass(frozen=True)
class RolloutPolicy:
    """How a change is deployed across a service's servers.

    Attributes:
        mode: Dark or Full launching.
        treated_fraction: for Dark launches, the fraction of servers in
            the first stage (at least one server is always treated and at
            least one is always left as control).
        seed: RNG seed for choosing the treated subset.
    """

    mode: LaunchMode = LaunchMode.DARK
    treated_fraction: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode is LaunchMode.DARK:
            if not 0.0 < self.treated_fraction < 1.0:
                raise ParameterError(
                    "treated_fraction must be in (0, 1) for dark launches, "
                    "got %g" % self.treated_fraction
                )


@dataclass(frozen=True)
class RolloutPlan:
    """The concrete treated/control split for one change."""

    treated: Tuple[str, ...]
    control: Tuple[str, ...]
    mode: LaunchMode

    def __post_init__(self) -> None:
        overlap = set(self.treated) & set(self.control)
        if overlap:
            raise ChangeLogError(
                "servers in both treated and control groups: %s"
                % sorted(overlap)
            )
        if not self.treated:
            raise ChangeLogError("rollout plan treats no servers")
        if self.mode is LaunchMode.DARK and not self.control:
            raise ChangeLogError("dark launch with an empty control group")
        if self.mode is LaunchMode.FULL and self.control:
            raise ChangeLogError("full launch with a control group")

    def to_change(self, service: str, kind: ChangeKind, at_time: int,
                  description: str = "",
                  config_scope: Optional[str] = None) -> SoftwareChange:
        """Materialise the plan as a change-log record."""
        return SoftwareChange(
            change_id=next_change_id(),
            kind=kind,
            service=service,
            hostnames=self.treated,
            at_time=at_time,
            description=description,
            config_scope=config_scope,
        )


def plan_rollout(hostnames: Sequence[str],
                 policy: Optional[RolloutPolicy] = None) -> RolloutPlan:
    """Split a service's servers into treated and control groups.

    For Dark launches picks ``ceil(n * treated_fraction)`` servers
    (clamped so both groups are non-empty); Full launches treat all.

    Raises:
        ParameterError: for an empty server list, or a single-server
            service asked to dark-launch (no control group possible).
    """
    hosts: List[str] = list(dict.fromkeys(hostnames))
    if not hosts:
        raise ParameterError("cannot plan a rollout over zero servers")
    policy = policy or RolloutPolicy()

    if policy.mode is LaunchMode.FULL:
        return RolloutPlan(treated=tuple(hosts), control=(),
                           mode=LaunchMode.FULL)

    if len(hosts) < 2:
        raise ParameterError(
            "dark launching needs at least 2 servers, got %d" % len(hosts)
        )
    count = int(np.ceil(len(hosts) * policy.treated_fraction))
    count = max(1, min(count, len(hosts) - 1))
    rng = np.random.default_rng(policy.seed)
    treated_idx = rng.choice(len(hosts), size=count, replace=False)
    treated = tuple(hosts[i] for i in sorted(treated_idx))
    control = tuple(h for h in hosts if h not in set(treated))
    return RolloutPlan(treated=treated, control=control, mode=LaunchMode.DARK)
