"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``detect``   — declare behaviour changes in one KPI series CSV.
* ``assess``   — full FUNNEL assessment: treated (+ optional control /
  history) wide CSVs around a change minute; prints the verdict.
* ``generate`` — write a synthetic treated/control pair to CSV, for
  trying the tool without production data.
* ``cost``     — measure the Table 2 per-window costs on this machine.
* ``assess-fleet`` — run the batched assessment engine over a synthetic
  fleet scenario (changes x impact sets x KPIs) and print the report,
  including per-stage instrumentation and precision/recall against the
  scenario's ground truth.  With ``--obs-dir <d>`` the run also records
  structured observability artifacts (``events.jsonl`` + ``run.json``).
* ``live-replay`` — stream the same synthetic fleet scenario through
  the live assessment service (``repro.live``) in accelerated virtual
  time; optionally verify the verdict stream against the offline engine
  (``--check-offline``) and write it as JSONL (``--verdicts``).
  ``--checkpoint``/``--resume-from`` snapshot and restore the session
  state mid-stream; ``--kill-after-ticks`` simulates a crash.
* ``chaos-replay`` — ``live-replay`` under a named fault plan
  (``repro.faults``): delayed/dropped/duplicated/reordered pushes,
  transient history errors, agent silence.  Asserts the live verdicts
  still match the offline engine; exits 1 on a parity failure.
* ``cluster-replay`` — the sharded twin of ``live-replay``
  (``repro.cluster``): partition the fleet across ``--shards`` worker
  processes by consistent hashing, supervise them (heartbeats, crash
  and hang recovery from per-shard checkpoints), and fan the verdict
  streams back into one deterministic merged JSONL, byte-identical to
  the single-process run.  ``--kill-shard K --at-tick T`` crashes a
  shard mid-run to prove recovery; ``--fault-plan`` layers chaos on
  top; ``--health`` writes one heartbeat stream per shard.
* ``obs report`` — profile a recorded ``--obs-dir`` run: per-stage /
  per-detector time breakdown (self vs. child time, slowest jobs) as an
  ASCII table plus the run's counters (including the live pipeline's
  shed/gap counters), optionally exporting flamegraph ``folded``
  stacks.
* ``obs health-report`` — render a live run's heartbeat stream
  (``live-replay --health <path>``): SLO attainment, burn alerts, lag
  percentiles over time, and FUNNEL-on-FUNNEL self-assessment verdicts;
  ``--min/--max-self-detections`` turn it into a CI gate.

All commands emit JSON on stdout so they compose with shell tooling —
except ``obs report``, whose default output is the human-readable
table (pass ``--json`` for a machine-readable profile).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .core.funnel import Funnel, FunnelConfig
from .core.rsst import ImprovedSSTParams
from .exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FUNNEL: impact assessment of software changes "
                    "(CoNEXT'15 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version="repro %s" % __version__)
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="declare behaviour changes in "
                            "one series CSV (timestamp,value)")
    detect.add_argument("series", help="long-format CSV path")
    detect.add_argument("--change-minute", type=int, default=0,
                        help="bin index of the software change "
                             "(default: 0 = scan everything)")
    _add_funnel_options(detect)

    assess = sub.add_parser("assess", help="assess one change with "
                            "treated/control wide CSVs")
    assess.add_argument("treated", help="wide CSV of treated units")
    assess.add_argument("--control", help="wide CSV of control units "
                        "(cservers/cinstances)")
    assess.add_argument("--history", help="wide CSV whose columns are "
                        "historical days (same clock window)")
    assess.add_argument("--change-minute", type=int, required=True,
                        help="bin index of the software change")
    _add_funnel_options(assess)

    generate = sub.add_parser("generate", help="write a synthetic "
                              "treated/control pair to CSV")
    generate.add_argument("--out-treated", required=True)
    generate.add_argument("--out-control", required=True)
    generate.add_argument("--character", default="stationary",
                          choices=("seasonal", "stationary", "variable"))
    generate.add_argument("--effect-sigmas", type=float, default=6.0)
    generate.add_argument("--minutes", type=int, default=240)
    generate.add_argument("--change-minute", type=int, default=120)
    generate.add_argument("--seed", type=int, default=0)

    cost = sub.add_parser("cost", help="measure per-window costs "
                          "(Table 2) on this machine")
    cost.add_argument("--seconds", type=float, default=0.5,
                      help="measurement budget per method")

    fleet = sub.add_parser("assess-fleet", help="assess a synthetic fleet "
                           "scenario through the batched engine")
    fleet.add_argument("--services", type=int, default=6,
                       help="services in the generated fleet")
    fleet.add_argument("--servers", type=int, default=48,
                       help="servers in the generated fleet")
    fleet.add_argument("--changes", type=int, default=8,
                       help="software changes to assess")
    fleet.add_argument("--impact-fraction", type=float, default=0.5,
                       help="fraction of changes with genuine impact")
    fleet.add_argument("--history-days", type=int, default=2,
                       help="days of lead telemetry (historical control)")
    fleet.add_argument("--detectors", default="funnel",
                       help="comma-separated methods "
                            "(funnel,improved_sst,cusum,mrls,wow)")
    fleet.add_argument("--workers", type=int, default=0,
                       help="process-pool size (0 = serial)")
    fleet.add_argument("--batch-size", type=int, default=16,
                       help="jobs per executor batch")
    fleet.add_argument("--detect-mode", choices=("per_item", "batched"),
                       default="per_item",
                       help="per_item runs each job's full pipeline "
                            "individually; batched stacks same-length "
                            "funnel-family jobs into one scoring pass "
                            "(bit-identical results, higher throughput)")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--obs-dir",
                       help="directory to write run artifacts "
                            "(events.jsonl + run.json) into")
    fleet.add_argument("--verdicts",
                       help="also write one JSON line per "
                            "(change, entity, KPI) verdict here")
    _add_funnel_options(fleet)

    live = sub.add_parser(
        "live-replay",
        help="stream a synthetic fleet scenario through the live "
             "assessment service in accelerated virtual time")
    _add_live_replay_options(live)
    live.add_argument("--check-offline", action="store_true",
                      help="also run the offline engine and verify the "
                           "verdict sets match")
    _add_funnel_options(live)

    chaos = sub.add_parser(
        "chaos-replay",
        help="live-replay under an injected fault plan, asserting "
             "live-vs-offline verdict parity survives")
    _add_live_replay_options(chaos)
    chaos.add_argument("--plan", default="drop-delay-dup",
                       help="named fault plan: %s" % ", ".join(
                           _chaos_plan_names()))
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault plan's deterministic coin")
    chaos.add_argument("--fault-offset-bins", type=int, default=0,
                       help="push windowed faults (agent-silence) this "
                            "many bins into the stream — a mid-run "
                            "outage instead of a cold-start one")
    _add_funnel_options(chaos)

    cluster = sub.add_parser(
        "cluster-replay",
        help="shard the live replay across worker processes and merge "
             "the verdict streams back into one deterministic file")
    _add_scenario_options(cluster)
    _add_live_runtime_options(cluster)
    cluster.add_argument("--shards", type=int, default=4,
                         help="worker processes the fleet is "
                              "partitioned across")
    cluster.add_argument("--replicas", type=int, default=64,
                         help="virtual nodes per shard on the hash ring")
    cluster.add_argument("--workdir",
                         help="directory for per-shard verdicts, results "
                              "and checkpoints (default: a temp dir)")
    cluster.add_argument("--verdicts",
                         help="write the merged verdict JSONL here "
                              "(byte-identical to live-replay's)")
    cluster.add_argument("--checkpoint-every", type=int, default=10,
                         help="ticks between per-shard checkpoints")
    cluster.add_argument("--heartbeat-timeout", type=float, default=30.0,
                         help="seconds of worker silence before it "
                              "counts as hung and is restarted")
    cluster.add_argument("--max-restarts", type=int, default=2,
                         help="restarts allowed per shard before "
                              "giving up")
    cluster.add_argument("--kill-shard", type=int, default=None,
                         help="crash this shard mid-run (with --at-tick) "
                              "to exercise supervised recovery")
    cluster.add_argument("--hang-shard", type=int, default=None,
                         help="hang this shard mid-run (with --at-tick) "
                              "to exercise the heartbeat timeout")
    cluster.add_argument("--at-tick", type=int, default=None,
                         help="tick at which --kill-shard/--hang-shard "
                              "strikes")
    cluster.add_argument("--health", action="store_true",
                         help="write one heartbeat stream per shard "
                              "(shard-N/heartbeat.jsonl in --workdir)")
    cluster.add_argument("--fault-plan", default=None,
                         help="also inject a named fault plan in every "
                              "shard: %s" % ", ".join(_chaos_plan_names()))
    cluster.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault plan's coin")
    cluster.add_argument("--obs-dir",
                         help="directory to write merged run artifacts "
                              "into (worker spans and metrics absorbed)")
    cluster.add_argument("--check-offline", action="store_true",
                         help="verify the merged verdicts against the "
                              "offline engine; exit 1 on mismatch")
    _add_funnel_options(cluster)

    obs = sub.add_parser("obs", help="observability tooling")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="profile a recorded --obs-dir run")
    report.add_argument("obs_dir", help="directory written by --obs-dir")
    report.add_argument("--top", type=int, default=10,
                        help="slowest jobs to list")
    report.add_argument("--folded",
                        help="also write flamegraph folded stacks here")
    report.add_argument("--json", action="store_true",
                        help="emit the profile as JSON instead of a table")
    health = obs_sub.add_parser(
        "health-report",
        help="render a live run's heartbeat stream: SLO attainment, "
             "burn alerts, lag over time, self-assessment verdicts")
    health.add_argument("heartbeat",
                        help="heartbeat JSONL written by --health")
    health.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    health.add_argument("--out",
                        help="also write the JSON report here "
                             "(dashboard export)")
    health.add_argument("--min-self-detections", type=int, default=None,
                        help="exit 1 unless at least this many "
                             "self-assessment detections were recorded")
    health.add_argument("--max-self-detections", type=int, default=None,
                        help="exit 1 when more than this many "
                             "self-assessment detections were recorded")

    return parser


def _chaos_plan_names() -> tuple:
    from .faults import PRESET_NAMES
    return PRESET_NAMES


def _add_scenario_options(live: argparse.ArgumentParser) -> None:
    live.add_argument("--services", type=int, default=6)
    live.add_argument("--servers", type=int, default=48)
    live.add_argument("--changes", type=int, default=8)
    live.add_argument("--impact-fraction", type=float, default=0.5)
    live.add_argument("--history-days", type=int, default=2)
    live.add_argument("--window-bins", type=int, default=240,
                      help="bins per change window")
    live.add_argument("--change-offset", type=int, default=80,
                      help="change bin inside its window")
    live.add_argument("--seed", type=int, default=7)


def _add_live_runtime_options(live: argparse.ArgumentParser) -> None:
    live.add_argument("--flush-bins", type=int, default=1,
                      help="bins per streamed fragment")
    live.add_argument("--score-chunk", type=int, default=6,
                      help="bins batched per streaming scoring call "
                           "(throughput knob; verdicts are unaffected)")
    live.add_argument("--pooled-scoring", action="store_true",
                      help="score all trackers' pending segments in one "
                           "stacked pass per tick instead of per "
                           "fragment (bit-identical verdicts)")
    live.add_argument("--fused-ingest", action="store_true",
                      help="run the whole ingest plane in fused batches "
                           "(batched store appends, batch queue drains, "
                           "one arena scatter-write + normalise per "
                           "tick); implies --pooled-scoring, verdicts "
                           "byte-identical")
    live.add_argument("--queue-capacity", type=int, default=64,
                      help="per-KPI ingest queue bound, in fragments")
    live.add_argument("--drain-budget", type=int, default=0,
                      help="fragments drained per tick across all "
                           "changes (0 = unlimited)")
    live.add_argument("--max-active-changes", type=int, default=0,
                      help="cap on concurrently assessed changes "
                           "(0 = unlimited)")


def _add_live_replay_options(live: argparse.ArgumentParser) -> None:
    _add_scenario_options(live)
    _add_live_runtime_options(live)
    live.add_argument("--checkpoint",
                      help="write a session checkpoint (JSONL) here "
                           "periodically")
    live.add_argument("--checkpoint-every", type=int, default=25,
                      help="ticks between checkpoints")
    live.add_argument("--resume-from",
                      help="restore session state from this checkpoint "
                           "and continue the replay")
    live.add_argument("--kill-after-ticks", type=int, default=0,
                      help="stop mid-stream after N ticks without "
                           "shutdown (crash simulation; 0 = run to "
                           "completion)")
    live.add_argument("--verdicts",
                      help="write the verdict stream as JSONL here")
    live.add_argument("--obs-dir",
                      help="directory to write run artifacts into")
    live.add_argument("--health",
                      help="write a per-tick health heartbeat stream "
                           "(JSONL) here; enables SLO tracking and the "
                           "FUNNEL-on-FUNNEL self-assessment loop "
                           "(verdict output is unaffected)")


def _add_funnel_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--omega", type=int, default=9,
                     help="SST window (5=quick, 9=default, 15=precise)")
    sub.add_argument("--did-threshold", type=float, default=0.5,
                     help="normalised DiD attribution threshold")


def _funnel_from(args: argparse.Namespace) -> Funnel:
    config = FunnelConfig(
        sst=ImprovedSSTParams(omega=args.omega),
        did_threshold=args.did_threshold,
    )
    return Funnel(config)


def _cmd_detect(args: argparse.Namespace) -> dict:
    from .io.csvio import read_series
    series = read_series(args.series)
    funnel = _funnel_from(args)
    changes = funnel.detect(series.values, change_index=args.change_minute)
    return {
        "series_bins": len(series),
        "changes": [
            {
                "declared_at_bin": c.index,
                "start_bin": c.start_index,
                "kind": c.kind,
                "direction": c.direction,
                "score": round(c.score, 4),
            }
            for c in changes
        ],
    }


def _cmd_assess(args: argparse.Namespace) -> dict:
    from .io.csvio import read_matrix
    treated, units, _, _ = read_matrix(args.treated)
    control = history = None
    if args.control:
        control, _, _, _ = read_matrix(args.control)
    if args.history:
        history, _, _, _ = read_matrix(args.history)
    funnel = _funnel_from(args)
    result = funnel.assess(treated, args.change_minute, control=control,
                           history=history)
    out = {
        "verdict": result.verdict.value,
        "control": result.control,
        "treated_units": len(units),
    }
    if result.did_estimate is not None:
        out["did_normalised_alpha"] = round(result.did_estimate, 4)
    if result.change is not None:
        out["change"] = {
            "declared_at_bin": result.change.index,
            "start_bin": result.change.start_index,
            "kind": result.change.kind,
            "direction": result.change.direction,
        }
    if result.notes:
        out["notes"] = list(result.notes)
    return out


def _cmd_generate(args: argparse.Namespace) -> dict:
    from .io.csvio import write_matrix
    from .synthetic.effects import LevelShift
    from .synthetic.patterns import pattern_for_character
    from .synthetic.workload import GroupTraceConfig, generate_group
    from .types import KpiCharacter

    rng = np.random.default_rng(args.seed)
    pattern = pattern_for_character(KpiCharacter(args.character))
    scale = pattern.typical_scale()
    traces = generate_group(GroupTraceConfig(
        pattern=pattern,
        n_treated=4, n_control=12, n_bins=args.minutes,
        unit_offset_sigma=0.5 * scale, idiosyncratic_sigma=0.6 * scale,
        treated_effects=(LevelShift(
            start=args.change_minute,
            magnitude=args.effect_sigmas * scale),),
    ), rng)
    write_matrix(traces.treated,
                 ["treated-%d" % i for i in range(4)], 0, 60,
                 args.out_treated)
    write_matrix(traces.control,
                 ["control-%d" % i for i in range(12)], 0, 60,
                 args.out_control)
    return {
        "treated": args.out_treated,
        "control": args.out_control,
        "change_minute": args.change_minute,
        "character": args.character,
    }


def _cmd_cost(args: argparse.Namespace) -> dict:
    from .eval.cost import measure_method_costs
    reports = measure_method_costs(min_seconds=args.seconds)
    return {
        name: {
            "us_per_window": round(r.microseconds_per_window, 2),
            "cores_for_1m_kpis": r.cores_for(),
        }
        for name, r in reports.items()
    }


def _cmd_assess_fleet(args: argparse.Namespace) -> dict:
    from .engine import (AssessmentEngine, EngineConfig, FleetScenarioSpec,
                         SyntheticFleetSource)
    from .obs import ObsContext, write_run_artifacts

    config = FunnelConfig(
        sst=ImprovedSSTParams(omega=args.omega),
        did_threshold=args.did_threshold,
    )
    scenario = {
        "services": args.services,
        "servers": args.servers,
        "changes": args.changes,
        "impact_fraction": args.impact_fraction,
        "history_days": args.history_days,
        "workers": args.workers,
        "batch_size": args.batch_size,
        "detect_mode": args.detect_mode,
    }
    source = SyntheticFleetSource(FleetScenarioSpec(
        n_services=args.services,
        n_servers=args.servers,
        n_changes=args.changes,
        impact_fraction=args.impact_fraction,
        history_days=args.history_days,
        seed=args.seed,
    ))
    obs = ObsContext() if args.obs_dir else None
    engine = AssessmentEngine(
        detectors=tuple(name.strip()
                        for name in args.detectors.split(",") if name.strip()),
        config=EngineConfig(workers=args.workers,
                            batch_size=args.batch_size,
                            detect_mode=args.detect_mode),
        funnel_config=config,
        obs=obs,
    )
    if args.verdicts:
        report, jobs, results = engine.assess_fleet_detailed(source)
        with open(args.verdicts, "w", encoding="utf-8") as fh:
            for job, result in zip(jobs, results):
                fh.write(json.dumps({
                    "change_id": job.change_id,
                    "entity_type": job.entity_type,
                    "entity": job.entity,
                    "metric": job.metric,
                    "detector": result.detector,
                    "verdict": (result.verdict.value
                                if result.verdict is not None
                                else "no_change"),
                    "declaration_bin": result.outcome.detection_index,
                    "did_estimate": result.did_estimate,
                }, sort_keys=True) + "\n")
    else:
        report = engine.assess_fleet(source)
    out = report.as_dict()
    if args.verdicts:
        out["verdicts_path"] = args.verdicts
    out["scenario"] = {
        "services": args.services,
        "servers": args.servers,
        "changes": args.changes,
        "detectors": sorted(spec.name for spec in engine.specs),
        "workers": args.workers,
    }
    if obs is not None:
        written = write_run_artifacts(
            args.obs_dir, obs,
            config=dict(scenario,
                        detectors=sorted(s.name for s in engine.specs),
                        omega=args.omega,
                        did_threshold=args.did_threshold),
            seeds={"scenario": args.seed},
            stages=report.instrumentation.get("stages", {}),
        )
        out["obs"] = dict(out.get("obs", {}), **written)
    return out


def _run_live_replay(args: argparse.Namespace, command: str,
                     fault_plan=None, check_offline: bool = False,
                     config_overrides: Optional[dict] = None) -> dict:
    from .engine import FleetScenarioSpec
    from .live import JsonlVerdictSink, parity_live_config, replay_scenario
    from .obs import ObsContext, write_run_artifacts

    spec = FleetScenarioSpec(
        n_services=args.services,
        n_servers=args.servers,
        n_changes=args.changes,
        impact_fraction=args.impact_fraction,
        history_days=args.history_days,
        window_bins=args.window_bins,
        change_offset=args.change_offset,
        seed=args.seed,
    )
    funnel_config = FunnelConfig(
        sst=ImprovedSSTParams(omega=args.omega),
        did_threshold=args.did_threshold,
    )
    live_config = parity_live_config(
        spec, funnel_config=funnel_config,
        score_chunk_bins=args.score_chunk,
        pooled_scoring=args.pooled_scoring or args.fused_ingest,
        fused_ingest=args.fused_ingest,
        queue_capacity=args.queue_capacity,
        max_fragments_per_tick=args.drain_budget,
        max_active_changes=args.max_active_changes,
        **(config_overrides or {}),
    )
    obs = ObsContext() if args.obs_dir else None
    sink = JsonlVerdictSink(args.verdicts) if args.verdicts else None
    health = None
    if getattr(args, "health", None):
        from .obs import HealthConfig, HealthMonitor
        health = HealthMonitor(HealthConfig(heartbeat_path=args.health))
    try:
        report = replay_scenario(
            spec, live_config=live_config, flush_bins=args.flush_bins,
            check_offline=check_offline, obs=obs, sink=sink,
            fault_plan=fault_plan,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume_from,
            kill_after_ticks=args.kill_after_ticks or None,
            health=health)
    finally:
        if sink is not None:
            sink.close()
    out = report.as_dict()
    # The raw per-verdict lag lists are for the JSONL/bench consumers;
    # the CLI summary keeps the document small.
    lags = out.pop("detection_lag_bins")
    out["mean_detection_lag_bins"] = (
        round(float(np.mean(lags)), 2) if lags else None)
    out.pop("emission_lag_seconds")
    if args.verdicts:
        out["verdicts_path"] = args.verdicts
    if health is not None:
        out["health_path"] = args.health
    if args.checkpoint:
        out["checkpoint_path"] = args.checkpoint
    if obs is not None:
        written = write_run_artifacts(
            args.obs_dir, obs,
            config={
                "command": command,
                "services": args.services,
                "servers": args.servers,
                "changes": args.changes,
                "flush_bins": args.flush_bins,
                "score_chunk": args.score_chunk,
                "pooled_scoring": args.pooled_scoring or args.fused_ingest,
                "fused_ingest": args.fused_ingest,
                "queue_capacity": args.queue_capacity,
                "drain_budget": args.drain_budget,
                "max_active_changes": args.max_active_changes,
                "omega": args.omega,
                "did_threshold": args.did_threshold,
            },
            seeds={"scenario": args.seed},
        )
        out["obs"] = written
    return out


def _cmd_live_replay(args: argparse.Namespace) -> dict:
    return _run_live_replay(args, "live-replay",
                            check_offline=args.check_offline)


def _cmd_chaos_replay(args: argparse.Namespace):
    from .faults import DELAY, preset_plan
    from .telemetry.timeseries import MINUTE

    lead_time = args.history_days * 24 * 60 * MINUTE
    plan = preset_plan(args.plan, seed=args.fault_seed,
                       lead_time=lead_time, bin_seconds=MINUTE,
                       offset_bins=args.fault_offset_bins)
    # The close grace must cover the worst injected delivery delay so
    # late releases still drain before the session settles.
    grace = max((rule.delay_bins for rule in plan.rules
                 if rule.kind == DELAY), default=0) * MINUTE
    out = _run_live_replay(
        args, "chaos-replay", fault_plan=plan, check_offline=True,
        config_overrides={"repair_from_store": True,
                          "close_grace_seconds": grace})
    parity = out.get("parity")
    parity_ok = None if parity is None else parity["ok"]
    out["chaos"] = {
        "plan": args.plan,
        "fault_seed": args.fault_seed,
        "parity_ok": parity_ok,
    }
    # A killed run has no parity verdict to enforce; anything else must
    # match the offline engine exactly.
    return out, (0 if parity_ok or out.get("killed") else 1)


def _cmd_cluster_replay(args: argparse.Namespace):
    from .cluster import cluster_replay_scenario
    from .engine import FleetScenarioSpec
    from .live import ClusterConfig, parity_live_config
    from .obs import ObsContext, write_run_artifacts

    spec = FleetScenarioSpec(
        n_services=args.services,
        n_servers=args.servers,
        n_changes=args.changes,
        impact_fraction=args.impact_fraction,
        history_days=args.history_days,
        window_bins=args.window_bins,
        change_offset=args.change_offset,
        seed=args.seed,
    )
    funnel_config = FunnelConfig(
        sst=ImprovedSSTParams(omega=args.omega),
        did_threshold=args.did_threshold,
    )
    fault_plan = None
    overrides = {}
    if args.fault_plan:
        from .faults import DELAY, preset_plan
        from .telemetry.timeseries import MINUTE
        lead_time = args.history_days * 24 * 60 * MINUTE
        fault_plan = preset_plan(args.fault_plan, seed=args.fault_seed,
                                 lead_time=lead_time, bin_seconds=MINUTE)
        grace = max((rule.delay_bins for rule in fault_plan.rules
                     if rule.kind == DELAY), default=0) * MINUTE
        overrides = {"repair_from_store": True,
                     "close_grace_seconds": grace}
    live_config = parity_live_config(
        spec, funnel_config=funnel_config,
        score_chunk_bins=args.score_chunk,
        pooled_scoring=args.pooled_scoring or args.fused_ingest,
        fused_ingest=args.fused_ingest,
        queue_capacity=args.queue_capacity,
        max_fragments_per_tick=args.drain_budget,
        max_active_changes=args.max_active_changes,
        **overrides,
    )
    cluster = ClusterConfig(
        n_shards=args.shards,
        replicas=args.replicas,
        heartbeat_timeout_seconds=args.heartbeat_timeout,
        max_restarts=args.max_restarts,
        checkpoint_every_ticks=args.checkpoint_every,
    )
    obs = ObsContext() if args.obs_dir else None
    report = cluster_replay_scenario(
        spec=spec, live_config=live_config, flush_bins=args.flush_bins,
        cluster=cluster, workdir=args.workdir,
        verdicts_path=args.verdicts, obs=obs, fault_plan=fault_plan,
        health=args.health,
        kill_shard=args.kill_shard, kill_at_tick=args.at_tick,
        hang_shard=args.hang_shard, hang_at_tick=args.at_tick,
        check_offline=args.check_offline)
    out = report.as_dict()
    lags = out.pop("detection_lag_bins")
    out["mean_detection_lag_bins"] = (
        round(float(np.mean(lags)), 2) if lags else None)
    out.pop("emission_lag_seconds")
    if obs is not None:
        written = write_run_artifacts(
            args.obs_dir, obs,
            config={
                "command": "cluster-replay",
                "services": args.services,
                "servers": args.servers,
                "changes": args.changes,
                "shards": args.shards,
                "replicas": args.replicas,
                "flush_bins": args.flush_bins,
                "pooled_scoring": args.pooled_scoring or args.fused_ingest,
                "fused_ingest": args.fused_ingest,
                "fault_plan": args.fault_plan,
                "omega": args.omega,
                "did_threshold": args.did_threshold,
            },
            seeds={"scenario": args.seed, "faults": args.fault_seed},
        )
        out["obs"] = written
    code = 0 if report.parity_ok is not False else 1
    return out, code


def _cmd_obs(args: argparse.Namespace):
    if args.obs_command == "health-report":
        return _cmd_obs_health_report(args)
    return _cmd_obs_report(args)


def _cmd_obs_health_report(args: argparse.Namespace):
    from .obs import (build_health_report, load_heartbeat,
                      render_health_report)

    report = build_health_report(load_heartbeat(args.heartbeat))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    detections = len(report["self_detections"])
    code = 0
    if args.min_self_detections is not None \
            and detections < args.min_self_detections:
        code = 1
    if args.max_self_detections is not None \
            and detections > args.max_self_detections:
        code = 1
    if args.json:
        return dict(report, exit_reason=(
            None if code == 0 else
            "self-detection count %d outside the required bounds"
            % detections)), code
    text = render_health_report(report)
    if code:
        text += ("ERROR: self-detection count %d outside the required "
                 "bounds (min=%s, max=%s)\n"
                 % (detections, args.min_self_detections,
                    args.max_self_detections))
    return text, code


def _cmd_obs_report(args: argparse.Namespace):
    from .obs import build_profile, folded_stacks, load_run, render_table

    run = load_run(args.obs_dir)
    profile = build_profile(run.spans, top_jobs=args.top)
    counters = _counter_rows(run.metrics)
    batching = _batching_summary(run.metrics)
    ingest_plane = _ingest_plane_summary(run.metrics)
    if args.folded:
        lines = folded_stacks(profile)
        with open(args.folded, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
    if args.json:
        doc = {
            "run_id": run.run_id,
            "span_count": profile.span_count,
            "paths": [stats.as_dict() for stats in profile.paths],
            "detectors": profile.detectors,
            "slowest_jobs": profile.slowest_jobs,
            "counters": [{"name": name, "labels": labels, "value": value}
                         for name, labels, value in counters],
        }
        if batching:
            doc["batching"] = batching
        if ingest_plane:
            doc["ingest_plane"] = ingest_plane
        if args.folded:
            doc["folded"] = args.folded
        return doc
    header = "Run %s" % run.run_id
    rev = run.manifest.get("git_rev")
    if rev:
        header += " (git %s)" % str(rev)[:12]
    text = header + "\n\n" + render_table(profile)
    if counters:
        text += "\nCounters\n"
        for name, labels, value in counters:
            tag = ("{%s}" % ",".join("%s=%s" % kv
                                     for kv in sorted(labels.items()))
                   if labels else "")
            text += "  %-46s %12g\n" % (name + tag, value)
    if batching:
        text += "\nBatching\n"
        for label, value in sorted(batching.items()):
            text += "  %-46s %12g\n" % (label, value)
    if ingest_plane:
        text += "\nIngest plane\n"
        for label, value in sorted(ingest_plane.items()):
            text += "  %-46s %12g\n" % (label, value)
    if args.folded:
        text += "\nFolded stacks written to %s\n" % args.folded
    return text


def _batching_summary(metrics: dict) -> dict:
    """Batched-detect and pooled-scoring health, from run counters.

    Fill ratio is jobs scored per slot of planned batch capacity (1.0 =
    every batch full); the packed dedup ratio is rows referenced per row
    actually pickled across the pool boundary (1.0 = nothing repeated).
    """
    from .engine.batching import (BATCHED_BATCHES_METRIC,
                                  BATCHED_CAPACITY_METRIC,
                                  BATCHED_JOBS_METRIC, PACKED_ROWS_METRIC,
                                  PACKED_UNIQUE_ROWS_METRIC)
    from .live.pool import POOLED_BATCHES_METRIC, POOLED_SERIES_METRIC

    counters = (metrics or {}).get("counters") or {}
    totals = {name: sum(entry.get("value", 0)
                        for entry in doc.get("values") or ())
              for name, doc in counters.items()}
    out = {}
    batches = totals.get(BATCHED_BATCHES_METRIC, 0)
    if batches:
        jobs = totals.get(BATCHED_JOBS_METRIC, 0)
        out["batched_detect_batches"] = batches
        out["batched_detect_jobs"] = jobs
        out["batched_detect_mean_size"] = round(jobs / batches, 2)
        capacity = totals.get(BATCHED_CAPACITY_METRIC, 0)
        if capacity:
            out["batched_detect_fill_ratio"] = round(jobs / capacity, 3)
    pickled = totals.get(PACKED_UNIQUE_ROWS_METRIC, 0)
    if pickled:
        out["packed_rows_referenced"] = totals.get(PACKED_ROWS_METRIC, 0)
        out["packed_rows_pickled"] = pickled
        out["packed_dedup_ratio"] = round(
            totals.get(PACKED_ROWS_METRIC, 0) / pickled, 3)
    pooled = totals.get(POOLED_BATCHES_METRIC, 0)
    if pooled:
        series = totals.get(POOLED_SERIES_METRIC, 0)
        out["pooled_scoring_batches"] = pooled
        out["pooled_scoring_series"] = series
        out["pooled_scoring_mean_size"] = round(series / pooled, 2)
    return out


def _ingest_plane_summary(metrics: dict) -> dict:
    """Per-stage ingest-plane timing and fused-batch health.

    Stage seconds come from the scheduler's per-tick wall clocks (the
    replay driver contributes ``stage=stream`` for its append side);
    the fused counters split arena scatter-writes (``tensor``) from the
    per-detector fallback the arena takes for private or warming rows.
    """
    from .live.assessor import FUSED_BATCHES_METRIC, FUSED_ROWS_METRIC
    from .live.scheduler import TICK_STAGE_SECONDS_METRIC

    counters = (metrics or {}).get("counters") or {}
    out = {}
    stage_doc = counters.get(TICK_STAGE_SECONDS_METRIC) or {}
    for entry in stage_doc.get("values") or ():
        stage = entry.get("labels", {}).get("stage", "unknown")
        out["stage_seconds_%s" % stage] = round(entry.get("value", 0), 4)
    fused_doc = counters.get(FUSED_BATCHES_METRIC) or {}
    batches = sum(entry.get("value", 0)
                  for entry in fused_doc.get("values") or ())
    if batches:
        out["fused_batches"] = batches
        rows_doc = counters.get(FUSED_ROWS_METRIC) or {}
        for entry in rows_doc.get("values") or ():
            path = entry.get("labels", {}).get("path", "unknown")
            out["fused_rows_%s" % path] = entry.get("value", 0)
    return out


def _counter_rows(metrics: dict) -> list:
    """Flatten a metrics snapshot's counters to (name, labels, value).

    Tolerates the degenerate shapes an empty or truncated run leaves
    behind: a ``None`` snapshot, a missing ``counters`` section, or
    ``null`` value lists.
    """
    rows = []
    counters = (metrics or {}).get("counters") or {}
    for name, doc in sorted(counters.items()):
        for entry in doc.get("values") or ():
            rows.append((name, entry.get("labels", {}),
                         entry.get("value", 0)))
    return rows


_COMMANDS = {
    "detect": _cmd_detect,
    "assess": _cmd_assess,
    "generate": _cmd_generate,
    "cost": _cmd_cost,
    "assess-fleet": _cmd_assess_fleet,
    "live-replay": _cmd_live_replay,
    "chaos-replay": _cmd_chaos_replay,
    "cluster-replay": _cmd_cluster_replay,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        result = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(json.dumps({"error": str(exc)}), file=sys.stderr)
        return 1
    code = 0
    if isinstance(result, tuple):
        result, code = result
    if isinstance(result, str):
        print(result, end="" if result.endswith("\n") else "\n")
    else:
        print(json.dumps(result, indent=2, sort_keys=True))
    return code


if __name__ == "__main__":
    sys.exit(main())
