"""repro.cluster — sharded multi-process live assessment.

The paper's deployment spreads the fleet's KPIs across many machines;
this package reproduces that shape on one box: the fleet is partitioned
across N worker processes by consistent hashing on entity name
(:mod:`~repro.cluster.routing`), each worker runs a full
:class:`~repro.live.service.LiveAssessmentService` over its shard-local
store slice (:mod:`~repro.cluster.worker`), a supervisor heartbeats the
workers and restarts crashed or hung shards from their latest
checkpoint (:mod:`~repro.cluster.supervisor`), and the per-shard
verdict streams fan back into one deterministic global order
(:mod:`~repro.cluster.merge`) — byte-identical to the single-process
``live-replay`` output, even after a shard was killed and recovered
mid-run.

``repro cluster-replay --shards 4`` drives the whole thing; see
``docs/live.md`` ("Scaling out") and ``docs/architecture.md``.
"""

from ..live.config import ClusterConfig
from .merge import ClusterVerdictBus, merge_reports, write_merged
from .replay import ClusterReplayReport, cluster_replay_scenario
from .routing import HashRing, ShardPlan, control_keys, plan_shards
from .supervisor import ShardState, ShardSupervisor, resolve_start_method
from .worker import ShardTask, run_shard

__all__ = [
    "ClusterConfig",
    "ClusterVerdictBus", "merge_reports", "write_merged",
    "ClusterReplayReport", "cluster_replay_scenario",
    "HashRing", "ShardPlan", "control_keys", "plan_shards",
    "ShardState", "ShardSupervisor", "resolve_start_method",
    "ShardTask", "run_shard",
]
