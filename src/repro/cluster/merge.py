"""Fan-in: deterministic global order out of per-shard verdict streams.

Workers emit verdicts in shard-local order; the merged output must be
**byte-identical** to the single-process ``live-replay`` file no matter
how the fleet was partitioned or how many crash/restart cycles
happened.  Two facts make that possible:

* verdict keys are unique (the per-shard bus is at-most-once and
  ownership routing assesses each (change, entity, KPI) on exactly one
  shard), so :func:`~repro.live.bus.verdict_sort_key` — virtual
  emission tick, then key — is a *total* order: sorting any partition
  of the same verdict set gives the same sequence;
* each shard's final attempt carries its complete bus verdict list (a
  resumed run re-emits post-checkpoint verdicts bit-identically), so
  the merge never depends on what a crashed attempt managed to flush —
  earlier attempts' files are folded in only to exercise the
  at-most-once dedup, whose duplicate count is surfaced, not hidden.

:class:`ClusterVerdictBus` collects, sorts, and republishes through a
fresh :class:`~repro.live.bus.VerdictBus` (dedup lives in one place);
:func:`merge_reports` builds the operator summary with counters summed
and gauges kept **per shard plus a max** — a cluster's peak queue depth
is the worst shard's peak, not the sum of sixteen peaks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..live.bus import (JsonlVerdictSink, LiveVerdict, VerdictBus,
                        verdict_sort_key)
from ..obs.metrics import MetricsRegistry

__all__ = ["ClusterVerdictBus", "write_merged", "merge_reports"]

#: Gauge-like per-shard report fields that must never be summed.
_PEAK_FIELDS = ("queue_depth", "peak_queue_depth")
#: Count-like per-shard report fields that add up meaningfully.
_SUM_FIELDS = ("verdicts", "closed_changes", "active_changes")


class ClusterVerdictBus:
    """Collects per-shard verdicts, re-establishes the global order."""

    def __init__(self) -> None:
        # A private registry: the fan-in republish must not double-count
        # verdicts in the merged run metrics (shards already counted
        # their own publishes).
        self.bus = VerdictBus(MetricsRegistry())
        self.collected: List[LiveVerdict] = []
        self.duplicates = 0

    def collect(self, verdicts: Iterable[LiveVerdict]) -> None:
        self.collected.extend(verdicts)

    def merge(self) -> List[LiveVerdict]:
        """Sort everything collected and publish once per key."""
        for verdict in sorted(self.collected, key=verdict_sort_key):
            if not self.bus.publish(verdict):
                self.duplicates += 1
        return list(self.bus.verdicts)

    def __len__(self) -> int:
        return len(self.bus.verdicts)


def write_merged(path: str, verdicts: Iterable[LiveVerdict]) -> int:
    """Write merged verdicts in the exact single-process sink format."""
    written = 0
    with JsonlVerdictSink(path) as sink:
        for verdict in verdicts:
            sink(verdict)
            written += 1
    return written


def merge_reports(shard_reports: Dict[int, dict],
                  restarts: Optional[Dict[int, int]] = None,
                  duplicates: int = 0) -> dict:
    """Fold per-shard service reports into one cluster-level summary.

    Counters are summed; gauge-like fields (queue depths) are reported
    per shard alongside their maximum, never silently summed.  The full
    per-shard reports ride along under ``"shards"`` so nothing the
    single-process report exposed is lost.
    """
    merged: dict = {
        "n_shards": len(shard_reports),
        "restarts": dict(sorted((restarts or {}).items())),
        "duplicate_verdicts": duplicates,
        "shards": {str(shard): report
                   for shard, report in sorted(shard_reports.items())},
    }
    for name in _SUM_FIELDS:
        merged[name] = sum(report.get(name, 0)
                           for report in shard_reports.values())
    for name in _PEAK_FIELDS:
        per_shard = {str(shard): report.get(name, 0)
                     for shard, report in sorted(shard_reports.items())}
        merged[name] = {
            "max": max(per_shard.values()) if per_shard else 0,
            "per_shard": per_shard,
        }
    shed: List[str] = []
    for _, report in sorted(shard_reports.items()):
        shed.extend(change_id for change_id
                    in report.get("shed_change_ids", ())
                    if change_id not in shed)
    merged["shed_change_ids"] = shed
    counters: Dict[str, float] = {}
    for report in shard_reports.values():
        for name, value in report.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    merged["counters"] = dict(sorted(counters.items()))
    return merged
