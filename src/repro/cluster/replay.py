"""The cluster replay driver: shard, supervise, fan in, verify.

``repro cluster-replay`` is the sharded twin of ``repro live-replay``:
it routes the scenario across N worker processes
(:mod:`repro.cluster.routing`), supervises them to completion with
crash/hang recovery (:mod:`repro.cluster.supervisor`), merges their
verdict streams back into the deterministic global order
(:mod:`repro.cluster.merge`), and absorbs their telemetry into the
parent's :class:`~repro.obs.context.ObsContext` so ``repro obs report``
and health reports work unchanged over a multi-process run.

Throughput accounting is honest about core counts.  Shards burn CPU
concurrently, so the cluster's limiting resource is its **critical
path**: the slowest shard's CPU seconds (measured per attempt with
``time.process_time``, which excludes timesharing wait) plus the fan-in
merge.  On a many-core box ``elapsed_seconds`` converges to the
critical path; on a single-core box (CI) the shards timeshare and
elapsed stays flat while the critical path still shows the real
per-shard work reduction.  The report carries both numbers plus the
host's CPU count, and the bench headline uses the critical path.
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine.fleet import FleetScenarioSpec, SyntheticFleetSource
from ..faults import FaultPlan
from ..live.bus import LiveVerdict, read_verdicts
from ..live.config import ClusterConfig, LiveConfig
from ..exceptions import ClusterError
from ..live.replay import (_record_key, fleet_kpi_keys,
                           offline_verdict_records, parity_live_config)
from ..obs.context import ObsContext, WorkerTelemetry
from ..obs.tracing import SpanRecord
from .merge import ClusterVerdictBus, merge_reports, write_merged
from .supervisor import ShardSupervisor
from .worker import ShardTask

__all__ = ["ClusterReplayReport", "cluster_replay_scenario"]

CLUSTER_SPAN = "cluster_replay"


@dataclass
class ClusterReplayReport:
    """What one sharded replay produced, measured, and verified."""

    n_shards: int = 1
    verdicts: List[LiveVerdict] = field(default_factory=list)
    #: KPI fragments the scenario defines (keys x ticks) — the work a
    #: single-process replay streams; the denominator-independent size.
    scenario_fragments: int = 0
    #: fragments actually streamed across shards/attempts (control-key
    #: replication and crash replays push this above scenario size).
    fragments_streamed: int = 0
    #: wall clock around the whole supervised run + merge.
    elapsed_seconds: float = 0.0
    #: slowest shard's CPU seconds (+ crash-lost wall) + merge time —
    #: the cluster's limiting resource; see the module docstring.
    critical_path_seconds: float = 0.0
    merge_seconds: float = 0.0
    cpus: int = 1
    shard_cpu_seconds: Dict[int, float] = field(default_factory=dict)
    restarts: Dict[int, int] = field(default_factory=dict)
    duplicate_verdicts: int = 0
    service_report: dict = field(default_factory=dict)
    parity: Optional[dict] = None
    detection_lag_bins: List[int] = field(default_factory=list)
    emission_lag_seconds: List[int] = field(default_factory=list)
    merged_path: Optional[str] = None
    workdir: Optional[str] = None

    @property
    def parity_ok(self) -> Optional[bool]:
        return None if self.parity is None else self.parity["ok"]

    @property
    def fragments_per_second(self) -> Optional[float]:
        """Scenario fragments over the critical path (see module doc)."""
        if self.critical_path_seconds <= 0:
            return None
        return self.scenario_fragments / self.critical_path_seconds

    def live_records(self):
        return sorted((v.parity_tuple() for v in self.verdicts),
                      key=_record_key)

    def as_dict(self) -> dict:
        """The JSON document ``repro cluster-replay`` prints."""
        doc = {
            "n_shards": self.n_shards,
            "verdicts": len(self.verdicts),
            "scenario_fragments": self.scenario_fragments,
            "fragments_streamed": self.fragments_streamed,
            "elapsed_seconds": self.elapsed_seconds,
            "critical_path_seconds": self.critical_path_seconds,
            "merge_seconds": self.merge_seconds,
            "fragments_per_second": self.fragments_per_second,
            "cpus": self.cpus,
            "shard_cpu_seconds": {str(k): v for k, v
                                  in sorted(self.shard_cpu_seconds.items())},
            "restarts": {str(k): v for k, v
                         in sorted(self.restarts.items())},
            "duplicate_verdicts": self.duplicate_verdicts,
            "service": self.service_report,
            "detection_lag_bins": list(self.detection_lag_bins),
            "emission_lag_seconds": list(self.emission_lag_seconds),
        }
        if self.merged_path is not None:
            doc["merged_path"] = self.merged_path
        if self.workdir is not None:
            doc["workdir"] = self.workdir
        if self.parity is not None:
            doc["parity"] = {
                "ok": self.parity["ok"],
                "live_records": self.parity["live_count"],
                "offline_records": self.parity["offline_count"],
                "live_only": [list(r) for r in self.parity["live_only"]],
                "offline_only": [list(r)
                                 for r in self.parity["offline_only"]],
            }
        return doc


def cluster_replay_scenario(spec: Optional[FleetScenarioSpec] = None,
                            live_config: Optional[LiveConfig] = None,
                            flush_bins: int = 1,
                            cluster: Optional[ClusterConfig] = None,
                            workdir: Optional[str] = None,
                            verdicts_path: Optional[str] = None,
                            obs: Optional[ObsContext] = None,
                            fault_plan: Optional[FaultPlan] = None,
                            health: bool = False,
                            kill_shard: Optional[int] = None,
                            kill_at_tick: Optional[int] = None,
                            hang_shard: Optional[int] = None,
                            hang_at_tick: Optional[int] = None,
                            check_offline: bool = False
                            ) -> ClusterReplayReport:
    """Run ``spec`` sharded across processes; fan the verdicts back in.

    Args:
        spec: the scenario (same defaults as ``repro live-replay``).
        live_config: per-shard pipeline knobs; defaults to
            :func:`~repro.live.replay.parity_live_config`.
        flush_bins: bins per streamed fragment (shared by all shards,
            so ticks stay globally aligned).
        cluster: shard count, restart budget, heartbeat timeout...
        workdir: where per-shard verdicts/results/checkpoints live;
            a temporary directory is created (and reported) if omitted.
        verdicts_path: write the merged JSONL here — byte-identical to
            the single-process ``live-replay --verdicts`` file.
        obs: parent observability context; worker spans and metrics are
            absorbed into it after the run.
        fault_plan: chaos plan, applied identically in every shard (the
            plan is stateless and keyed by KPI, so a shard injects
            exactly the faults the single process would on its keys).
        health: write one heartbeat stream per shard
            (``shard-N/heartbeat.jsonl`` under ``workdir``).
        kill_shard / kill_at_tick: crash this shard at that tick on its
            first attempt — the supervisor must recover it.
        hang_shard / hang_at_tick: same, but go silent instead of dying
            (exercises the heartbeat-timeout path).
        check_offline: verify merged verdicts against the offline
            engine (the live parity contract, now across processes).
    """
    source = SyntheticFleetSource(spec)
    spec = source.spec
    config = live_config or parity_live_config(spec)
    cluster = cluster if cluster is not None else ClusterConfig()
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-cluster-")
    os.makedirs(workdir, exist_ok=True)

    observed = obs is not None and obs.enabled
    root = (obs.tracer.span(CLUSTER_SPAN, shards=cluster.n_shards)
            if observed else nullcontext())

    report = ClusterReplayReport(n_shards=cluster.n_shards)
    report.workdir = workdir
    report.cpus = os.cpu_count() or 1
    stream_bins = spec.n_changes * spec.window_bins
    ticks = -(-stream_bins // flush_bins)
    report.scenario_fragments = len(fleet_kpi_keys(source)) * ticks

    started = time.perf_counter()
    with root:
        remote = obs.remote_context() if observed else None

        def task_factory(shard_id: int, attempt: int,
                         resume_from: Optional[str]) -> ShardTask:
            shard_dir = os.path.join(workdir, "shard-%d" % shard_id)
            os.makedirs(shard_dir, exist_ok=True)
            first = attempt == 0
            return ShardTask(
                spec=spec, shard_id=shard_id,
                n_shards=cluster.n_shards, replicas=cluster.replicas,
                live_config=config, flush_bins=flush_bins,
                attempt=attempt,
                verdicts_path=os.path.join(
                    shard_dir, "verdicts-a%d.jsonl" % attempt),
                result_path=os.path.join(
                    shard_dir, "result-a%d.json" % attempt),
                checkpoint_path=os.path.join(shard_dir, "checkpoint.jsonl"),
                checkpoint_every=cluster.checkpoint_every_ticks,
                resume_from=resume_from,
                kill_after_ticks=(kill_at_tick if first
                                  and shard_id == kill_shard else None),
                hang_at_tick=(hang_at_tick if first
                              and shard_id == hang_shard else None),
                fault_plan=fault_plan,
                health_path=(os.path.join(shard_dir, "heartbeat.jsonl")
                             if health else None),
                remote=remote)

        supervisor = ShardSupervisor(cluster.n_shards, task_factory,
                                     config=cluster)
        states = supervisor.run()

        fan_in = ClusterVerdictBus()
        shard_reports: Dict[int, dict] = {}
        for shard_id, state in sorted(states.items()):
            payload = state.result
            if payload is None:
                raise ClusterError(
                    "shard %d finished without a result" % shard_id)
            final_attempt = payload["attempt"]
            # Crashed attempts' files exercise the at-most-once dedup;
            # the final attempt's bus list is the complete shard truth
            # (restored + re-emitted + new), so nothing a dead process
            # failed to flush is ever missing from the merge.
            for attempt, path in state.verdict_files:
                if attempt < final_attempt and os.path.exists(path):
                    fan_in.collect(read_verdicts(path))
            fan_in.collect(LiveVerdict.from_dict(doc)
                           for doc in payload["verdicts"])
            shard_reports[shard_id] = payload["report"]
            report.restarts[shard_id] = state.restarts
            report.fragments_streamed += payload["fragments_streamed"]
            report.shard_cpu_seconds[shard_id] = (payload["cpu_seconds"]
                                                  + state.lost_seconds)
            if observed:
                obs.absorb(WorkerTelemetry(
                    spans=tuple(SpanRecord.from_dict(doc)
                                for doc in payload["spans"]),
                    metrics=payload["metrics"]))

        merge_started = time.perf_counter()
        report.verdicts = fan_in.merge()
        report.duplicate_verdicts = fan_in.duplicates
        if verdicts_path is not None:
            write_merged(verdicts_path, report.verdicts)
            report.merged_path = verdicts_path
        report.merge_seconds = time.perf_counter() - merge_started
    report.elapsed_seconds = time.perf_counter() - started
    report.critical_path_seconds = (
        max(report.shard_cpu_seconds.values(), default=0.0)
        + report.merge_seconds)

    report.service_report = merge_reports(
        shard_reports, restarts=report.restarts,
        duplicates=report.duplicate_verdicts)

    at_time = {change.change_id: change.at_time
               for change in source.changes}
    for verdict in report.verdicts:
        report.emission_lag_seconds.append(
            verdict.emitted_at - at_time[verdict.change_id])
        if verdict.declaration_bin is not None:
            report.detection_lag_bins.append(
                verdict.declaration_bin - spec.change_offset)

    if check_offline:
        live = report.live_records()
        offline = offline_verdict_records(source,
                                          funnel_config=config.funnel)
        live_set, offline_set = set(live), set(offline)
        report.parity = {
            "ok": live_set == offline_set,
            "live_count": len(live),
            "offline_count": len(offline),
            "live_only": sorted(live_set - offline_set, key=_record_key),
            "offline_only": sorted(offline_set - live_set, key=_record_key),
        }
    return report
