"""Consistent-hash routing of the fleet across worker shards.

The paper's deployment assesses millions of KPIs by partitioning them
across machines; here the partition key is the **entity name** (the
``repro.topology.naming`` hierarchy's server/instance/service names).
A :class:`HashRing` places ``replicas`` virtual nodes per shard on a
64-bit ring and routes each entity to the shard owning the first point
at or after the entity's hash.  Both hashes go through
:func:`hashlib.blake2b` — the same stable coin :mod:`repro.faults.plan`
uses — so routing is identical across Python processes and platforms
(``hash()`` randomisation never applies), and adding or removing one
shard moves only ~1/N of the entities (the classic consistent-hashing
property, pinned by ``tests/cluster/test_routing.py``).

:func:`plan_shards` turns a scenario into per-shard work orders: which
changes a shard assesses (every shard owning at least one monitored
entity of the change), which KPI keys it streams (its owned slice of
the fleet plus the control keys its changes' DiD panels need), and the
ownership predicate that gates tracker creation.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..engine.fleet import SyntheticFleetSource
from ..engine.planner import ENTITY_METRICS
from ..exceptions import ParameterError
from ..live.replay import fleet_kpi_keys
from ..telemetry.kpi import KpiKey
from ..topology.impact import identify_impact_set

__all__ = ["HashRing", "ShardPlan", "plan_shards", "control_keys"]


def _hash64(token: str) -> int:
    """Stable 64-bit hash (blake2b, like the fault plan's coin)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring with virtual nodes.

    ``owner(name)`` is a pure function of ``(n_shards, replicas, name)``
    — no process state, no randomisation — so every worker can rebuild
    the identical routing table from two integers.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ParameterError("n_shards must be >= 1")
        if replicas < 1:
            raise ParameterError("replicas must be >= 1")
        self.n_shards = n_shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((_hash64("vnode|%d|%d" % (shard, replica)),
                               shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def owner(self, name: str) -> int:
        """The shard owning entity ``name``."""
        if self.n_shards == 1:
            return 0
        position = _hash64("entity|" + name)
        index = bisect_right(self._hashes, position) % len(self._points)
        return self._points[index][1]


def control_keys(impact, max_control_units: int) -> List[KpiKey]:
    """The control-panel KPIs one change's DiD needs — exactly the
    groups :meth:`repro.live.watcher.ChangeWatcher._admit` builds."""
    keys: List[KpiKey] = []
    if not impact.dark_launched:
        return keys
    for entity_type, peers in (
            ("server", impact.control_hostnames),
            ("instance", tuple(i.name for i in impact.cinstances))):
        peers = peers[:max_control_units]
        for metric in ENTITY_METRICS.get(entity_type, ()):
            keys.extend(KpiKey(entity_type, peer, metric) for peer in peers)
    return keys


@dataclass(frozen=True)
class ShardPlan:
    """One shard's work order, derived deterministically from the spec.

    Attributes:
        shard_id: this shard's index in ``[0, n_shards)``.
        n_shards: ring size (the worker rebuilds the same ring).
        replicas: virtual nodes per shard on the ring.
        change_ids: changes this shard assesses — those with at least
            one monitored entity the ring routes here.  Trackers for a
            spanning change are split across its owning shards, so each
            (change, entity, KPI) verdict is produced exactly once.
        keys: the KPI streams this shard ingests, in fleet order: every
            fleet key whose entity it owns, plus the control keys its
            changes need (control panels are replicated to each owning
            shard so per-key DiD matches the single-process run).
    """

    shard_id: int
    n_shards: int
    replicas: int
    change_ids: Tuple[str, ...]
    keys: Tuple[KpiKey, ...]


def plan_shards(source: SyntheticFleetSource, n_shards: int,
                replicas: int = 64,
                max_control_units: int = 8) -> List[ShardPlan]:
    """Route a scenario's fleet streams and changes across ``n_shards``."""
    ring = HashRing(n_shards, replicas=replicas)
    all_keys = fleet_kpi_keys(source)

    assessed: Dict[int, List[str]] = {k: [] for k in range(n_shards)}
    extra: Dict[int, Set[KpiKey]] = {k: set() for k in range(n_shards)}
    for change in source.changes:
        impact = identify_impact_set(source.fleet, change.service,
                                     change.hostnames)
        owners = sorted({ring.owner(entity) for _, entity
                         in impact.monitored_entities()})
        panel = control_keys(impact, max_control_units)
        for shard in owners:
            assessed[shard].append(change.change_id)
            extra[shard].update(panel)

    plans = []
    for shard in range(n_shards):
        keys = tuple(key for key in all_keys
                     if ring.owner(key.entity) == shard
                     or key in extra[shard])
        plans.append(ShardPlan(shard_id=shard, n_shards=n_shards,
                               replicas=replicas,
                               change_ids=tuple(assessed[shard]),
                               keys=keys))
    return plans
