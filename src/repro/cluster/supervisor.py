"""Shard supervision: process lifecycle, heartbeats, crash recovery.

The :class:`ShardSupervisor` owns the child processes of one cluster
replay.  Each worker heartbeats once per virtual tick over a shared
``multiprocessing.Queue``; the supervisor's poll loop drains the queue
and watches for two failure shapes:

* **crash** — the process died without writing its result file (a real
  worker death, or ``kill_after_ticks`` simulating one);
* **hang** — the process is alive but its last heartbeat is older than
  :attr:`~repro.live.config.ClusterConfig.heartbeat_timeout_seconds`
  (simulated by ``hang_at_tick``); the supervisor terminates it.

Either way the shard restarts from its latest
:mod:`repro.live.checkpoint` (or from scratch when it died before the
first one), replaying only that shard's backlog.  Because checkpoint
resume is bit-identical, the merged cluster output is unchanged by any
number of crash/restart cycles — the property
``tests/cluster/test_cluster_replay.py`` pins.  A shard that exceeds
:attr:`~repro.live.config.ClusterConfig.max_restarts` raises
:class:`~repro.exceptions.ClusterError`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import ClusterError
from ..live.config import ClusterConfig
from .worker import DONE_MSG, FAILED_MSG, HEARTBEAT_MSG, ShardTask, shard_entry

__all__ = ["ShardSupervisor", "ShardState", "resolve_start_method"]


def resolve_start_method(method: str) -> str:
    """Map the config's ``"auto"`` to a concrete start method.

    Fork is preferred where available (no pickling of the task graph,
    instant start); spawn is the fallback on platforms without it.
    """
    if method != "auto":
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


@dataclass
class ShardState:
    """The supervisor's book-keeping for one shard."""

    shard_id: int
    attempt: int = 0
    restarts: int = 0
    done: bool = False
    process: Optional[multiprocessing.process.BaseProcess] = None
    last_heartbeat: float = 0.0
    last_tick: int = 0
    attempt_started: float = 0.0
    #: Parent-side wall seconds burned by attempts that crashed or hung
    #: (their ``cpu_seconds`` died with them); an upper bound used in
    #: the cluster report's critical-path accounting.
    lost_seconds: float = 0.0
    #: ``(attempt, verdicts_path)`` for every attempt, in order.
    verdict_files: List[tuple] = field(default_factory=list)
    result_path: str = ""
    checkpoint_path: str = ""
    result: Optional[dict] = None
    failure: Optional[str] = None


class ShardSupervisor:
    """Run ``n_shards`` workers to completion, restarting the fallen.

    ``task_factory(shard_id, attempt, resume_from)`` builds the
    :class:`~repro.cluster.worker.ShardTask` for one attempt; the
    factory owns path naming and is expected to apply fault knobs
    (``kill_after_ticks`` / ``hang_at_tick``) only to attempt 0, so a
    restarted shard runs clean.
    """

    def __init__(self, n_shards: int,
                 task_factory: Callable[[int, int, Optional[str]], ShardTask],
                 config: Optional[ClusterConfig] = None) -> None:
        self.n_shards = n_shards
        self.task_factory = task_factory
        self.config = config if config is not None else ClusterConfig()
        self.start_method = resolve_start_method(self.config.start_method)

    # -- lifecycle -----------------------------------------------------

    def run(self) -> Dict[int, ShardState]:
        """Supervise all shards to completion; returns final states."""
        context = multiprocessing.get_context(self.start_method)
        heartbeats = context.Queue()
        states = {shard: ShardState(shard) for shard in range(self.n_shards)}
        for state in states.values():
            self._launch(state, heartbeats, context, resume_from=None)
        try:
            while not all(state.done for state in states.values()):
                self._drain(heartbeats, states)
                now = time.monotonic()
                for state in states.values():
                    if state.done:
                        continue
                    self._check(state, heartbeats, context, now)
        finally:
            for state in states.values():
                process = state.process
                if process is not None and process.is_alive():
                    process.terminate()
                if process is not None:
                    process.join(timeout=5.0)
                state.process = None
        return states

    def _launch(self, state: ShardState, heartbeats, context,
                resume_from: Optional[str]) -> None:
        task = self.task_factory(state.shard_id, state.attempt, resume_from)
        state.result_path = task.result_path
        state.checkpoint_path = task.checkpoint_path or ""
        state.verdict_files.append((state.attempt, task.verdicts_path))
        process = context.Process(
            target=shard_entry, args=(task, heartbeats),
            name="repro-shard-%d-a%d" % (state.shard_id, state.attempt),
            daemon=True)
        process.start()
        state.process = process
        state.attempt_started = time.monotonic()
        state.last_heartbeat = state.attempt_started

    def _drain(self, heartbeats, states: Dict[int, ShardState]) -> None:
        deadline = time.monotonic() + self.config.poll_interval_seconds
        while True:
            timeout = deadline - time.monotonic()
            try:
                message = heartbeats.get(timeout=max(timeout, 0.0))
            except queue_module.Empty:
                return
            kind, shard_id, attempt = message[0], message[1], message[2]
            state = states[shard_id]
            if attempt != state.attempt:
                continue  # stale message from a terminated attempt
            if kind == HEARTBEAT_MSG:
                state.last_heartbeat = time.monotonic()
                state.last_tick = message[3]
            elif kind == DONE_MSG:
                self._finish(state)
            elif kind == FAILED_MSG:
                state.failure = message[3]

    def _check(self, state: ShardState, heartbeats, context,
               now: float) -> None:
        process = state.process
        if process is None:
            return
        if not process.is_alive():
            process.join()
            # The result file is written atomically *before* the DONE
            # message, so a dead process with a result simply finished
            # before we drained its message.
            if os.path.exists(state.result_path):
                self._finish(state)
                return
            self._restart(state, heartbeats, context,
                          why=state.failure or
                          "exited with code %s" % process.exitcode)
        elif now - state.last_heartbeat > self.config.heartbeat_timeout_seconds:
            process.terminate()
            process.join(timeout=5.0)
            self._restart(state, heartbeats, context,
                          why="heartbeat older than %.1fs (hung at tick %d)"
                          % (self.config.heartbeat_timeout_seconds,
                             state.last_tick))

    def _finish(self, state: ShardState) -> None:
        if state.done:
            return
        with open(state.result_path, encoding="utf-8") as fh:
            state.result = json.load(fh)
        state.done = True
        process = state.process
        if process is not None:
            process.join(timeout=5.0)
            state.process = None

    def _restart(self, state: ShardState, heartbeats, context,
                 why: str) -> None:
        state.lost_seconds += time.monotonic() - state.attempt_started
        if state.restarts >= self.config.max_restarts:
            raise ClusterError(
                "shard %d failed %d times (last: %s); restart budget "
                "of %d exhausted" % (state.shard_id, state.restarts + 1,
                                     why, self.config.max_restarts))
        state.restarts += 1
        state.attempt += 1
        resume_from = (state.checkpoint_path
                       if state.checkpoint_path
                       and os.path.exists(state.checkpoint_path) else None)
        self._launch(state, heartbeats, context, resume_from=resume_from)
