"""The shard worker: one live assessment service per child process.

A worker receives a picklable :class:`ShardTask`, deterministically
rebuilds its slice of the scenario (the synthetic source is a pure
function of the spec; the hash ring is a pure function of two
integers), and drives :func:`repro.live.replay.replay_scenario` over
its shard-local :class:`~repro.telemetry.store.MetricStore` slice —
streaming only its routed keys, admitting only its routed changes, and
creating trackers only for entities it owns.  Ticks stay aligned with
the single-process replay, so per-key verdicts are bit-identical to it.

Everything the parent needs crosses the process boundary through files
and a heartbeat queue: verdicts through a line-buffered
:class:`~repro.live.bus.JsonlVerdictSink` (readable even after a
crash), checkpoints through the shard's own
:mod:`repro.live.checkpoint` file (what a restart resumes from), and a
``result-aN.json`` payload with the service report, a metrics snapshot
and span records — the :class:`~repro.obs.context.WorkerTelemetry`
channel, serialized.  A task with ``kill_after_ticks`` set simulates a
crash: the worker stops mid-stream and exits hard, leaving no result
and no DONE message, exactly like a real failure.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Optional

from ..engine.fleet import FleetScenarioSpec, SyntheticFleetSource
from ..faults import FaultPlan
from ..live.bus import JsonlVerdictSink
from ..live.config import LiveConfig
from ..live.replay import replay_scenario
from ..obs.context import ObsContext
from ..obs.tracing import RemoteContext, Tracer
from .routing import HashRing, plan_shards

__all__ = ["ShardTask", "run_shard",
           "HEARTBEAT_MSG", "DONE_MSG", "FAILED_MSG", "KILLED_EXIT_CODE"]

#: Heartbeat-queue message kinds (first tuple element).
HEARTBEAT_MSG = "heartbeat"
DONE_MSG = "done"
FAILED_MSG = "failed"

#: Exit code of a worker that simulated a crash (``kill_after_ticks``).
KILLED_EXIT_CODE = 3


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker attempt needs, picklable for spawn."""

    spec: FleetScenarioSpec
    shard_id: int
    n_shards: int
    replicas: int
    live_config: LiveConfig
    flush_bins: int
    attempt: int
    verdicts_path: str
    result_path: str
    checkpoint_path: str
    checkpoint_every: int
    resume_from: Optional[str] = None
    kill_after_ticks: Optional[int] = None
    hang_at_tick: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    health_path: Optional[str] = None
    remote: Optional[RemoteContext] = None


def run_shard(task: ShardTask, heartbeat=None) -> dict:
    """Run one shard attempt to completion (or simulated crash).

    Returns the result payload the parent merges; when the attempt was
    killed mid-stream the payload has ``killed=True`` and the caller is
    expected *not* to persist it (a crashed process writes nothing).
    """
    source = SyntheticFleetSource(task.spec)
    ring = HashRing(task.n_shards, replicas=task.replicas)
    plan = plan_shards(source, task.n_shards, replicas=task.replicas,
                       max_control_units=task.live_config.max_control_units
                       )[task.shard_id]

    def owns(entity_type: str, entity: str) -> bool:
        return ring.owner(entity) == task.shard_id

    obs = ObsContext()
    if task.remote is not None:
        obs.tracer = Tracer(remote=task.remote)
    health = None
    if task.health_path:
        from ..obs.health import HealthConfig, HealthMonitor
        health = HealthMonitor(HealthConfig(heartbeat_path=task.health_path))

    sink = JsonlVerdictSink(task.verdicts_path)
    cpu_start = time.process_time()
    report = replay_scenario(
        spec=task.spec, live_config=task.live_config,
        flush_bins=task.flush_bins, obs=obs, sink=sink,
        fault_plan=task.fault_plan,
        checkpoint_path=task.checkpoint_path,
        checkpoint_every=task.checkpoint_every,
        resume_from=task.resume_from,
        kill_after_ticks=task.kill_after_ticks,
        health=health,
        keys=list(plan.keys),
        change_ids=plan.change_ids,
        tracker_filter=owns,
        tick_callback=heartbeat,
        checkpoint_extra={"shard_id": task.shard_id,
                          "n_shards": task.n_shards,
                          "replicas": task.replicas},
        shard_id=task.shard_id)
    cpu_seconds = time.process_time() - cpu_start
    if not report.killed:
        sink.close()

    return {
        "shard_id": task.shard_id,
        "attempt": task.attempt,
        "ticks": report.ticks,
        "fragments_streamed": report.fragments_streamed,
        "wall_seconds": report.wall_seconds,
        "cpu_seconds": cpu_seconds,
        "killed": report.killed,
        "resumed": report.resumed,
        "fused_ingest": task.live_config.fused_ingest,
        "checkpoints_written": report.checkpoints_written,
        "streamed_keys": len(plan.keys),
        "change_ids": list(plan.change_ids),
        "verdicts": [verdict.as_dict() for verdict in report.verdicts],
        "report": report.service_report,
        "metrics": obs.metrics.snapshot(),
        "spans": [span.as_dict() for span in obs.tracer.export()],
    }


def _write_result(path: str, payload: dict) -> None:
    # Atomic, like checkpoints: the supervisor treats the existence of
    # this file as proof the attempt completed.
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def shard_entry(task: ShardTask, queue) -> None:
    """Child-process entry point (module-level, so spawn can pickle it)."""
    try:
        def heartbeat(tick: int, now: int) -> None:
            if task.hang_at_tick is not None and tick >= task.hang_at_tick:
                # Simulated hang: go silent until the supervisor's
                # heartbeat timeout terminates this process.
                time.sleep(3600)
            queue.put((HEARTBEAT_MSG, task.shard_id, task.attempt,
                       tick, now))

        payload = run_shard(task, heartbeat=heartbeat)
        if payload["killed"]:
            # Crash simulation: no result file, no DONE, hard exit —
            # the line-buffered sink and the last checkpoint are all
            # that survive, exactly like a real worker death.
            os._exit(KILLED_EXIT_CODE)
        _write_result(task.result_path, payload)
        queue.put((DONE_MSG, task.shard_id, task.attempt, None, None))
    except BaseException as exc:  # noqa: BLE001 - must cross the boundary
        try:
            queue.put((FAILED_MSG, task.shard_id, task.attempt,
                       "%s: %s" % (type(exc).__name__, exc), None))
            queue.close()
            queue.join_thread()
        finally:
            os._exit(1)
