"""FUNNEL's core algorithms: SST variants, DiD, and the Fig. 3 pipeline."""

from .did import DiDEstimator, DiDPanel, DiDResult, did_estimate
from .funnel import Funnel, FunnelConfig
from .ika import IkaSST
from .rsst import ImprovedSST, ImprovedSSTParams
from .scoring import (ChangeDeclarationPolicy, PERSISTENCE_MINUTES,
                      declare_changes, robust_normalise)
from .sst import SingularSpectrumTransform, SSTParams, sst_scores
from .streaming import StreamingAssessor, StreamingDetector

__all__ = [
    "DiDEstimator", "DiDPanel", "DiDResult", "did_estimate",
    "Funnel", "FunnelConfig",
    "IkaSST",
    "ImprovedSST", "ImprovedSSTParams",
    "ChangeDeclarationPolicy", "PERSISTENCE_MINUTES",
    "declare_changes", "robust_normalise",
    "SingularSpectrumTransform", "SSTParams", "sst_scores",
    "StreamingAssessor", "StreamingDetector",
]
