"""Difference-in-Difference impact estimation — paper sections 3.2.4-3.2.5.

A detected KPI change is only attributed to the software change if the
*treated* group (KPIs of tservers/tinstances) moved relative to a
*control* group that shares every other influence:

* under Dark Launching the control group is the cservers/cinstances of
  the same service (section 3.2.4) — load balancing makes peers
  statistically exchangeable, so seasonality, attacks and hardware events
  hit both groups alike;
* for affected services and Full Launching there are no peers, so the
  control group is the same clock window on each of the previous 30 days
  (section 3.2.5), which removes time-of-day / day-of-week effects and
  dilutes baseline contamination.

The estimator follows the linear model of Eq. 15::

    Y(i, t) = theta(t) + alpha * D(i, t) + xi(i) + upsilon(i, t)

whose unit fixed effects ``xi(i)`` are absorbed by first-differencing each
unit across the two periods, leaving the cross-sectional regression
``diff_i = dtheta + alpha * treated_i + noise`` — the OLS slope of which
is exactly the double difference of Eq. 16, and which additionally yields
a standard error and significance level for ``alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from .robust import MAD_TO_SIGMA, median_and_mad

__all__ = [
    "DiDPanel",
    "DiDResult",
    "did_estimate",
    "DiDEstimator",
    "historical_control_windows",
]


def _unit_period_matrix(values: Sequence[Sequence[float]],
                        name: str) -> np.ndarray:
    """Coerce per-unit period measurements to a 2-D (units, samples) array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ParameterError("%s must be 1-D or 2-D, got shape %s"
                             % (name, arr.shape))
    if arr.size == 0:
        raise InsufficientDataError("%s is empty" % name)
    if not np.all(np.isfinite(arr)):
        raise ParameterError("%s contains NaN or infinite values" % name)
    return arr


@dataclass(frozen=True)
class DiDPanel:
    """Measurements for a two-period, two-group DiD comparison.

    Each field is a ``(units, samples)`` array: one row per
    server/instance (or per historical day, for the seasonal control),
    ``samples`` = the per-period window length ``omega``.

    ``treated_pre``/``treated_post`` are the treated group's measurements
    in the pre-/post-software-change period (``t = 0`` / ``t = 1`` in the
    paper); ``control_pre``/``control_post`` likewise for the control
    group.  Sample counts may differ between groups but must match within
    a group across periods (a unit is differenced against itself).
    """

    treated_pre: np.ndarray
    treated_post: np.ndarray
    control_pre: np.ndarray
    control_post: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "treated_pre",
                           _unit_period_matrix(self.treated_pre, "treated_pre"))
        object.__setattr__(self, "treated_post",
                           _unit_period_matrix(self.treated_post, "treated_post"))
        object.__setattr__(self, "control_pre",
                           _unit_period_matrix(self.control_pre, "control_pre"))
        object.__setattr__(self, "control_post",
                           _unit_period_matrix(self.control_post, "control_post"))
        if self.treated_pre.shape[0] != self.treated_post.shape[0]:
            raise ParameterError("treated unit counts differ across periods")
        if self.control_pre.shape[0] != self.control_post.shape[0]:
            raise ParameterError("control unit counts differ across periods")

    @property
    def n_treated(self) -> int:
        return self.treated_pre.shape[0]

    @property
    def n_control(self) -> int:
        return self.control_pre.shape[0]

    def unit_differences(self) -> tuple:
        """Per-unit post-minus-pre mean differences for both groups."""
        treated = self.treated_post.mean(axis=1) - self.treated_pre.mean(axis=1)
        control = self.control_post.mean(axis=1) - self.control_pre.mean(axis=1)
        return treated, control

    def normalisation_scale(self) -> float:
        """Robust scale of the pre-period pooled across both groups.

        Dividing ``alpha`` by this scale expresses the impact in units of
        the KPI's natural variability, so one threshold (the paper's 0.5
        for change-sensitive services) works across heterogeneous KPIs.
        """
        pooled = np.concatenate(
            [self.treated_pre.ravel(), self.control_pre.ravel()]
        )
        _, scale = median_and_mad(pooled)
        return MAD_TO_SIGMA * scale + 1e-9


@dataclass(frozen=True)
class DiDResult:
    """Outcome of a DiD estimation.

    Attributes:
        alpha: the raw impact estimator of Eq. 16 (KPI units).
        normalised_alpha: ``alpha`` divided by the pooled pre-period
            robust scale; this is what FUNNEL thresholds.
        std_error: OLS standard error of ``alpha`` (``nan`` when there are
            too few units to estimate residual variance).
        t_statistic / p_value: significance of ``alpha`` under the normal
            approximation (``nan`` when ``std_error`` is ``nan``).
    """

    alpha: float
    normalised_alpha: float
    std_error: float
    t_statistic: float
    p_value: float

    def significant(self, threshold: float = 0.5,
                    max_p_value: Optional[float] = None) -> bool:
        """Is the impact attributable to the software change?

        ``threshold`` is the paper's empirically chosen bound on the
        (normalised) ``|alpha|`` — 0.5 for change-sensitive services such
        as advertising, larger otherwise.  If ``max_p_value`` is given the
        estimate must also be statistically significant at that level
        (skipped when too few units exist for a standard error).
        """
        if abs(self.normalised_alpha) <= threshold:
            return False
        if max_p_value is not None and math.isfinite(self.p_value):
            return self.p_value <= max_p_value
        return True


def did_estimate(panel: DiDPanel) -> float:
    """The plain double difference of Eq. 16 (no standard errors)."""
    treated, control = panel.unit_differences()
    return float(treated.mean() - control.mean())


class DiDEstimator:
    """Fits the Eq. 15 model to a :class:`DiDPanel`.

    Example:
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> pre = rng.normal(10.0, 0.5, size=(8, 30))
        >>> post = pre + rng.normal(0.0, 0.5, size=(8, 30))
        >>> post[:4] += 5.0   # software change hits the first 4 units
        >>> panel = DiDPanel(pre[:4], post[:4], pre[4:], post[4:])
        >>> result = DiDEstimator().fit(panel)
        >>> round(result.alpha, 0)
        5.0
        >>> result.significant(threshold=0.5)
        True
    """

    def fit(self, panel: DiDPanel) -> DiDResult:
        treated_diff, control_diff = panel.unit_differences()
        diffs = np.concatenate([treated_diff, control_diff])
        indicator = np.concatenate([
            np.ones(panel.n_treated),
            np.zeros(panel.n_control),
        ])
        # OLS of diffs on [1, indicator]; the slope is alpha.
        design = np.column_stack([np.ones(diffs.size), indicator])
        coef, _, _, _ = np.linalg.lstsq(design, diffs, rcond=None)
        alpha = float(coef[1])

        dof = diffs.size - 2
        if dof > 0 and panel.n_treated >= 2 and panel.n_control >= 2:
            resid = diffs - design @ coef
            sigma2 = float(resid @ resid) / dof
            # Var(alpha) for a binary regressor: sigma^2 * (1/n1 + 1/n0).
            var_alpha = sigma2 * (1.0 / panel.n_treated
                                  + 1.0 / panel.n_control)
            se = math.sqrt(max(var_alpha, 0.0))
        else:
            se = float("nan")

        if se and math.isfinite(se) and se > 0.0:
            t_stat = alpha / se
            p_value = math.erfc(abs(t_stat) / math.sqrt(2.0))
        else:
            t_stat = float("nan")
            p_value = float("nan")

        scale = panel.normalisation_scale()
        return DiDResult(
            alpha=alpha,
            normalised_alpha=alpha / scale,
            std_error=se,
            t_statistic=t_stat,
            p_value=p_value,
        )


def historical_control_windows(history: Sequence[float], change_index: int,
                               omega: int, days: int = 30,
                               samples_per_day: int = 1440) -> DiDPanel:
    """Build the section-3.2.5 seasonal-control panel from one long series.

    The treated group is the single unit formed by the ``omega`` samples
    before and after ``change_index`` on the day of the change; the
    control group has one unit per historical day: the same clock window
    on each of the ``days`` previous days (as many as the history covers,
    at least one).

    Args:
        history: the KPI series, 1 sample per time-bin, ending at or after
            the post-change window.
        change_index: index of the software change within ``history``.
        omega: per-period window length.
        days: how many historical days to use (paper: 30).
        samples_per_day: bins per day (1440 for 1-minute bins).

    Raises:
        InsufficientDataError: when the history covers no complete
            historical day or the post-change window is not available.
    """
    x = np.asarray(history, dtype=np.float64)
    if omega < 1:
        raise ParameterError("omega must be >= 1, got %d" % omega)
    if days < 1:
        raise ParameterError("days must be >= 1, got %d" % days)
    if change_index - omega < 0 or change_index + omega > x.size:
        raise InsufficientDataError(
            "change at %d needs %d samples on each side" % (change_index, omega)
        )
    treated_pre = x[change_index - omega:change_index]
    treated_post = x[change_index:change_index + omega]

    control_pre, control_post = [], []
    for day in range(1, days + 1):
        offset = change_index - day * samples_per_day
        if offset - omega < 0:
            break
        control_pre.append(x[offset - omega:offset])
        control_post.append(x[offset:offset + omega])
    if not control_pre:
        raise InsufficientDataError(
            "history is too short for even one %d-sample historical day"
            % samples_per_day
        )
    return DiDPanel(
        treated_pre=np.asarray([treated_pre]),
        treated_post=np.asarray([treated_post]),
        control_pre=np.asarray(control_pre),
        control_post=np.asarray(control_post),
    )
