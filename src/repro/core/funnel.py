"""The FUNNEL assessment pipeline — paper Fig. 3.

For one item (software change, entity, KPI) the pipeline:

1. aggregates the treated units' series and robustly normalises it
   against its pre-change baseline;
2. scores it with the improved SST
   (:class:`~repro.core.ika.IkaSST` — the IKA fast path) and applies the
   7-minute persistence rule to declare behaviour changes
   (:func:`~repro.core.scoring.declare_changes`);
3. if a change is declared at/after the software change, attributes it:

   * with a **peer control group** (cservers/cinstances, available when
     the KPI is not an affected service's and the change was Dark
     Launched) the DiD estimator compares treated vs. control across the
     change (section 3.2.4) — verdict ``CAUSED_BY_CHANGE`` when the
     normalised impact exceeds the threshold, ``OTHER_REASONS`` otherwise;
   * with a **historical control group** (same clock window on previous
     days; used for affected services and Full Launching, section 3.2.5)
     the same estimator separates genuine impact from seasonality —
     verdict ``SEASONALITY`` when the double difference vanishes;
   * with no control at all the detection is reported as caused by the
     change, with a note that other factors could not be excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..types import Assessment, DetectedChange, Verdict
from .did import DiDEstimator, DiDPanel, DiDResult
from .ika import IkaSST
from .rsst import ImprovedSSTParams
from .scoring import (ChangeDeclarationPolicy, declare_changes,
                      robust_normalise, robust_normalise_batch)

__all__ = ["FunnelConfig", "Funnel"]


@dataclass(frozen=True)
class FunnelConfig:
    """End-to-end FUNNEL parameters (paper defaults throughout).

    Attributes:
        sst: improved-SST parameters (omega = 9 gives the evaluation's
            W = 34 sliding window; use 5 for quick mitigation and 15 for
            precise assessment, section 3.2.3).
        policy: change-declaration thresholds (7-minute persistence).
        did_window: per-period sample count for the DiD panels; defaults
            to the gate window ``2*omega - 1``.
        did_threshold: bound on the normalised DiD estimator ``alpha``
            below which a change is attributed to other factors
            (section 3.2.4 suggests 0.5 for change-sensitive services).
        did_p_value: optional significance requirement on ``alpha``.
    """

    sst: ImprovedSSTParams = field(default_factory=ImprovedSSTParams)
    policy: ChangeDeclarationPolicy = field(
        default_factory=ChangeDeclarationPolicy)
    did_window: int = 0
    did_threshold: float = 0.5
    did_p_value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.did_window < 0:
            raise ParameterError("did_window must be >= 0")
        if self.did_threshold <= 0:
            raise ParameterError("did_threshold must be positive")

    @property
    def effective_did_window(self) -> int:
        return self.did_window or (2 * self.sst.omega - 1)


class Funnel:
    """FUNNEL detector + determiner for offline or online assessment.

    Example (dark launch, treated-only impact):
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> shared = 50 + rng.normal(0, 1, size=(16, 200))
        >>> treated, control = shared[:4].copy(), shared[4:]
        >>> treated[:, 100:] += 8.0                  # the change's impact
        >>> funnel = Funnel()
        >>> result = funnel.assess(treated, change_index=100,
        ...                        control=control)
        >>> result.verdict.value
        'caused_by_change'
    """

    def __init__(self, config: Optional[FunnelConfig] = None) -> None:
        self.config = config or FunnelConfig()
        self.scorer = IkaSST(self.config.sst)
        self.estimator = DiDEstimator()

    # -- detection ------------------------------------------------------------

    def detect(self, series: Sequence[float], change_index: int,
               baseline_stats: Optional[Tuple[float, float]] = None
               ) -> List[DetectedChange]:
        """Declared behaviour changes starting at/after ``change_index``.

        ``baseline_stats`` optionally carries the precomputed
        ``(median, MAD)`` of the pre-change baseline (the engine's
        per-entity cache) so repeated windows skip the recomputation.
        """
        x = np.asarray(series, dtype=np.float64)
        if not 0 <= change_index < x.size:
            raise ParameterError(
                "change_index %d outside series of length %d"
                % (change_index, x.size)
            )
        normalised = robust_normalise(x, baseline=max(change_index, 1),
                                      stats=baseline_stats)
        scores = self.scorer.scores(normalised)
        # The score at position t consumes samples through t + 2w - 2,
        # so in deployment it is computable that many bins later — the
        # declaration index must reflect that wall-clock reality or the
        # section 4.4 delay comparison would favour FUNNEL unfairly.
        declared = declare_changes(normalised, scores, self.config.policy,
                                   lookahead=self.config.sst.lookahead - 1)
        # Pre-existing changes are by definition not caused by this
        # software change; a 1-bin slack absorbs start-estimation jitter.
        return [c for c in declared if c.start_index >= change_index - 1]

    def detect_batch(
        self, stacked, change_indices: Sequence[int],
        baseline_stats: Optional[
            Sequence[Optional[Tuple[float, float]]]] = None,
    ) -> List[List[DetectedChange]]:
        """:meth:`detect` for a stack of same-length series at once.

        One batched normalisation and one :meth:`IkaSST.scores_batch`
        call cover every row; the persistence scan then runs per row on
        bitwise the same normalised samples and scores the per-series
        path would produce — with ``gating="batched"``, which
        precomputes each row's candidate statistics in one vectorised
        pass instead of per-candidate ``np.median`` calls — so the
        declared changes are identical to
        ``[self.detect(row, ci, stats) for row, ci, stats in ...]``.

        Args:
            stacked: ``(n_series, T)`` treated aggregates.
            change_indices: per-row software-change bin index.
            baseline_stats: optional per-row cached ``(median, MAD)``.
        """
        stack = np.ascontiguousarray(
            np.atleast_2d(np.asarray(stacked, dtype=np.float64)))
        n_series, width = stack.shape
        indices = [int(ci) for ci in change_indices]
        if len(indices) != n_series:
            raise ParameterError(
                "change_indices must have one entry per row (%d), got %d"
                % (n_series, len(indices)))
        for ci in indices:
            if not 0 <= ci < width:
                raise ParameterError(
                    "change_index %d outside series of length %d"
                    % (ci, width))
        normalised = robust_normalise_batch(
            stack, baselines=[max(ci, 1) for ci in indices],
            stats=baseline_stats)
        scores = self.scorer.scores_batch(
            normalised, lengths=[width] * n_series)
        lookahead = self.config.sst.lookahead - 1
        out: List[List[DetectedChange]] = []
        for row in range(n_series):
            declared = declare_changes(normalised[row], scores[row],
                                       self.config.policy,
                                       lookahead=lookahead,
                                       gating="batched")
            out.append([c for c in declared
                        if c.start_index >= indices[row] - 1])
        return out

    # -- attribution ------------------------------------------------------------

    def _did_from_panel(self, panel: DiDPanel) -> DiDResult:
        return self.estimator.fit(panel)

    def _attributed(self, result: DiDResult,
                    change: DetectedChange) -> bool:
        """Does the DiD estimate attribute ``change`` to the software change?

        Beyond the magnitude threshold, the impact estimator must *agree
        in direction* with the detected change: a positive level shift
        explained by a negative relative movement of the treated group
        (or vice versa) is control-group noise, not impact.
        """
        if not result.significant(self.config.did_threshold,
                                  self.config.did_p_value):
            return False
        if change.direction and result.normalised_alpha:
            return (change.direction > 0) == (result.normalised_alpha > 0)
        return True

    def _peer_panel(self, treated: np.ndarray, control: np.ndarray,
                    change_index: int, detection_index: int) -> DiDPanel:
        w = self.config.effective_did_window
        pre_lo = max(0, change_index - w)
        post_hi = min(treated.shape[1], detection_index + 1)
        post_lo = max(change_index, post_hi - w)
        return DiDPanel(
            treated_pre=treated[:, pre_lo:change_index],
            treated_post=treated[:, post_lo:post_hi],
            control_pre=control[:, pre_lo:change_index],
            control_post=control[:, post_lo:post_hi],
        )

    def _history_panel(self, series: np.ndarray, history: np.ndarray,
                       change_index: int, detection_index: int) -> DiDPanel:
        w = self.config.effective_did_window
        pre_lo = max(0, change_index - w)
        post_hi = min(series.size, detection_index + 1)
        post_lo = max(change_index, post_hi - w)
        return DiDPanel(
            treated_pre=series[pre_lo:change_index].reshape(1, -1),
            treated_post=series[post_lo:post_hi].reshape(1, -1),
            control_pre=history[:, pre_lo:change_index],
            control_post=history[:, post_lo:post_hi],
        )

    # -- full assessment ----------------------------------------------------------

    def assess(self, treated, change_index: int, control=None,
               history=None, first_change_only: bool = True,
               baseline_stats: Optional[Tuple[float, float]] = None
               ) -> Assessment:
        """Assess one item end-to-end (Fig. 3).

        Args:
            treated: treated-group measurements, ``(units, bins)`` or a
                single series; aggregated by mean for detection.
            change_index: bin index of the software change.
            control: peer control group ``(units, bins)`` — pass the
                cservers'/cinstances' series under Dark Launching when
                the KPI is not an affected service's; ``None`` otherwise.
            history: historical control ``(days, bins)``, each row the
                same clock window on a previous day — used when
                ``control`` is absent (affected services, Full
                Launching).
            first_change_only: assess only the earliest declared change.
            baseline_stats: precomputed baseline ``(median, MAD)``,
                forwarded to :meth:`detect`.

        Returns:
            The :class:`~repro.types.Assessment` with verdict, detection
            and DiD estimate.
        """
        treated = np.atleast_2d(np.asarray(treated, dtype=np.float64))
        aggregate = treated.mean(axis=0)
        changes = self.detect(aggregate, change_index,
                              baseline_stats=baseline_stats)
        if not changes:
            return Assessment(verdict=Verdict.NO_CHANGE)
        change = changes[0] if first_change_only else changes[-1]
        return self.attribute(treated, change, change_index,
                              control=control, history=history)

    def attribute(self, treated, change: DetectedChange, change_index: int,
                  control=None, history=None) -> Assessment:
        """Attribute one detected change (Fig. 3 steps 7-11).

        This is the second half of :meth:`assess`, split out so the
        engine can time and report detection and attribution as separate
        stages.  ``treated`` is the same matrix (or single series) that
        produced ``change``.
        """
        treated = np.atleast_2d(np.asarray(treated, dtype=np.float64))
        aggregate = treated.mean(axis=0)

        if control is not None and np.asarray(control).size:
            control = np.atleast_2d(np.asarray(control, dtype=np.float64))
            panel = self._peer_panel(treated, control, change_index,
                                     change.index)
            result = self._did_from_panel(panel)
            caused = self._attributed(result, change)
            return Assessment(
                verdict=(Verdict.CAUSED_BY_CHANGE if caused
                         else Verdict.OTHER_REASONS),
                change=change,
                did_estimate=result.normalised_alpha,
                control="peers",
            )

        if history is not None and np.asarray(history).size:
            history = np.atleast_2d(np.asarray(history, dtype=np.float64))
            panel = self._history_panel(aggregate, history, change_index,
                                        change.index)
            result = self._did_from_panel(panel)
            caused = self._attributed(result, change)
            return Assessment(
                verdict=(Verdict.CAUSED_BY_CHANGE if caused
                         else Verdict.SEASONALITY),
                change=change,
                did_estimate=result.normalised_alpha,
                control="history",
            )

        return Assessment(
            verdict=Verdict.CAUSED_BY_CHANGE,
            change=change,
            did_estimate=None,
            control=None,
            notes=("no control group available; other factors were not "
                   "excluded",),
        )
