"""Hankel (trajectory) matrices and implicit operations on them.

SST compares the dynamics of a time series before and after a point by
embedding short windows into Hankel matrices (paper Eq. 1 and 3):

    B(t) = [q(t - delta), ..., q(t - 1)],   q(t) = [x(t-w+1), ..., x(t)]^T
    A(t) = [r(t + rho), ..., r(t + rho + gamma - 1)]

``B(t)`` holds ``delta`` overlapping length-``w`` windows ending at ``t-1``;
``A(t)`` holds ``gamma`` windows starting ``rho`` points after ``t``.

Besides explicit construction this module provides the *implicit* products
used by the IKA fast path (paper section 3.2.3): ``C v = B B^T v`` is
computed without ever materialising ``C`` (the "matrix compression and
implicit inner product calculation" of the paper), reducing one product
from O(w^2 * delta) memory-bound work to two Hankel matvecs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import as_float_array

__all__ = [
    "hankel_matrix",
    "past_matrix",
    "future_matrix",
    "diagonal_average",
    "HankelOperator",
    "min_series_length",
]


def _check_embedding(window: int, count: int) -> None:
    if window < 2:
        raise ParameterError("window length must be >= 2, got %d" % window)
    if count < 1:
        raise ParameterError("window count must be >= 1, got %d" % count)


def hankel_matrix(series: Sequence[float], window: int, count: int,
                  start: int = 0) -> np.ndarray:
    """Build a ``window x count`` Hankel matrix from ``series``.

    Column ``j`` is ``series[start + j : start + j + window]``; consecutive
    columns overlap by ``window - 1`` samples, which is exactly the
    trajectory-matrix embedding used by singular spectrum analysis.

    Args:
        series: the input samples.
        window: length ``w`` of each lag window (rows).
        count: number of overlapping windows (columns).
        start: index of the first sample of the first column.

    Raises:
        ParameterError: for invalid ``window``/``count``/``start``.
        InsufficientDataError: if the series does not cover the embedding.
    """
    x = as_float_array(series)
    _check_embedding(window, count)
    if start < 0:
        raise ParameterError("start must be non-negative, got %d" % start)
    needed = start + window + count - 1
    if x.size < needed:
        raise InsufficientDataError(
            "need %d samples for a %dx%d Hankel embedding starting at %d, "
            "have %d" % (needed, window, count, start, x.size)
        )
    # A strided view would be fastest but an explicit copy keeps the result
    # safe to mutate and contiguous for the downstream SVD.
    out = np.empty((window, count), dtype=np.float64)
    for j in range(count):
        out[:, j] = x[start + j:start + j + window]
    return out


def past_matrix(series: Sequence[float], t: int, window: int,
                count: int) -> np.ndarray:
    """The past Hankel matrix ``B(t)`` of paper Eq. 1.

    Columns are ``q(t - count), ..., q(t - 1)`` where ``q(i)`` ends at
    sample ``i`` inclusive, i.e. the latest sample used is ``x[t - 1]``.
    """
    start = t - count - window + 1
    if start < 0:
        raise InsufficientDataError(
            "past matrix at t=%d needs %d leading samples" % (t, -start)
        )
    return hankel_matrix(series, window, count, start=start)


def future_matrix(series: Sequence[float], t: int, window: int, count: int,
                  lag: int = 0) -> np.ndarray:
    """The future Hankel matrix ``A(t)`` of paper Eq. 3.

    Columns are ``r(t + lag), ..., r(t + lag + count - 1)`` where ``r(i)``
    starts at sample ``i``; with the paper's default ``rho = 0`` the first
    column starts at ``x[t]`` itself.
    """
    x = as_float_array(series)
    if t < 0:
        raise ParameterError("t must be non-negative, got %d" % t)
    if lag < 0:
        raise ParameterError("lag (rho) must be non-negative, got %d" % lag)
    return hankel_matrix(x, window, count, start=t + lag)


def diagonal_average(matrix: np.ndarray) -> np.ndarray:
    """Invert the Hankel embedding by averaging anti-diagonals.

    A ``w x d`` trajectory matrix built by :func:`hankel_matrix` places
    sample ``i`` of the underlying series at every cell ``(r, c)`` with
    ``r + c == i``.  Averaging those cells (the standard diagonal-averaging
    step of singular spectrum analysis) maps any matrix of the same shape
    back to a length ``w + d - 1`` series; for a true Hankel matrix the
    round trip is exact.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.size == 0:
        raise ParameterError(
            "matrix must be non-empty and 2-D, got shape %s" % (m.shape,)
        )
    rows, cols = m.shape
    length = rows + cols - 1
    sums = np.zeros(length, dtype=np.float64)
    counts = np.zeros(length, dtype=np.float64)
    for c in range(cols):
        sums[c:c + rows] += m[:, c]
        counts[c:c + rows] += 1.0
    return sums / counts


def min_series_length(t: int, window: int, count: int, lag: int = 0) -> int:
    """Samples required to evaluate both ``B(t)`` and ``A(t)`` at index ``t``."""
    return t + lag + window + count - 1


class HankelOperator:
    """Implicit linear operator for ``C = B B^T`` of a Hankel matrix ``B``.

    ``B`` is ``w x d`` and defined by a slice of the series; the operator
    applies ``C v = B (B^T v)`` using only the ``w + d - 1`` underlying
    samples.  This is the "matrix compression" of paper section 3.2.3: the
    Lanczos recursion needs nothing but this product, so the ``w x w``
    covariance is never formed.

    ``B^T v`` is a sliding dot product (correlation) of the sample slice
    with ``v``, and ``B u`` is the adjoint correlation; both are delegated
    to :func:`numpy.correlate`/:func:`numpy.convolve`, i.e. O(w*d) with a
    small constant instead of the O(w^2*d) cost of forming ``C``.
    """

    def __init__(self, series: Sequence[float], window: int, count: int,
                 start: int = 0) -> None:
        x = as_float_array(series)
        _check_embedding(window, count)
        if start < 0:
            raise ParameterError("start must be non-negative, got %d" % start)
        needed = start + window + count - 1
        if x.size < needed:
            raise InsufficientDataError(
                "need %d samples, have %d" % (needed, x.size)
            )
        self._slice = x[start:start + window + count - 1].copy()
        self.window = window
        self.count = count

    @classmethod
    def past(cls, series: Sequence[float], t: int, window: int,
             count: int) -> "HankelOperator":
        """Operator for ``B(t) B(t)^T`` (see :func:`past_matrix`)."""
        start = t - count - window + 1
        if start < 0:
            raise InsufficientDataError(
                "past operator at t=%d needs %d leading samples" % (t, -start)
            )
        return cls(series, window, count, start=start)

    @property
    def shape(self) -> tuple:
        return (self.window, self.window)

    def dense(self) -> np.ndarray:
        """Materialise ``B`` explicitly (for tests and small problems)."""
        return hankel_matrix(self._slice, self.window, self.count)

    def correlate(self, v: np.ndarray) -> np.ndarray:
        """``B^T v`` for a length-``window`` vector ``v``."""
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.window,):
            raise ParameterError(
                "expected vector of length %d, got shape %s"
                % (self.window, v.shape)
            )
        # column j of B is slice[j : j + window]; (B^T v)[j] = <col_j, v>
        return np.correlate(self._slice, v, mode="valid")

    def expand(self, u: np.ndarray) -> np.ndarray:
        """``B u`` for a length-``count`` vector ``u``."""
        u = np.asarray(u, dtype=np.float64)
        if u.shape != (self.count,):
            raise ParameterError(
                "expected vector of length %d, got shape %s"
                % (self.count, u.shape)
            )
        # (B u)[i] = sum_j slice[i + j] * u[j]  -- a correlation again.
        return np.correlate(self._slice, u, mode="valid")

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``C v = B (B^T v)`` without forming ``C``."""
        return self.expand(self.correlate(v))

    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)
