"""IKA-accelerated improved SST — paper section 3.2.3, Eq. 13-14.

The exact path in :mod:`repro.core.rsst` spends almost all of its time in
the SVD of the past Hankel matrix.  The Implicit Krylov Approximation of
Ide & Tsuda (2007) removes it:

* ``C = B(t) B(t)^T`` is never formed — matrix-vector products with ``C``
  are evaluated implicitly from the raw samples ("matrix compression and
  implicit inner product calculation",
  :class:`repro.core.hankel.HankelOperator`);
* for each future direction ``beta_i(t)``, ``k`` Lanczos steps seeded at
  ``beta_i`` produce a ``k x k`` tridiagonal ``T_k`` with
  ``k = 2*eta`` (eta even) or ``2*eta - 1`` (eta odd) — Eq. 14;
* the QL iteration (:func:`repro.core.tridiag.tridiag_eigh`) diagonalises
  ``T_k``; because the seed is the first Lanczos basis vector, the squared
  first components of the top ``eta`` eigenvectors of ``T_k`` are exactly
  the squared projections of ``beta_i`` onto the Ritz approximations of
  the past subspace, giving Eq. 13::

      phi_i(t) ~= 1 - sum_{j=1..eta} x_j(1)^2

Two code paths compute the same transform:

* :meth:`IkaSST.score_at` / :meth:`IkaSST.scores_reference` — the
  literal per-point algorithm above (one Lanczos recursion and one scalar
  QL solve per future direction).  This is the specification.
* :meth:`IkaSST.scores` / :meth:`IkaSST.scores_batch` — the deployed
  path: the identical recursion evaluated for *every* window of *every*
  series simultaneously with batched NumPy primitives (strided Hankel
  views, ``einsum`` for the implicit products, stacked ``eigh`` for the
  tiny tridiagonals).  In a compiled implementation the per-point path
  is already fast; under an interpreter the batching recovers the
  paper's per-window cost profile without changing a single arithmetic
  step.  The test suite pins the two paths to each other.

``scores_batch`` adds a leading *series* axis on top: a stack of
same-length series becomes one ``(n_series * T, omega, omega)`` eigh and
one vectorised Lanczos recursion.  ``scores(x)`` is literally
``scores_batch(x[None])[0]``, so per-series vs. batched parity holds by
construction; the remaining invariant — a row scores identically no
matter which stack it is part of — follows from materialising each
stack contiguously before the einsum products (fixed inner strides for
any batch size) and from every downstream primitive (stacked ``eigh``,
per-row norms and medians) operating element-independently per series.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..exceptions import InsufficientDataError, ParameterError
from ..types import as_float_array
from .hankel import HankelOperator, future_matrix
from .lanczos import krylov_dimension, lanczos
from .rsst import ImprovedSSTParams, median_mad_gate
from .tridiag import tridiag_eigh

__all__ = ["IkaSST"]


class IkaSST:
    """Fast improved-SST scorer (the algorithm FUNNEL deploys online).

    Produces the same gated change score as
    :class:`repro.core.rsst.ImprovedSST` up to Krylov-approximation error,
    replacing the past-matrix SVD with ``eta`` implicit Lanczos recursions
    of dimension ``k <= 2*eta``.

    Example:
        >>> import numpy as np
        >>> x = np.r_[np.zeros(60), np.ones(60)] + 0.01
        >>> scorer = IkaSST()
        >>> scores = scorer.scores(x)
        >>> 50 < int(np.argmax(scores)) < 95
        True
    """

    def __init__(self, params: Optional[ImprovedSSTParams] = None) -> None:
        self.params = params or ImprovedSSTParams()
        self.krylov_k = krylov_dimension(self.params.eta)

    # ------------------------------------------------------------------
    # Reference (per-point) path
    # ------------------------------------------------------------------

    def future_pairs(self, series: Sequence[float],
                     t: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(lambda_{1:eta}, beta_{1:eta})`` of ``A(t) A(t)^T``.

        Uses the eigen-decomposition of the small ``omega x omega`` Gram
        matrix rather than an SVD of the trajectory matrix.
        """
        p = self.params
        a = future_matrix(series, t, p.omega, p.gamma, lag=0)
        gram = a @ a.T
        lam, vec = np.linalg.eigh(gram)        # ascending
        lam = np.clip(lam, 0.0, None)
        if p.future_directions == "largest":
            sel = slice(-1, -(p.eta + 1), -1)
        else:
            sel = slice(0, p.eta)
        return lam[sel].copy(), vec[:, sel].copy()

    def _phi(self, operator: HankelOperator, beta: np.ndarray) -> float:
        """Eq. 13: discordance of one future direction via Lanczos + QL."""
        p = self.params
        k = min(self.krylov_k, operator.window)
        result = lanczos(operator, beta, k)
        _, vectors = tridiag_eigh(result.alpha, result.beta)
        # tridiag_eigh sorts ascending; the top-eta Ritz pairs are last.
        eta = min(p.eta, result.k)
        first_components = vectors[0, -eta:]
        phi = 1.0 - float(np.sum(first_components ** 2))
        return min(max(phi, 0.0), 1.0)

    def raw_score_at(self, series: Sequence[float], t: int) -> float:
        """Ungated blended score ``xhat(t)`` (Eq. 9 via Eq. 13)."""
        p = self.params
        operator = HankelOperator.past(series, t, p.omega, p.delta)
        lam, betas = self.future_pairs(series, t)
        total = float(lam.sum())
        if total <= 0.0:
            return 0.0
        score = 0.0
        for i in range(lam.size):
            if lam[i] <= 0.0:
                continue
            score += lam[i] * self._phi(operator, betas[:, i])
        return float(score / total)

    def score_at(self, series: Sequence[float], t: int) -> float:
        """Gated score ``xtilde(t)`` of Eq. 11 at one index."""
        raw = self.raw_score_at(series, t)
        if not self.params.gated:
            return raw
        return raw * median_mad_gate(series, t, self.params.omega)

    def scores_reference(self, series: Sequence[float]) -> np.ndarray:
        """Per-point path over the whole series (tests/validation only)."""
        x = as_float_array(series)
        lo, hi = self._score_range(x.size)
        out = np.zeros(x.size, dtype=np.float64)
        for t in range(lo, hi):
            out[t] = self.score_at(x, t)
        return out

    # ------------------------------------------------------------------
    # Deployed (batched) path
    # ------------------------------------------------------------------

    def scores(self, series: Sequence[float]) -> np.ndarray:
        """Gated scores for every scoreable index (batched evaluation).

        The result has the same length as ``series``; edge indices whose
        embedding does not fit hold ``0.0``.  Delegates to
        :meth:`scores_batch` with a single-row stack, so the per-series
        and cross-series paths are the same arithmetic by construction.
        """
        x = as_float_array(series)
        self._score_range(x.size)
        return self.scores_batch(x[None, :], lengths=(x.size,))[0]

    def scores_batch(self, stacked: Sequence[Sequence[float]],
                     lengths: Optional[Sequence[int]] = None) -> np.ndarray:
        """Gated scores for a ``(n_series, T)`` stack of series at once.

        Every row is scored exactly as :meth:`scores` would score it in
        isolation — bitwise, not merely numerically: rows are always
        materialised as one contiguous stack before the sliding-window
        einsum products, so the inner iteration strides (and therefore
        every floating-point operation order) are independent of the
        batch size, and the stacked ``eigh`` / per-row reductions
        downstream are element-independent per series.

        Ragged stacks are supported through NaN padding: trailing NaNs
        mark a row as shorter, rows are grouped by effective length and
        each group is scored on its un-padded prefix.  Alternatively
        pass explicit per-row ``lengths`` (this also disables the NaN
        interpretation — rows are scored verbatim up to their length).

        Returns:
            ``(n_series, T)`` array; for each row the entries beyond its
            effective length, and the edge indices whose embedding does
            not fit, hold ``0.0``.
        """
        stack = np.asarray(stacked, dtype=np.float64)
        if stack.ndim != 2:
            raise ParameterError(
                "scores_batch needs a 2-D (n_series, T) stack, got ndim=%d"
                % stack.ndim)
        n_series, width = stack.shape
        if lengths is None:
            finite = np.isfinite(stack)
            rev_first = np.argmax(finite[:, ::-1], axis=1)
            row_lengths = np.where(finite.any(axis=1), width - rev_first, 0)
        else:
            row_lengths = np.asarray(lengths, dtype=np.intp)
            if row_lengths.shape != (n_series,):
                raise ParameterError(
                    "lengths must have one entry per row (%d), got %r"
                    % (n_series, row_lengths.shape))
            if row_lengths.size and (row_lengths.min() < 0
                                     or row_lengths.max() > width):
                raise ParameterError(
                    "row lengths must be in [0, %d]" % width)

        out = np.zeros((n_series, width), dtype=np.float64)
        for length in np.unique(row_lengths):
            rows = np.flatnonzero(row_lengths == length)
            lo, hi = self._score_range(int(length))
            sub = np.ascontiguousarray(stack[rows, :length])
            raw = self._raw_scores_batched(sub, lo, hi)
            if self.params.gated:
                raw *= self._gates_batched(sub, lo, hi)
            out[rows[:, None], np.arange(lo, hi)[None, :]] = raw
        return out

    def _score_range(self, size: int) -> Tuple[int, int]:
        p = self.params
        lo, hi = p.first_index(), p.last_index(size)
        if hi <= lo:
            raise InsufficientDataError(
                "series of length %d is shorter than the window %d"
                % (size, p.window_length)
            )
        return lo, hi

    def _raw_scores_batched(self, sub: np.ndarray, lo: int,
                            hi: int) -> np.ndarray:
        """Raw blended scores for a contiguous ``(R, L)`` stack.

        Returns ``(R, hi - lo)``.  ``sub`` must be C-contiguous so the
        window views below have batch-size-independent strides.
        """
        p = self.params
        omega, eta = p.omega, p.eta
        k = min(self.krylov_k, omega)
        span = 2 * omega - 1          # samples per Hankel slice
        n_rows = sub.shape[0]

        # slices[r, s] = sub[r, s : s + span];
        # windows[r, s, j] = sub[r, s + j : s + j + omega]
        slices = sliding_window_view(sub, span, axis=1)
        windows = sliding_window_view(slices, omega, axis=2)

        # Future trajectory at t uses the slice starting at t;
        # the past one uses the slice ending at t - 1, i.e. start t - span.
        # Flatten (series, t) into one leading axis: every einsum, the
        # stacked eigh and the Lanczos recursion below then cover all
        # windows of all series in single calls.
        n_t = hi - lo
        fut = np.ascontiguousarray(
            windows[:, lo:hi]).reshape(n_rows * n_t, p.delta, omega)
        past = np.ascontiguousarray(
            windows[:, lo - span:hi - span]).reshape(
                n_rows * n_t, p.delta, omega)

        # Eigen-pairs of A A^T via the omega x omega Gram matrices.
        gram = np.einsum("tjw,tjv->twv", fut, fut)
        lam_all, vec_all = np.linalg.eigh(gram)    # ascending per window
        lam_all = np.clip(lam_all, 0.0, None)
        if p.future_directions == "largest":
            lam = lam_all[:, :-(eta + 1):-1]       # (R*T, eta) descending
            betas = vec_all[:, :, :-(eta + 1):-1]  # (R*T, omega, eta)
        else:
            lam = lam_all[:, :eta]
            betas = vec_all[:, :, :eta]

        phi = np.empty((n_rows * n_t, eta), dtype=np.float64)
        for i in range(eta):
            phi[:, i] = self._phi_batched(past, betas[:, :, i], k, eta)

        total = lam.sum(axis=1)
        raw = np.zeros(n_rows * n_t, dtype=np.float64)
        ok = total > 0.0
        raw[ok] = np.einsum("ti,ti->t", lam[ok], phi[ok]) / total[ok]
        return raw.reshape(n_rows, n_t)

    def _phi_batched(self, past: np.ndarray, seeds: np.ndarray, k: int,
                     eta: int) -> np.ndarray:
        """Eq. 13 for one future direction across all windows at once.

        ``past`` has shape ``(T, delta, omega)`` with ``past[t, j]`` the
        j-th column of ``B(t)``; ``seeds`` is ``(T, omega)``.  Runs the
        same Lanczos recursion as :func:`repro.core.lanczos.lanczos`
        vectorised over ``t``, then diagonalises the stacked ``k x k``
        tridiagonals (stacked ``eigh`` stands in for the scalar QL solver
        — same eigenpairs, validated against each other in the tests).
        """
        n_t, _, omega = past.shape
        basis = np.zeros((n_t, omega, k), dtype=np.float64)
        alpha = np.zeros((n_t, k), dtype=np.float64)
        off = np.zeros((n_t, max(k - 1, 1)), dtype=np.float64)

        q = seeds / np.linalg.norm(seeds, axis=1, keepdims=True)
        basis[:, :, 0] = q
        prev = np.zeros_like(q)
        prev_beta = np.zeros(n_t, dtype=np.float64)

        for j in range(k):
            qj = basis[:, :, j]
            # Implicit C v = B (B^T v): two sliding-dot einsum products.
            pv = np.einsum("tdw,tw->td", past, qj)
            w = np.einsum("tdw,td->tw", past, pv)
            alpha[:, j] = np.einsum("tw,tw->t", qj, w)
            w = w - alpha[:, j, None] * qj - prev_beta[:, None] * prev
            # Full reorthogonalisation against the basis so far.
            coeffs = np.einsum("twj,tw->tj", basis[:, :, :j + 1], w)
            w = w - np.einsum("twj,tj->tw", basis[:, :, :j + 1], coeffs)
            if j == k - 1:
                break
            b = np.linalg.norm(w, axis=1)
            alive = b > 1e-12
            off[:, j] = np.where(alive, b, 0.0)
            prev = qj
            prev_beta = off[:, j]
            safe = np.where(alive, b, 1.0)
            basis[:, :, j + 1] = np.where(alive[:, None], w / safe[:, None],
                                          0.0)

        # Stack the tridiagonals and diagonalise them together.
        tk = np.zeros((n_t, k, k), dtype=np.float64)
        idx = np.arange(k)
        tk[:, idx, idx] = alpha
        if k > 1:
            sub = off[:, :k - 1]
            tk[:, idx[:-1], idx[1:]] = sub
            tk[:, idx[1:], idx[:-1]] = sub
        _, vecs = np.linalg.eigh(tk)               # ascending per t
        top = vecs[:, 0, -min(eta, k):]            # first components
        phi = 1.0 - np.sum(top ** 2, axis=1)
        return np.clip(phi, 0.0, 1.0)

    def _gates_batched(self, sub: np.ndarray, lo: int,
                       hi: int) -> np.ndarray:
        """Eq. 11 gate factors for every scoreable index of every row."""
        span = 2 * self.params.omega - 1
        slices = sliding_window_view(sub, span, axis=1)
        meds = np.median(slices, axis=2)
        mads = np.median(np.abs(slices - meds[:, :, None]), axis=2)
        # before-window of t starts at t - span; after-window starts at t.
        before = slice(lo - span, hi - span)
        after = slice(lo, hi)
        return np.sqrt(np.abs(meds[:, before] - meds[:, after])) + \
            np.sqrt(np.abs(mads[:, before] - mads[:, after]))
