"""Lanczos tridiagonalisation for the IKA fast path (paper section 3.2.3).

``lanczos(C, seed, k)`` reduces a symmetric positive semi-definite operator
``C`` to a ``k x k`` symmetric tridiagonal matrix ``T_k`` whose eigenpairs
approximate those of ``C`` restricted to the Krylov subspace
``span{seed, C seed, ..., C^{k-1} seed}``.  The paper runs
``Lanczos(C, beta_i(t), k)`` with ``C = B(t) B(t)^T`` applied *implicitly*
(see :class:`repro.core.hankel.HankelOperator`), which is the entire source
of FUNNEL's speed advantage over exact-SVD SST.

The implementation uses full reorthogonalisation: ``k`` is tiny (``2*eta``
or ``2*eta - 1``, i.e. 5 or 6 in practice) so the O(k^2 w) cost is
negligible and the numerical robustness is worth it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from ..exceptions import ParameterError
from .hankel import HankelOperator

__all__ = ["LanczosResult", "lanczos", "krylov_dimension"]

MatVec = Union[np.ndarray, HankelOperator, Callable[[np.ndarray], np.ndarray]]


@dataclass(frozen=True)
class LanczosResult:
    """Output of :func:`lanczos`.

    Attributes:
        alpha: diagonal of ``T_k`` (length ``k``).
        beta: subdiagonal of ``T_k`` (length ``k - 1``).
        basis: the ``n x k`` orthonormal Lanczos basis ``Q``.
        breakdown: True if the recursion terminated early because the
            Krylov subspace became invariant; ``alpha``/``beta``/``basis``
            are truncated to the achieved dimension.
    """

    alpha: np.ndarray
    beta: np.ndarray
    basis: np.ndarray
    breakdown: bool

    @property
    def k(self) -> int:
        return self.alpha.size

    def tridiagonal(self) -> np.ndarray:
        """Materialise ``T_k`` as a dense array (tests, small problems)."""
        t = np.diag(self.alpha)
        idx = np.arange(self.k - 1)
        t[idx, idx + 1] = self.beta
        t[idx + 1, idx] = self.beta
        return t


def _as_matvec(operator: MatVec) -> Callable[[np.ndarray], np.ndarray]:
    if isinstance(operator, HankelOperator):
        return operator.matvec
    if isinstance(operator, np.ndarray):
        if operator.ndim != 2 or operator.shape[0] != operator.shape[1]:
            raise ParameterError(
                "dense operator must be square, got shape %s"
                % (operator.shape,)
            )
        return lambda v: operator @ v
    if callable(operator):
        return operator
    raise ParameterError("operator must be an array, HankelOperator or callable")


def lanczos(operator: MatVec, seed: np.ndarray, k: int,
            breakdown_tol: float = 1e-12) -> LanczosResult:
    """Run ``k`` Lanczos steps of ``operator`` from ``seed``.

    Args:
        operator: symmetric PSD operator — a dense array, a
            :class:`~repro.core.hankel.HankelOperator`, or a matvec callable.
        seed: the starting vector (the paper uses the future direction
            ``beta_i(t)``); it is normalised internally.
        k: the Krylov dimension (see :func:`krylov_dimension`).
        breakdown_tol: relative tolerance under which the residual is
            considered zero and the recursion stops early.

    Raises:
        ParameterError: for an invalid ``k``, a zero seed, or a seed/operator
            dimension mismatch.
    """
    matvec = _as_matvec(operator)
    q = np.asarray(seed, dtype=np.float64).ravel()
    n = q.size
    if k < 1:
        raise ParameterError("Krylov dimension k must be >= 1, got %d" % k)
    if k > n:
        raise ParameterError(
            "Krylov dimension k=%d exceeds operator dimension %d" % (k, n)
        )
    norm = np.linalg.norm(q)
    if norm == 0.0:
        raise ParameterError("Lanczos seed vector is zero")
    q = q / norm

    basis = np.empty((n, k), dtype=np.float64)
    alpha = np.empty(k, dtype=np.float64)
    beta = np.empty(max(k - 1, 0), dtype=np.float64)

    basis[:, 0] = q
    prev = np.zeros(n, dtype=np.float64)
    prev_beta = 0.0
    achieved = k
    broke = False

    for j in range(k):
        w = np.asarray(matvec(basis[:, j]), dtype=np.float64)
        if w.shape != (n,):
            raise ParameterError(
                "operator returned shape %s for a length-%d vector"
                % (w.shape, n)
            )
        alpha[j] = basis[:, j] @ w
        w = w - alpha[j] * basis[:, j] - prev_beta * prev
        # Full reorthogonalisation against the basis built so far; k is at
        # most 2*eta so this costs O(k * n) per step.
        w -= basis[:, :j + 1] @ (basis[:, :j + 1].T @ w)
        if j == k - 1:
            break
        b = np.linalg.norm(w)
        scale = max(abs(alpha[j]), prev_beta, 1.0)
        if b <= breakdown_tol * scale:
            achieved = j + 1
            broke = True
            break
        beta[j] = b
        prev = basis[:, j]
        prev_beta = b
        basis[:, j + 1] = w / b

    return LanczosResult(
        alpha=alpha[:achieved].copy(),
        beta=beta[:max(achieved - 1, 0)].copy(),
        basis=basis[:, :achieved].copy(),
        breakdown=broke,
    )


def krylov_dimension(eta: int) -> int:
    """The paper's Eq. 14: ``k = 2*eta`` if eta is even else ``2*eta - 1``."""
    if eta < 1:
        raise ParameterError("eta must be >= 1, got %d" % eta)
    return 2 * eta if eta % 2 == 0 else 2 * eta - 1
