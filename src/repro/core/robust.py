"""Robust summary statistics used by the improved SST and the baselines.

The paper (section 3.2.2) gates SST change scores with the median and the
median absolute deviation (MAD) of windows before and after the evaluated
point, because "the mean and standard deviation for Gaussian distribution
are not very robust in the presence of large changes or outliers".
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import as_float_array

__all__ = [
    "median",
    "mad",
    "median_and_mad",
    "robust_zscores",
    "MAD_TO_SIGMA",
    "window_pair",
]

#: Scale factor that makes the MAD a consistent estimator of the standard
#: deviation for Gaussian data: sigma ~= 1.4826 * MAD.
MAD_TO_SIGMA = 1.4826022185056018


def median(values: Sequence[float]) -> float:
    """Median of ``values`` (finite, 1-D)."""
    arr = as_float_array(values)
    if arr.size == 0:
        raise InsufficientDataError("median of an empty sequence")
    return float(np.median(arr))


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (paper Eq. 12).

    Args:
        values: the samples.
        center: deviation reference; defaults to ``median(values)``.
    """
    arr = as_float_array(values)
    if arr.size == 0:
        raise InsufficientDataError("MAD of an empty sequence")
    if center is None:
        center = float(np.median(arr))
    return float(np.median(np.abs(arr - center)))


def median_and_mad(values: Sequence[float]) -> Tuple[float, float]:
    """Return ``(median, MAD)`` with a single pass over ``values``."""
    arr = as_float_array(values)
    if arr.size == 0:
        raise InsufficientDataError("statistics of an empty sequence")
    med = float(np.median(arr))
    return med, float(np.median(np.abs(arr - med)))


def robust_zscores(values: Sequence[float]) -> np.ndarray:
    """Outlier scores ``(x - median) / (MAD_TO_SIGMA * MAD)``.

    When the MAD is zero (more than half the samples identical) the scores
    of the identical samples are 0 and any deviating sample gets ``inf``
    magnitude, which callers typically clip or threshold.
    """
    arr = as_float_array(values)
    med, scale = median_and_mad(arr)
    scale *= MAD_TO_SIGMA
    with np.errstate(divide="ignore", invalid="ignore"):
        z = (arr - med) / scale
    if scale == 0.0:
        z = np.where(arr == med, 0.0, np.copysign(np.inf, arr - med))
    return z


def window_pair(series: Sequence[float], t: int,
                half_width: int) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(2*omega - 1)``-point windows before and after index ``t``.

    The paper's Eq. 11 compares the median/MAD of the series over a window
    of length ``2*omega - 1`` ending just before ``x(t)`` with the same
    statistics over the window starting at ``x(t)``.

    Args:
        series: the input samples.
        t: the evaluated index.
        half_width: the window length ``2*omega - 1``.

    Returns:
        ``(before, after)`` arrays, each of length ``half_width``.
    """
    x = as_float_array(series)
    if half_width < 1:
        raise ParameterError("window length must be >= 1, got %d" % half_width)
    if t - half_width < 0 or t + half_width > x.size:
        raise InsufficientDataError(
            "index %d needs %d samples on each side, series has %d"
            % (t, half_width, x.size)
        )
    return x[t - half_width:t], x[t:t + half_width]
