"""Improved (robust) SST — paper section 3.2.2, Eq. 8-12.

Two robustness fixes over the classic transform in :mod:`repro.core.sst`:

1. **Multi-eigenvector future subspace.**  Instead of scoring only the
   single dominant future direction, the improved SST extracts ``eta``
   eigenvectors ``beta_i(t)`` of ``A(t) A(t)^T`` and blends their
   discordances with the past subspace, weighted by eigenvalue::

       phi_i(t) = 1 - sum_j (beta_i^T u_j)^2          (Eq. 10)
       xhat(t)  = sum_i lambda_i phi_i / sum_i lambda_i   (Eq. 9)

   The paper's Eq. 8 text says the eigenvectors with the *smallest*
   eigenvalues are used; taken literally those are the noise directions of
   the future window and carry no change energy.  Robust-SST (Mohammad &
   Nishida 2009), which the section cites as its basis, weights the
   *principal* directions.  Both variants are implemented; the default is
   ``future_directions="largest"`` which reproduces the paper's detection
   behaviour (see DESIGN.md, "Interpretation notes").

2. **Median/MAD gating** (Eq. 11-12).  The raw score is multiplied by
   ``sqrt(|median_a - median_b|) * sqrt(|MAD_a - MAD_b|)`` over the
   ``(2*omega - 1)``-point windows before/after the evaluated point, so
   sections where neither the robust location nor the robust scale of the
   series moves are filtered to ~zero even if subspace noise produced a
   spurious raw score.

Because the gate magnitudes carry the units of the KPI, callers that
compare scores against a fixed threshold should feed a robustly
normalised series (see :func:`repro.core.scoring.robust_normalise`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import as_float_array
from .hankel import future_matrix, past_matrix
from .robust import median_and_mad, window_pair

__all__ = ["ImprovedSSTParams", "ImprovedSST", "median_mad_gate"]


@dataclass(frozen=True)
class ImprovedSSTParams:
    """Parameters of the improved SST.

    The paper's recipe (section 3.2.2) removes three of classic SST's five
    free parameters: ``rho = 0``, ``gamma = delta = omega`` and ``eta = 3``,
    leaving only ``omega`` to choose per service (5 for quick mitigation,
    15 for precise assessment, 9 in the paper's evaluation).
    """

    omega: int = 9
    eta: int = 3
    future_directions: str = "largest"
    gated: bool = True

    def __post_init__(self) -> None:
        if self.omega < 2:
            raise ParameterError("omega must be >= 2, got %d" % self.omega)
        if not 1 <= self.eta <= self.omega:
            raise ParameterError(
                "eta must be in [1, omega]=[1, %d], got %d"
                % (self.omega, self.eta)
            )
        if self.future_directions not in ("largest", "smallest"):
            raise ParameterError(
                "future_directions must be 'largest' or 'smallest', got %r"
                % (self.future_directions,)
            )

    @property
    def delta(self) -> int:
        return self.omega

    @property
    def gamma(self) -> int:
        return self.omega

    @property
    def lead(self) -> int:
        """Samples required strictly before the evaluated point.

        Both the past embedding (``omega + delta - 1``) and the gate window
        (``2*omega - 1``) need exactly this many samples.
        """
        return 2 * self.omega - 1

    @property
    def lookahead(self) -> int:
        """Samples required at/after the evaluated point (rho = 0)."""
        return 2 * self.omega - 1

    @property
    def window_length(self) -> int:
        """Sliding-window length ``W``; ``omega = 9`` gives the paper's 34."""
        return self.lead + self.lookahead

    def first_index(self) -> int:
        return self.lead

    def last_index(self, n: int) -> int:
        return n - self.lookahead + 1


def median_mad_gate(series: Sequence[float], t: int, omega: int) -> float:
    """The Eq. 11 gate factor at index ``t``.

    Computes ``sqrt(|median_a - median_b|) + sqrt(|MAD_a - MAD_b|)`` over
    the ``(2*omega - 1)``-point windows before and after ``t``: zero when
    *neither* the robust location nor the robust scale moves (the
    "sections where the median and the MAD remain nearly constant" the
    paper filters), responsive to a pure level shift through the median
    term and to a pure variance change through the MAD term.  A literal
    product of the two terms would vanish on a noise-free level shift
    (``delta MAD = 0``), contradicting the filter's stated intent — see
    DESIGN.md, "Interpretation notes".
    """
    before, after = window_pair(series, t, 2 * omega - 1)
    med_a, mad_a = median_and_mad(before)
    med_b, mad_b = median_and_mad(after)
    return float(np.sqrt(abs(med_a - med_b)) + np.sqrt(abs(mad_a - mad_b)))


class ImprovedSST:
    """Robust SST change-score computer (exact SVD path).

    The IKA-accelerated equivalent is
    :class:`repro.core.ika.IkaSST`; both share this parameter object and
    produce scores that agree to within Krylov-approximation error (an
    invariant asserted by the test suite).
    """

    def __init__(self, params: Optional[ImprovedSSTParams] = None) -> None:
        self.params = params or ImprovedSSTParams()

    # -- subspace pieces ---------------------------------------------------

    def past_subspace(self, series: Sequence[float], t: int) -> np.ndarray:
        """``U_eta(t)``: top ``eta`` left singular vectors of ``B(t)``."""
        p = self.params
        b = past_matrix(series, t, p.omega, p.delta)
        u, _, _ = np.linalg.svd(b, full_matrices=False)
        return u[:, :p.eta]

    def future_pairs(self, series: Sequence[float],
                     t: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(lambda_{1:eta}, beta_{1:eta})`` of ``A(t) A(t)^T`` (Eq. 8).

        Returns eigenvalues (descending for ``"largest"``, ascending for
        ``"smallest"``) and the matching eigenvectors as columns.
        """
        p = self.params
        a = future_matrix(series, t, p.omega, p.gamma, lag=0)
        u, s, _ = np.linalg.svd(a, full_matrices=False)
        lam = s ** 2
        if p.future_directions == "largest":
            return lam[:p.eta], u[:, :p.eta]
        return lam[::-1][:p.eta], u[:, ::-1][:, :p.eta]

    # -- scores ------------------------------------------------------------

    def raw_score_at(self, series: Sequence[float], t: int) -> float:
        """Ungated blended score ``xhat(t)`` of Eq. 9."""
        u_eta = self.past_subspace(series, t)
        lam, betas = self.future_pairs(series, t)
        total = float(lam.sum())
        if total <= 0.0:
            # A zero future window has no dynamics at all: no change.
            return 0.0
        # phi_i = 1 - sum_j (beta_i . u_j)^2  for every i at once.
        proj = u_eta.T @ betas                      # (eta, eta)
        phi = 1.0 - np.sum(proj ** 2, axis=0)
        phi = np.clip(phi, 0.0, 1.0)
        return float((lam @ phi) / total)

    def score_at(self, series: Sequence[float], t: int) -> float:
        """Gated score ``xtilde(t)`` of Eq. 11 (or raw if gating disabled)."""
        raw = self.raw_score_at(series, t)
        if not self.params.gated:
            return raw
        return raw * median_mad_gate(series, t, self.params.omega)

    def scores(self, series: Sequence[float]) -> np.ndarray:
        """Gated scores for every scoreable index; zeros at the edges."""
        x = as_float_array(series)
        p = self.params
        lo, hi = p.first_index(), p.last_index(x.size)
        if hi <= lo:
            raise InsufficientDataError(
                "series of length %d is shorter than the window %d"
                % (x.size, p.window_length)
            )
        out = np.zeros(x.size, dtype=np.float64)
        for t in range(lo, hi):
            out[t] = self.score_at(x, t)
        return out
