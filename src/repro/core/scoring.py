"""Change-score post-processing: from scores to declared KPI changes.

The transforms in :mod:`repro.core.rsst` / :mod:`repro.core.ika` output a
per-sample change score.  This module turns scores into the paper's
notion of a *KPI change* (section 2.3): a non-transient behaviour change —
a level shift or a ramp up/down — declared only after it persists for at
least :data:`PERSISTENCE_MINUTES` time-bins (section 4.1: "we set a
threshold of 7 minutes in FUNNEL to declare a change in a time series as
a level-shift or ramp-up/down rather than a one-off event").

It also provides the robust normalisation that makes gated scores
comparable across KPIs of wildly different magnitudes, the estimation of
a change's *start* index (used for detection-delay evaluation, section
4.4), and the level-shift vs. ramp classification of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import DetectedChange, as_float_array
from .robust import MAD_TO_SIGMA, median_and_mad

__all__ = [
    "PERSISTENCE_MINUTES",
    "robust_normalise",
    "robust_normalise_batch",
    "estimate_change_start",
    "classify_change",
    "ChangeDeclarationPolicy",
    "candidate_mask",
    "declare_changes",
    "confirm_candidate",
]

#: Minimum duration (in 1-minute bins) a deviation must persist before it
#: is declared a KPI change rather than a one-off event.
PERSISTENCE_MINUTES = 7


def robust_normalise(series: Sequence[float], baseline: Optional[int] = None,
                     epsilon: float = 1e-9,
                     stats: Optional[Tuple[float, float]] = None) -> np.ndarray:
    """Centre/scale a series by the median/MAD of its baseline prefix.

    ``(x - median) / (MAD_TO_SIGMA * MAD + epsilon)`` where the statistics
    are computed over the first ``baseline`` samples (the pre-change
    period), or the whole series when ``baseline`` is ``None``.  After this
    transform the Eq. 11 gate magnitudes are in robust-sigma units, so one
    fixed declaration threshold works for every KPI.

    Args:
        series: the KPI samples.
        baseline: length of the pre-change prefix the statistics cover.
        epsilon: scale regulariser for constant baselines.
        stats: precomputed ``(median, MAD)`` of the baseline prefix —
            pass the cached value (see
            :class:`repro.engine.cache.BaselineStatsCache`) to skip the
            recomputation; must equal what ``median_and_mad`` would
            return on the same prefix.
    """
    x = as_float_array(series)
    if x.size == 0:
        raise InsufficientDataError("cannot normalise an empty series")
    if baseline is None:
        baseline = x.size
    if not 1 <= baseline <= x.size:
        raise ParameterError(
            "baseline must be in [1, %d], got %d" % (x.size, baseline)
        )
    if stats is None:
        med, scale = median_and_mad(x[:baseline])
    else:
        med, scale = float(stats[0]), float(stats[1])
    return (x - med) / (MAD_TO_SIGMA * scale + epsilon)


def robust_normalise_batch(
    stacked: Sequence[Sequence[float]],
    baselines=None,
    epsilon: float = 1e-9,
    stats: Optional[Sequence[Optional[Tuple[float, float]]]] = None,
) -> np.ndarray:
    """:func:`robust_normalise` for a ``(n_series, T)`` stack at once.

    Row ``i`` of the result is bitwise what
    ``robust_normalise(stacked[i], baselines[i], epsilon, stats[i])``
    returns: the per-row medians/MADs partition exactly the same prefix
    samples (``np.median`` over an axis is row-independent) and the
    centre/scale transform broadcasts elementwise.

    Args:
        stacked: the ``(n_series, T)`` KPI stack.
        baselines: ``None`` (whole rows), one int shared by every row,
            or a per-row sequence of prefix lengths.
        epsilon: scale regulariser for constant baselines.
        stats: optional per-row ``(median, MAD)`` entries; rows whose
            entry is ``None`` compute their statistics from the prefix.
    """
    x = np.asarray(stacked, dtype=np.float64)
    if x.ndim != 2:
        raise ParameterError(
            "robust_normalise_batch needs a 2-D stack, got ndim=%d" % x.ndim)
    n_series, width = x.shape
    if width == 0:
        raise InsufficientDataError("cannot normalise empty series")
    if baselines is None:
        row_baselines = np.full(n_series, width, dtype=np.intp)
    else:
        row_baselines = np.asarray(baselines, dtype=np.intp)
        if row_baselines.ndim == 0:
            row_baselines = np.full(n_series, int(row_baselines),
                                    dtype=np.intp)
        elif row_baselines.shape != (n_series,):
            raise ParameterError(
                "baselines must be a scalar or one entry per row (%d), "
                "got shape %r" % (n_series, row_baselines.shape))
    if n_series and (row_baselines.min() < 1 or row_baselines.max() > width):
        raise ParameterError(
            "baselines must be in [1, %d], got %r"
            % (width, row_baselines.tolist()))

    meds = np.empty(n_series, dtype=np.float64)
    scales = np.empty(n_series, dtype=np.float64)
    todo = np.ones(n_series, dtype=bool)
    if stats is not None:
        if len(stats) != n_series:
            raise ParameterError(
                "stats must have one entry per row (%d), got %d"
                % (n_series, len(stats)))
        for i, entry in enumerate(stats):
            if entry is not None:
                meds[i] = float(entry[0])
                scales[i] = float(entry[1])
                todo[i] = False
    # Group the remaining rows by prefix length so each group is one
    # axis-median call over a rectangular block.
    for baseline in np.unique(row_baselines[todo]):
        rows = np.flatnonzero(todo & (row_baselines == baseline))
        prefix = x[rows, :baseline]
        med = np.median(prefix, axis=1)
        scale = np.median(np.abs(prefix - med[:, None]), axis=1)
        meds[rows] = med
        scales[rows] = scale
    return (x - meds[:, None]) / (MAD_TO_SIGMA * scales[:, None] + epsilon)


def estimate_change_start(series: Sequence[float], detected_at: int,
                          baseline: Optional[int] = None,
                          threshold_sigmas: float = 3.0) -> int:
    """Estimate the index at which a detected change actually started.

    Scans backwards from ``detected_at`` and returns the first index of the
    trailing run of samples that deviate from the pre-change baseline by
    more than ``threshold_sigmas`` robust sigmas.  If nothing qualifies
    (e.g. a slow ramp still inside the noise band), returns
    ``detected_at`` itself.

    Args:
        series: the KPI samples.
        detected_at: index at which the detector declared the change.
        baseline: number of leading samples that are definitely
            pre-change; defaults to ``detected_at``.
    """
    x = as_float_array(series)
    if not 0 <= detected_at < x.size:
        raise ParameterError(
            "detected_at=%d outside series of length %d"
            % (detected_at, x.size)
        )
    if baseline is None:
        baseline = detected_at
    baseline = max(1, min(baseline, detected_at)) or 1
    med, scale = median_and_mad(x[:baseline])
    band = threshold_sigmas * (MAD_TO_SIGMA * scale + 1e-9)
    start = detected_at
    for i in range(detected_at, -1, -1):
        if abs(x[i] - med) > band:
            start = i
        else:
            break
    return start


def _step_fit_sse(segment: np.ndarray) -> float:
    """Best single-step (level-shift) fit SSE over ``segment``."""
    n = segment.size
    best = float(np.sum((segment - segment.mean()) ** 2))
    cumsum = np.cumsum(segment)
    total = cumsum[-1]
    sq_total = float(np.sum(segment ** 2))
    for split in range(1, n):
        left_sum = cumsum[split - 1]
        right_sum = total - left_sum
        sse = (sq_total
               - left_sum ** 2 / split
               - right_sum ** 2 / (n - split))
        if sse < best:
            best = sse
    return max(best, 0.0)


def _ramp_fit_sse(segment: np.ndarray) -> float:
    """Least-squares linear (ramp) fit SSE over ``segment``."""
    n = segment.size
    t = np.arange(n, dtype=np.float64)
    design = np.column_stack([t, np.ones(n)])
    coef, _, _, _ = np.linalg.lstsq(design, segment, rcond=None)
    resid = segment - design @ coef
    return float(resid @ resid)


def classify_change(series: Sequence[float], start: int, detected_at: int,
                    context: int = 10) -> str:
    """Classify a change as ``"level_shift"`` or ``"ramp"`` (Fig. 2).

    Compares the best piecewise-constant (step) fit with the best linear
    fit over the change region plus ``context`` samples on each side.  A
    level shift is fit much better by the step; a gradual ramp by the
    line.  Ties (both fits comparable) default to ``"level_shift"``,
    matching the paper's observation that level shifts are the common
    case immediately after a software change.
    """
    x = as_float_array(series)
    lo = max(0, start - context)
    hi = min(x.size, detected_at + context + 1)
    segment = x[lo:hi]
    if segment.size < 4:
        return "level_shift"
    step_sse = _step_fit_sse(segment)
    ramp_sse = _ramp_fit_sse(segment)
    return "ramp" if ramp_sse < 0.8 * step_sse else "level_shift"


@dataclass(frozen=True)
class ChangeDeclarationPolicy:
    """How raw change scores become declared KPI changes.

    Attributes:
        score_threshold: gated-score level that arms a candidate change.
            With robustly normalised input (see :func:`robust_normalise`)
            the gate is in sigma-ish units.  Arming is deliberately
            sensitive — the median-persistence confirmation is the
            false-positive gatekeeper, so a low arming threshold costs
            little and keeps detection delay short.
        persistence: bins the deviation must persist (paper: 7 minutes).
        deviation_sigmas: how far (in robust sigmas of the pre-change
            baseline) the persisting samples must sit from the baseline
            median for the persistence check to count them.
    """

    score_threshold: float = 0.3
    persistence: int = PERSISTENCE_MINUTES
    deviation_sigmas: float = 3.0

    def __post_init__(self) -> None:
        if self.score_threshold <= 0:
            raise ParameterError("score_threshold must be positive")
        if self.persistence < 1:
            raise ParameterError("persistence must be >= 1 bin")
        if self.deviation_sigmas <= 0:
            raise ParameterError("deviation_sigmas must be positive")


def _prefix_median_mad(x: np.ndarray,
                       baselines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``median_and_mad(x[:b])`` for many prefix lengths ``b`` at once.

    Median and MAD are exact order statistics: sorting a NaN-padded
    prefix matrix and averaging the two middle order statistics yields
    bitwise the values ``np.median`` computes per prefix (``np.median``
    takes the mean of the two partitioned middles for even sizes and the
    single middle otherwise).  Requires finite samples — NaN padding is
    how shorter prefixes are encoded internally.
    """
    col = np.arange(x.size)
    mask = col[None, :] < baselines[:, None]
    rows = np.arange(baselines.size)
    lo = (baselines - 1) // 2
    hi = baselines // 2

    srt = np.sort(np.where(mask, x[None, :], np.nan), axis=1)
    meds = np.where(lo == hi, srt[rows, lo],
                    (srt[rows, lo] + srt[rows, hi]) / 2.0)
    sdev = np.sort(np.where(mask, np.abs(x[None, :] - meds[:, None]), np.nan),
                   axis=1)
    scales = np.where(lo == hi, sdev[rows, lo],
                      (sdev[rows, lo] + sdev[rows, hi]) / 2.0)
    return meds, scales


def _gating_table(x: np.ndarray, candidates: np.ndarray,
                  policy: ChangeDeclarationPolicy) -> Tuple[
                      np.ndarray, np.ndarray, np.ndarray]:
    """Per-candidate confirmation statistics, computed in bulk.

    For each armed candidate ``c`` the persistence rule consumes the
    baseline ``median_and_mad(x[:max(1, c)])`` and the persistence
    window's ``median(x[c:c+persistence])``.  The per-candidate path
    recomputes them one ``np.median`` call at a time — the dominant cost
    of the declaration scan.  This table computes all of them with two
    sorts and one axis-median, bitwise equal to the per-candidate calls
    (pinned in ``tests/core/test_scoring.py``).

    Returns ``(meds, scales, window_medians)`` aligned with
    ``candidates``; a window median is NaN when the window does not fit
    the series (the per-candidate path rejects such candidates).
    """
    meds, scales = _prefix_median_mad(x, np.maximum(candidates, 1))
    p = policy.persistence
    window_meds = np.full(candidates.size, np.nan)
    decidable = candidates + p <= x.size
    if np.any(decidable):
        windows = np.lib.stride_tricks.sliding_window_view(x, p)
        window_meds[decidable] = np.median(windows[candidates[decidable]],
                                           axis=1)
    return meds, scales, window_meds


def declare_changes(series: Sequence[float], scores: Sequence[float],
                    policy: Optional[ChangeDeclarationPolicy] = None,
                    first_only: bool = False,
                    lookahead: int = 0,
                    gating: str = "per_candidate") -> List[DetectedChange]:
    """Apply the persistence rule to a scored series.

    A candidate is armed at each index whose score exceeds the
    threshold.  The candidate becomes a declared change when the *median*
    of the ``persistence`` bins starting at it deviates from the
    pre-candidate baseline median by more than ``deviation_sigmas``
    robust sigmas — a median over the persistence window is what "lasting
    more than 7 minutes" means for a noisy series: a one-off spike or a
    sub-threshold wobble cannot move it, while a genuine level shift or
    ramp does even when individual bins dip back into the noise band.
    An unconfirmed candidate is simply skipped and scanning resumes.

    Args:
        series: the (normalised or raw) KPI samples.
        scores: per-sample change scores, same length as ``series``.
        policy: declaration thresholds; defaults are the paper's.
        first_only: stop after the first declared change (the online
            deployment mode — one alert per item is enough).
        lookahead: extra future samples the *score* at an index consumed
            (``2*omega - 2`` for the SST family).  In deployment the
            score at position ``t`` is only computable once those
            samples have arrived, so the declaration index — and hence
            the detection delay of section 4.4 — must account for them.
        gating: ``"per_candidate"`` runs :func:`confirm_candidate` per
            armed index (the reference path; what the streaming scan
            mirrors); ``"batched"`` precomputes every candidate's
            baseline/window statistics in one vectorised pass first —
            same declarations, bit for bit, minus the per-candidate
            ``np.median`` overhead that dominates the scan.  The batched
            detect stage uses it (finite samples required).

    Returns:
        Declared changes ordered by detection index, each carrying the
        estimated start index, classification and direction.
    """
    x = as_float_array(series)
    s = as_float_array(np.asarray(scores, dtype=np.float64), name="scores")
    if x.size != s.size:
        raise ParameterError(
            "series (%d) and scores (%d) lengths differ" % (x.size, s.size)
        )
    policy = policy or ChangeDeclarationPolicy()
    if lookahead < 0:
        raise ParameterError("lookahead must be >= 0")
    if gating not in ("per_candidate", "batched"):
        raise ParameterError(
            "gating must be 'per_candidate' or 'batched', got %r" % (gating,))
    changes: List[DetectedChange] = []
    # Candidate masking: only armed indices run the (Python-level)
    # persistence check — equivalent to scanning every index, since
    # sub-threshold scores were skipped by the scan loop anyway.
    candidates = np.flatnonzero(candidate_mask(s, policy))
    if gating == "batched":
        return _declare_from_table(x, s, candidates, policy, first_only,
                                   lookahead)
    resume = 0
    for t in candidates:
        if t < resume:
            continue
        declared = confirm_candidate(x, s, int(t), policy, lookahead)
        if declared is None:
            resume = t + 1
            continue
        changes.append(declared)
        if first_only:
            break
        # Resume scanning after the confirmed persistence window.
        resume = declared.index + 1
    return changes


def _declare_from_table(x: np.ndarray, s: np.ndarray,
                        candidates: np.ndarray,
                        policy: ChangeDeclarationPolicy,
                        first_only: bool,
                        lookahead: int) -> List[DetectedChange]:
    """The ``gating="batched"`` scan: :func:`confirm_candidate` semantics
    driven from a precomputed :func:`_gating_table`.

    Every branch mirrors ``confirm_candidate`` on the same floats, so
    the declared changes are bitwise those of the per-candidate path —
    only the start estimation and classification (confirmed candidates
    only, i.e. rarely) still run per candidate.
    """
    meds, scales, window_meds = _gating_table(x, candidates, policy)
    bands = policy.deviation_sigmas * (MAD_TO_SIGMA * scales + 1e-9)
    changes: List[DetectedChange] = []
    resume = 0
    for i, t in enumerate(candidates):
        t = int(t)
        if t < resume:
            continue
        resume = t + 1
        if t + policy.persistence > x.size:
            continue
        deviation = window_meds[i] - meds[i]
        if abs(deviation) <= bands[i]:
            continue
        detected_at = t + max(policy.persistence - 1, lookahead)
        if detected_at >= x.size:
            continue
        start = estimate_change_start(
            x, min(t + policy.persistence - 1, detected_at), baseline=t,
            threshold_sigmas=policy.deviation_sigmas,
        )
        declared = DetectedChange(
            index=detected_at,
            start_index=start,
            score=float(s[t:detected_at + 1].max()),
            kind=classify_change(x, start, detected_at),
            direction=1 if deviation > 0 else -1,
        )
        changes.append(declared)
        if first_only:
            break
        resume = declared.index + 1
    return changes


def candidate_mask(scores: Sequence[float],
                   policy: Optional[ChangeDeclarationPolicy] = None
                   ) -> np.ndarray:
    """Boolean mask of armed candidate indices (``score > threshold``).

    Accepts a 1-D score series or a 2-D ``(n_series, T)`` stack — the
    batched detect stage masks the whole score matrix at once and only
    rows with any armed index enter the per-item declaration scan.
    """
    s = np.asarray(scores, dtype=np.float64)
    policy = policy or ChangeDeclarationPolicy()
    return s > policy.score_threshold


def confirm_candidate(x: np.ndarray, scores: np.ndarray, candidate: int,
                      policy: ChangeDeclarationPolicy,
                      lookahead: int = 0) -> Optional[DetectedChange]:
    """Run the persistence check for a candidate armed at ``candidate``.

    Confirms when the median of ``x[candidate : candidate+persistence]``
    sits more than the deviation band away from the pre-candidate
    baseline median.  The change is declared at the wall-clock bin by
    which all consumed samples exist: the later of the persistence
    window's end and the scoring lookahead horizon — so FUNNEL's
    detection delay has the persistence threshold as its floor
    (paper section 4.4).

    This is the per-candidate core of :func:`declare_changes`, public so
    a streaming scan (:mod:`repro.live`) can apply the identical rule
    candidate-by-candidate on a growing prefix.
    """
    end = candidate + policy.persistence
    if end > x.size:
        return None
    baseline = max(1, candidate)
    med, scale = median_and_mad(x[:baseline])
    band = policy.deviation_sigmas * (MAD_TO_SIGMA * scale + 1e-9)

    window_median = float(np.median(x[candidate:end]))
    deviation = window_median - med
    if abs(deviation) <= band:
        return None
    detected_at = candidate + max(policy.persistence - 1, lookahead)
    if detected_at >= x.size:
        return None
    start = estimate_change_start(
        x, min(end - 1, detected_at), baseline=candidate,
        threshold_sigmas=policy.deviation_sigmas,
    )
    kind = classify_change(x, start, detected_at)
    return DetectedChange(
        index=detected_at,
        start_index=start,
        score=float(scores[candidate:detected_at + 1].max()),
        kind=kind,
        direction=1 if deviation > 0 else -1,
    )
