"""Change-score post-processing: from scores to declared KPI changes.

The transforms in :mod:`repro.core.rsst` / :mod:`repro.core.ika` output a
per-sample change score.  This module turns scores into the paper's
notion of a *KPI change* (section 2.3): a non-transient behaviour change —
a level shift or a ramp up/down — declared only after it persists for at
least :data:`PERSISTENCE_MINUTES` time-bins (section 4.1: "we set a
threshold of 7 minutes in FUNNEL to declare a change in a time series as
a level-shift or ramp-up/down rather than a one-off event").

It also provides the robust normalisation that makes gated scores
comparable across KPIs of wildly different magnitudes, the estimation of
a change's *start* index (used for detection-delay evaluation, section
4.4), and the level-shift vs. ramp classification of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import DetectedChange, as_float_array
from .robust import MAD_TO_SIGMA, median_and_mad

__all__ = [
    "PERSISTENCE_MINUTES",
    "robust_normalise",
    "estimate_change_start",
    "classify_change",
    "ChangeDeclarationPolicy",
    "declare_changes",
    "confirm_candidate",
]

#: Minimum duration (in 1-minute bins) a deviation must persist before it
#: is declared a KPI change rather than a one-off event.
PERSISTENCE_MINUTES = 7


def robust_normalise(series: Sequence[float], baseline: Optional[int] = None,
                     epsilon: float = 1e-9,
                     stats: Optional[Tuple[float, float]] = None) -> np.ndarray:
    """Centre/scale a series by the median/MAD of its baseline prefix.

    ``(x - median) / (MAD_TO_SIGMA * MAD + epsilon)`` where the statistics
    are computed over the first ``baseline`` samples (the pre-change
    period), or the whole series when ``baseline`` is ``None``.  After this
    transform the Eq. 11 gate magnitudes are in robust-sigma units, so one
    fixed declaration threshold works for every KPI.

    Args:
        series: the KPI samples.
        baseline: length of the pre-change prefix the statistics cover.
        epsilon: scale regulariser for constant baselines.
        stats: precomputed ``(median, MAD)`` of the baseline prefix —
            pass the cached value (see
            :class:`repro.engine.cache.BaselineStatsCache`) to skip the
            recomputation; must equal what ``median_and_mad`` would
            return on the same prefix.
    """
    x = as_float_array(series)
    if x.size == 0:
        raise InsufficientDataError("cannot normalise an empty series")
    if baseline is None:
        baseline = x.size
    if not 1 <= baseline <= x.size:
        raise ParameterError(
            "baseline must be in [1, %d], got %d" % (x.size, baseline)
        )
    if stats is None:
        med, scale = median_and_mad(x[:baseline])
    else:
        med, scale = float(stats[0]), float(stats[1])
    return (x - med) / (MAD_TO_SIGMA * scale + epsilon)


def estimate_change_start(series: Sequence[float], detected_at: int,
                          baseline: Optional[int] = None,
                          threshold_sigmas: float = 3.0) -> int:
    """Estimate the index at which a detected change actually started.

    Scans backwards from ``detected_at`` and returns the first index of the
    trailing run of samples that deviate from the pre-change baseline by
    more than ``threshold_sigmas`` robust sigmas.  If nothing qualifies
    (e.g. a slow ramp still inside the noise band), returns
    ``detected_at`` itself.

    Args:
        series: the KPI samples.
        detected_at: index at which the detector declared the change.
        baseline: number of leading samples that are definitely
            pre-change; defaults to ``detected_at``.
    """
    x = as_float_array(series)
    if not 0 <= detected_at < x.size:
        raise ParameterError(
            "detected_at=%d outside series of length %d"
            % (detected_at, x.size)
        )
    if baseline is None:
        baseline = detected_at
    baseline = max(1, min(baseline, detected_at)) or 1
    med, scale = median_and_mad(x[:baseline])
    band = threshold_sigmas * (MAD_TO_SIGMA * scale + 1e-9)
    start = detected_at
    for i in range(detected_at, -1, -1):
        if abs(x[i] - med) > band:
            start = i
        else:
            break
    return start


def _step_fit_sse(segment: np.ndarray) -> float:
    """Best single-step (level-shift) fit SSE over ``segment``."""
    n = segment.size
    best = float(np.sum((segment - segment.mean()) ** 2))
    cumsum = np.cumsum(segment)
    total = cumsum[-1]
    sq_total = float(np.sum(segment ** 2))
    for split in range(1, n):
        left_sum = cumsum[split - 1]
        right_sum = total - left_sum
        sse = (sq_total
               - left_sum ** 2 / split
               - right_sum ** 2 / (n - split))
        if sse < best:
            best = sse
    return max(best, 0.0)


def _ramp_fit_sse(segment: np.ndarray) -> float:
    """Least-squares linear (ramp) fit SSE over ``segment``."""
    n = segment.size
    t = np.arange(n, dtype=np.float64)
    design = np.column_stack([t, np.ones(n)])
    coef, _, _, _ = np.linalg.lstsq(design, segment, rcond=None)
    resid = segment - design @ coef
    return float(resid @ resid)


def classify_change(series: Sequence[float], start: int, detected_at: int,
                    context: int = 10) -> str:
    """Classify a change as ``"level_shift"`` or ``"ramp"`` (Fig. 2).

    Compares the best piecewise-constant (step) fit with the best linear
    fit over the change region plus ``context`` samples on each side.  A
    level shift is fit much better by the step; a gradual ramp by the
    line.  Ties (both fits comparable) default to ``"level_shift"``,
    matching the paper's observation that level shifts are the common
    case immediately after a software change.
    """
    x = as_float_array(series)
    lo = max(0, start - context)
    hi = min(x.size, detected_at + context + 1)
    segment = x[lo:hi]
    if segment.size < 4:
        return "level_shift"
    step_sse = _step_fit_sse(segment)
    ramp_sse = _ramp_fit_sse(segment)
    return "ramp" if ramp_sse < 0.8 * step_sse else "level_shift"


@dataclass(frozen=True)
class ChangeDeclarationPolicy:
    """How raw change scores become declared KPI changes.

    Attributes:
        score_threshold: gated-score level that arms a candidate change.
            With robustly normalised input (see :func:`robust_normalise`)
            the gate is in sigma-ish units.  Arming is deliberately
            sensitive — the median-persistence confirmation is the
            false-positive gatekeeper, so a low arming threshold costs
            little and keeps detection delay short.
        persistence: bins the deviation must persist (paper: 7 minutes).
        deviation_sigmas: how far (in robust sigmas of the pre-change
            baseline) the persisting samples must sit from the baseline
            median for the persistence check to count them.
    """

    score_threshold: float = 0.3
    persistence: int = PERSISTENCE_MINUTES
    deviation_sigmas: float = 3.0

    def __post_init__(self) -> None:
        if self.score_threshold <= 0:
            raise ParameterError("score_threshold must be positive")
        if self.persistence < 1:
            raise ParameterError("persistence must be >= 1 bin")
        if self.deviation_sigmas <= 0:
            raise ParameterError("deviation_sigmas must be positive")


def declare_changes(series: Sequence[float], scores: Sequence[float],
                    policy: Optional[ChangeDeclarationPolicy] = None,
                    first_only: bool = False,
                    lookahead: int = 0) -> List[DetectedChange]:
    """Apply the persistence rule to a scored series.

    A candidate is armed at each index whose score exceeds the
    threshold.  The candidate becomes a declared change when the *median*
    of the ``persistence`` bins starting at it deviates from the
    pre-candidate baseline median by more than ``deviation_sigmas``
    robust sigmas — a median over the persistence window is what "lasting
    more than 7 minutes" means for a noisy series: a one-off spike or a
    sub-threshold wobble cannot move it, while a genuine level shift or
    ramp does even when individual bins dip back into the noise band.
    An unconfirmed candidate is simply skipped and scanning resumes.

    Args:
        series: the (normalised or raw) KPI samples.
        scores: per-sample change scores, same length as ``series``.
        policy: declaration thresholds; defaults are the paper's.
        first_only: stop after the first declared change (the online
            deployment mode — one alert per item is enough).
        lookahead: extra future samples the *score* at an index consumed
            (``2*omega - 2`` for the SST family).  In deployment the
            score at position ``t`` is only computable once those
            samples have arrived, so the declaration index — and hence
            the detection delay of section 4.4 — must account for them.

    Returns:
        Declared changes ordered by detection index, each carrying the
        estimated start index, classification and direction.
    """
    x = as_float_array(series)
    s = as_float_array(np.asarray(scores, dtype=np.float64), name="scores")
    if x.size != s.size:
        raise ParameterError(
            "series (%d) and scores (%d) lengths differ" % (x.size, s.size)
        )
    policy = policy or ChangeDeclarationPolicy()
    if lookahead < 0:
        raise ParameterError("lookahead must be >= 0")
    changes: List[DetectedChange] = []
    t = 0
    n = x.size
    while t < n:
        if s[t] <= policy.score_threshold:
            t += 1
            continue
        declared = confirm_candidate(x, s, t, policy, lookahead)
        if declared is None:
            t += 1
            continue
        changes.append(declared)
        if first_only:
            break
        # Resume scanning after the confirmed persistence window.
        t = declared.index + 1
    return changes


def confirm_candidate(x: np.ndarray, scores: np.ndarray, candidate: int,
                      policy: ChangeDeclarationPolicy,
                      lookahead: int = 0) -> Optional[DetectedChange]:
    """Run the persistence check for a candidate armed at ``candidate``.

    Confirms when the median of ``x[candidate : candidate+persistence]``
    sits more than the deviation band away from the pre-candidate
    baseline median.  The change is declared at the wall-clock bin by
    which all consumed samples exist: the later of the persistence
    window's end and the scoring lookahead horizon — so FUNNEL's
    detection delay has the persistence threshold as its floor
    (paper section 4.4).

    This is the per-candidate core of :func:`declare_changes`, public so
    a streaming scan (:mod:`repro.live`) can apply the identical rule
    candidate-by-candidate on a growing prefix.
    """
    end = candidate + policy.persistence
    if end > x.size:
        return None
    baseline = max(1, candidate)
    med, scale = median_and_mad(x[:baseline])
    band = policy.deviation_sigmas * (MAD_TO_SIGMA * scale + 1e-9)

    window_median = float(np.median(x[candidate:end]))
    deviation = window_median - med
    if abs(deviation) <= band:
        return None
    detected_at = candidate + max(policy.persistence - 1, lookahead)
    if detected_at >= x.size:
        return None
    start = estimate_change_start(
        x, min(end - 1, detected_at), baseline=candidate,
        threshold_sigmas=policy.deviation_sigmas,
    )
    kind = classify_change(x, start, detected_at)
    return DetectedChange(
        index=detected_at,
        start_index=start,
        score=float(scores[candidate:detected_at + 1].max()),
        kind=kind,
        direction=1 if deviation > 0 else -1,
    )
