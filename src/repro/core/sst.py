"""Classic Singular Spectrum Transform (paper section 3.2.1).

SST scores each point ``t`` of a time series by the discordance between

* the ``eta``-dimensional dominant subspace ``U_eta`` of the *past* Hankel
  matrix ``B(t)`` (Eq. 1-2), and
* the direction ``beta(t)`` of maximum change in the *future* Hankel matrix
  ``A(t)`` (Eq. 3-5),

via ``x_s(t) = 1 - ||U_eta^T beta||`` (Eq. 6-7): when the dynamics do not
change, the dominant future direction lies (almost) inside the past
subspace and the score is near zero; a behaviour change rotates the future
direction out of the subspace and the score approaches one.

This module is the exact SVD reference implementation.  The production
fast path lives in :mod:`repro.core.ika`; the robustness improvements in
:mod:`repro.core.rsst`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import as_float_array
from .hankel import future_matrix, past_matrix

__all__ = ["SSTParams", "SingularSpectrumTransform", "sst_scores"]


@dataclass(frozen=True)
class SSTParams:
    """The five SST parameters of paper section 3.2.1.

    Attributes:
        omega: lag-window length ``w`` (rows of the Hankel matrices).
        delta: number of past windows (columns of ``B``).
        gamma: number of future windows (columns of ``A``); the paper's
            robustness recipe fixes ``gamma = delta``.
        rho: start offset of the future windows; the paper fixes ``rho = 0``.
        eta: dimension of the past subspace; the paper fixes ``eta = 3``
            (suitable "even when omega is on the order of 100").
    """

    omega: int = 9
    delta: int = 9
    gamma: int = 9
    rho: int = 0
    eta: int = 3

    def __post_init__(self) -> None:
        if self.omega < 2:
            raise ParameterError("omega must be >= 2, got %d" % self.omega)
        if self.delta < 1 or self.gamma < 1:
            raise ParameterError("delta and gamma must be >= 1")
        if self.rho < 0:
            raise ParameterError("rho must be >= 0, got %d" % self.rho)
        if not 1 <= self.eta <= self.omega:
            raise ParameterError(
                "eta must be in [1, omega]=[1, %d], got %d"
                % (self.omega, self.eta)
            )

    @classmethod
    def paper_defaults(cls, omega: int = 9) -> "SSTParams":
        """Parameters per section 3.2.2: rho=0, gamma=delta=omega, eta=3."""
        return cls(omega=omega, delta=omega, gamma=omega, rho=0,
                   eta=min(3, omega))

    @property
    def lead(self) -> int:
        """Samples required before the evaluated point."""
        return self.omega + self.delta - 1

    @property
    def lookahead(self) -> int:
        """Samples required at and after the evaluated point."""
        return self.rho + self.omega + self.gamma - 1

    @property
    def window_length(self) -> int:
        """Total sliding-window length ``W = lead + lookahead``.

        With the paper's evaluation setting ``omega = 9`` this is
        ``W = 34``, matching ``W_FUNNEL = 34`` in section 4.1.
        """
        return self.lead + self.lookahead

    def first_index(self) -> int:
        """Smallest series index at which a score can be computed."""
        return self.lead

    def last_index(self, n: int) -> int:
        """One past the largest scoreable index for a length-``n`` series."""
        return n - self.lookahead + 1


class SingularSpectrumTransform:
    """Exact-SVD SST change-score computer.

    Example:
        >>> import numpy as np
        >>> x = np.r_[np.zeros(60), np.ones(60)]
        >>> sst = SingularSpectrumTransform(SSTParams.paper_defaults())
        >>> scores = sst.scores(x)
        >>> bool(scores[43:70].max() > 0.5)   # elevated around the step
        True
    """

    def __init__(self, params: Optional[SSTParams] = None) -> None:
        self.params = params or SSTParams.paper_defaults()

    def past_subspace(self, series: Sequence[float], t: int) -> np.ndarray:
        """``U_eta(t)``: top ``eta`` left singular vectors of ``B(t)``."""
        p = self.params
        b = past_matrix(series, t, p.omega, p.delta)
        u, _, _ = np.linalg.svd(b, full_matrices=False)
        return u[:, :p.eta]

    def future_direction(self, series: Sequence[float], t: int) -> np.ndarray:
        """``beta(t)``: dominant left singular vector of ``A(t)`` (Eq. 4-5)."""
        p = self.params
        a = future_matrix(series, t, p.omega, p.gamma, lag=p.rho)
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        return u[:, 0]

    def score_at(self, series: Sequence[float], t: int) -> float:
        """The SST change score ``x_s(t)`` of Eq. 7 at a single index."""
        u_eta = self.past_subspace(series, t)
        beta = self.future_direction(series, t)
        proj = u_eta.T @ beta
        # Eq. 6-7 reduce to 1 - ||U_eta^T beta|| since U_eta has orthonormal
        # columns; clip tiny negative round-off.
        return float(max(0.0, 1.0 - np.linalg.norm(proj)))

    def scores(self, series: Sequence[float]) -> np.ndarray:
        """Change scores for every scoreable index of ``series``.

        The result has the same length as ``series``; indices whose
        past/future embedding does not fit hold ``0.0``.
        """
        x = as_float_array(series)
        p = self.params
        lo, hi = p.first_index(), p.last_index(x.size)
        if hi <= lo:
            raise InsufficientDataError(
                "series of length %d is shorter than the SST window %d"
                % (x.size, p.window_length)
            )
        out = np.zeros(x.size, dtype=np.float64)
        for t in range(lo, hi):
            out[t] = self.score_at(x, t)
        return out


def sst_scores(series: Sequence[float], omega: int = 9) -> np.ndarray:
    """Convenience wrapper: classic SST scores with paper defaults."""
    return SingularSpectrumTransform(SSTParams.paper_defaults(omega)).scores(series)
