"""Online (streaming) FUNNEL assessment.

The offline entry points (:meth:`repro.core.funnel.Funnel.assess`) take a
complete series.  In deployment FUNNEL is fed one 1-minute bin at a time
by the metric store's subscription push (paper section 2.2: "Within one
second, the measurements subscribed by FUNNEL are pushed to FUNNEL"), and
must raise its verdict the moment enough samples exist — this module is
that mode.

:class:`StreamingDetector` keeps a bounded ring of recent samples per
KPI, re-scores only the suffix a new sample can affect, and applies the
same declaration policy as the offline path, so its declarations are
*identical* to the offline detector's (an invariant the test suite pins):
the batched scorer is a pure function of the window, and a declaration at
index ``i`` consumes samples through ``i`` only.

:class:`StreamingAssessor` stacks the DiD attribution on top: it consumes
treated and control samples in lock-step and emits an
:class:`~repro.types.Assessment` when a declaration fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import Assessment, DetectedChange, Verdict
from .did import DiDEstimator, DiDPanel
from .funnel import FunnelConfig
from .ika import IkaSST
from .scoring import declare_changes, robust_normalise

__all__ = ["StreamingDetector", "StreamingAssessor"]


class StreamingDetector:
    """Incremental change detection over one KPI stream.

    Example:
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> detector = StreamingDetector(change_index=100)
        >>> x = 50 + rng.normal(0, 0.5, 300)
        >>> x[100:] += 5.0
        >>> hits = [i for i, v in enumerate(x) if detector.push(v)]
        >>> 100 < hits[0] < 140
        True
    """

    def __init__(self, change_index: int, config: Optional[FunnelConfig] = None,
                 max_history: int = 4096) -> None:
        """Args:
            change_index: stream position of the software change; only
                behaviour changes starting at/after it are declared.
            config: FUNNEL parameters (omega, policy...).
            max_history: sample cap; older samples are discarded but the
                indices reported stay absolute stream positions.
        """
        if change_index < 0:
            raise ParameterError("change_index must be >= 0")
        self.config = config or FunnelConfig()
        self.scorer = IkaSST(self.config.sst)
        self.change_index = change_index
        if max_history < self.config.sst.window_length * 2:
            raise ParameterError(
                "max_history must cover at least two windows (%d)"
                % (self.config.sst.window_length * 2)
            )
        self.max_history = max_history
        self._values: List[float] = []
        self._offset = 0          # absolute index of _values[0]
        self._declared: List[DetectedChange] = []

    # -- stream state -----------------------------------------------------------

    @property
    def position(self) -> int:
        """Absolute index of the next sample to be pushed."""
        return self._offset + len(self._values)

    @property
    def declared(self) -> List[DetectedChange]:
        """All declarations so far (absolute indices)."""
        return list(self._declared)

    def push(self, value: float) -> Optional[DetectedChange]:
        """Feed one sample; returns a change iff one is declared *now*.

        A declaration is returned exactly once, at the first push that
        makes it confirmable (its wall-clock declaration index).
        """
        value = float(value)
        if not np.isfinite(value):
            raise ParameterError("stream values must be finite")
        self._values.append(value)
        if len(self._values) > self.max_history:
            drop = len(self._values) - self.max_history
            del self._values[:drop]
            self._offset += drop
        return self._evaluate()

    def extend(self, values: Sequence[float]) -> List[DetectedChange]:
        """Push many samples; returns every change declared on the way."""
        out = []
        for value in values:
            hit = self.push(value)
            if hit is not None:
                out.append(hit)
        return out

    # -- internals ------------------------------------------------------------

    def _evaluate(self) -> Optional[DetectedChange]:
        n = len(self._values)
        if n < self.config.sst.window_length:
            return None
        local_change = self.change_index - self._offset
        baseline = max(1, min(local_change, n)) if local_change > 0 else 1
        x = np.asarray(self._values)
        normalised = robust_normalise(x, baseline=baseline)
        scores = self.scorer.scores(normalised)
        declared = declare_changes(
            normalised, scores, self.config.policy,
            lookahead=self.config.sst.lookahead - 1,
        )
        last_seen = (self._declared[-1].index if self._declared
                     else self.change_index - 1)
        for change in declared:
            absolute = DetectedChange(
                index=change.index + self._offset,
                start_index=change.start_index + self._offset,
                score=change.score,
                kind=change.kind,
                direction=change.direction,
            )
            if absolute.start_index < self.change_index - 1:
                continue
            if absolute.index <= last_seen:
                continue
            # Only report when the declaration lands on *this* push —
            # i.e. the current sample completed its evidence.
            if absolute.index == self.position - 1:
                self._declared.append(absolute)
                return absolute
        return None


@dataclass
class StreamingAssessor:
    """Online detection + DiD attribution over treated/control streams.

    Feed one bin per unit per tick with :meth:`push`; when the treated
    aggregate declares a change, the assessor immediately runs the DiD
    comparison over the data received so far and emits the assessment.
    """

    change_index: int
    config: FunnelConfig = field(default_factory=FunnelConfig)

    def __post_init__(self) -> None:
        self._detector = StreamingDetector(self.change_index, self.config)
        self._treated: List[np.ndarray] = []
        self._control: List[np.ndarray] = []
        self._estimator = DiDEstimator()
        self.assessment: Optional[Assessment] = None

    @property
    def position(self) -> int:
        return self._detector.position

    def push(self, treated: Sequence[float],
             control: Sequence[float] = ()) -> Optional[Assessment]:
        """Feed one tick of per-unit samples.

        Args:
            treated: current bin's value for each treated unit.
            control: current bin's value for each control unit (may be
                empty under Full Launching — attribution then reports
                the change without exclusion, as offline does).

        Returns:
            The assessment, on the tick its detection is declared.
        """
        treated = np.asarray(treated, dtype=np.float64).ravel()
        control = np.asarray(control, dtype=np.float64).ravel()
        if treated.size == 0:
            raise ParameterError("each tick needs at least 1 treated value")
        if self._treated and treated.size != self._treated[0].size:
            raise ParameterError("treated unit count changed mid-stream")
        if self._control and control.size != self._control[0].size:
            raise ParameterError("control unit count changed mid-stream")
        self._treated.append(treated)
        self._control.append(control)

        change = self._detector.push(float(treated.mean()))
        if change is None or self.assessment is not None:
            return None
        self.assessment = self._attribute(change)
        return self.assessment

    def _attribute(self, change: DetectedChange) -> Assessment:
        treated = np.asarray(self._treated).T        # (units, bins)
        control = np.asarray(self._control).T
        if control.size == 0:
            return Assessment(
                verdict=Verdict.CAUSED_BY_CHANGE, change=change,
                notes=("no control group available; other factors were "
                       "not excluded",),
            )
        w = self.config.effective_did_window
        pre_lo = max(0, self.change_index - w)
        post_hi = min(treated.shape[1], change.index + 1)
        post_lo = max(self.change_index, post_hi - w)
        if post_lo >= post_hi or pre_lo >= self.change_index:
            raise InsufficientDataError(
                "declaration at %d leaves no DiD windows" % change.index
            )
        panel = DiDPanel(
            treated_pre=treated[:, pre_lo:self.change_index],
            treated_post=treated[:, post_lo:post_hi],
            control_pre=control[:, pre_lo:self.change_index],
            control_post=control[:, post_lo:post_hi],
        )
        result = self._estimator.fit(panel)
        caused = result.significant(self.config.did_threshold,
                                    self.config.did_p_value)
        if caused and change.direction and result.normalised_alpha:
            caused = ((change.direction > 0)
                      == (result.normalised_alpha > 0))
        return Assessment(
            verdict=(Verdict.CAUSED_BY_CHANGE if caused
                     else Verdict.OTHER_REASONS),
            change=change,
            did_estimate=result.normalised_alpha,
            control="peers",
        )
