"""Online (streaming) FUNNEL assessment.

The offline entry points (:meth:`repro.core.funnel.Funnel.assess`) take a
complete series.  In deployment FUNNEL is fed one 1-minute bin at a time
by the metric store's subscription push (paper section 2.2: "Within one
second, the measurements subscribed by FUNNEL are pushed to FUNNEL"), and
must raise its verdict the moment enough samples exist — this module is
that mode.

:class:`StreamingDetector` keeps a bounded ring of recent samples per
KPI, re-scores only the suffix a new sample can affect, and applies the
same declaration policy as the offline path, so its declarations are
*identical* to the offline detector's (an invariant the test suite pins):
the batched scorer is a pure function of the window, and a declaration at
index ``i`` consumes samples through ``i`` only.

:class:`StreamingAssessor` stacks the DiD attribution on top: it consumes
treated and control samples in lock-step and emits an
:class:`~repro.types.Assessment` when a declaration fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import InsufficientDataError, ParameterError
from ..types import Assessment, DetectedChange, Verdict
from .did import DiDEstimator, DiDPanel
from .funnel import FunnelConfig
from .ika import IkaSST
from .robust import MAD_TO_SIGMA, median_and_mad
from .scoring import confirm_candidate, robust_normalise

__all__ = ["StreamingDetector", "StreamingAssessor"]


class StreamingDetector:
    """Incremental change detection over one KPI stream.

    Example:
        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> detector = StreamingDetector(change_index=100)
        >>> x = 50 + rng.normal(0, 0.5, 300)
        >>> x[100:] += 5.0
        >>> hits = [i for i, v in enumerate(x) if detector.push(v)]
        >>> 100 < hits[0] < 140
        True
    """

    def __init__(self, change_index: int, config: Optional[FunnelConfig] = None,
                 max_history: int = 4096) -> None:
        """Args:
            change_index: stream position of the software change; only
                behaviour changes starting at/after it are declared.
            config: FUNNEL parameters (omega, policy...).
            max_history: sample cap; older samples are discarded but the
                indices reported stay absolute stream positions.
        """
        if change_index < 0:
            raise ParameterError("change_index must be >= 0")
        self.config = config or FunnelConfig()
        self.scorer = IkaSST(self.config.sst)
        self.change_index = change_index
        if max_history < self.config.sst.window_length * 2:
            raise ParameterError(
                "max_history must cover at least two windows (%d)"
                % (self.config.sst.window_length * 2)
            )
        self.max_history = max_history
        self._values: List[float] = []
        self._offset = 0          # absolute index of _values[0]
        self._declared: List[DetectedChange] = []
        # Suffix-rescore cache: the normalised series and its scores are
        # append-only once the baseline statistics freeze (the baseline
        # prefix is complete and the ring has not trimmed), so a push
        # appends one normalised sample and scores only the one new
        # index instead of re-running the scorer over the whole buffer.
        self._norm_buf = np.zeros(0, dtype=np.float64)
        self._score_buf = np.zeros(0, dtype=np.float64)
        self._cache_n = 0               # samples the buffers cover
        self._cache_key: Optional[tuple] = None   # (baseline, offset)
        self._cache_stats = (0.0, 1.0)  # (median, denominator)
        self._next_score_t = 0          # first not-yet-scored index
        self._scan_t = 0                # first unresolved candidate index

    # -- stream state -----------------------------------------------------------

    @property
    def position(self) -> int:
        """Absolute index of the next sample to be pushed."""
        return self._offset + len(self._values)

    @property
    def declared(self) -> List[DetectedChange]:
        """All declarations so far (absolute indices)."""
        return list(self._declared)

    def push(self, value: float) -> Optional[DetectedChange]:
        """Feed one sample; returns a change iff one is declared *now*.

        A declaration is returned exactly once, at the first push that
        makes it confirmable (its wall-clock declaration index).
        """
        value = float(value)
        if not np.isfinite(value):
            raise ParameterError("stream values must be finite")
        self._values.append(value)
        if len(self._values) > self.max_history:
            drop = len(self._values) - self.max_history
            del self._values[:drop]
            self._offset += drop
        return self._evaluate()

    def extend(self, values: Sequence[float]) -> List[DetectedChange]:
        """Push many samples; returns every change declared on the way."""
        out = []
        for value in values:
            hit = self.push(value)
            if hit is not None:
                out.append(hit)
        return out

    # -- internals ------------------------------------------------------------

    def _evaluate(self) -> Optional[DetectedChange]:
        n = len(self._values)
        if n < self.config.sst.window_length:
            return None
        local_change = self.change_index - self._offset
        baseline = max(1, min(local_change, n)) if local_change > 0 else 1
        normalised, scores = self._refresh(n, baseline)
        return self._scan(normalised, scores, n)

    def _scan(self, normalised: np.ndarray, scores: np.ndarray,
              n: int) -> Optional[DetectedChange]:
        """Resolve armed candidates left of the scoring frontier.

        Replays the policy scan :func:`declare_changes` runs over the
        whole series, but from a persistent cursor: every candidate left
        of it is already resolved (confirmed, rejected, or consumed by a
        declaration) on data that cannot change, so only the unresolved
        tail is examined per push.  A candidate whose persistence-plus-
        declaration window does not fit yet parks the cursor — windows
        are monotone, so everything past it is undecidable too, exactly
        the candidates the full scan would reject and retry next push.
        The cursor resets whenever :meth:`_refresh` rebuilds.
        """
        policy = self.config.policy
        lookahead = self.config.sst.lookahead - 1
        detect_offset = max(policy.persistence - 1, lookahead)
        pad = max(policy.persistence, detect_offset + 1)
        limit = self._next_score_t      # scores past it are not final
        last_seen = (self._declared[-1].index if self._declared
                     else self.change_index - 1)
        t = self._scan_t
        while True:
            armed = np.flatnonzero(
                scores[t:limit] > policy.score_threshold)
            if armed.size == 0:
                # A declaration can park the cursor past the scoring
                # frontier (its index consumes unscored candidates);
                # never pull it back over consumed ground.
                self._scan_t = max(t, limit)
                return None
            candidate = int(armed[0]) + t
            if candidate + pad > n:
                self._scan_t = candidate
                return None
            change = confirm_candidate(normalised, scores, candidate,
                                       policy, lookahead=lookahead)
            if change is None:
                t = self._scan_t = candidate + 1
                continue
            # Confirmed: the full scan resumes after the declaration
            # index whether or not the streaming filters report it.
            t = self._scan_t = change.index + 1
            absolute = DetectedChange(
                index=change.index + self._offset,
                start_index=change.start_index + self._offset,
                score=change.score,
                kind=change.kind,
                direction=change.direction,
            )
            if absolute.start_index < self.change_index - 1:
                continue
            if absolute.index <= last_seen:
                continue
            # Only report when the declaration lands on *this* push —
            # i.e. the current sample completed its evidence.
            if absolute.index == self.position - 1:
                self._declared.append(absolute)
                return absolute

    def _refresh(self, n: int, baseline: int) -> tuple:
        """The normalised series and its scores, suffix-rescored.

        While the baseline prefix is still growing (or the ring trims,
        shifting it), the statistics change with every push and both
        arrays are rebuilt in full — bitwise what the one-shot transform
        produces.  Once ``(baseline, offset)`` is stable the cached
        arrays are extended in place: the new samples are centred and
        scaled with the frozen statistics (elementwise, so identical to
        the full transform) and only the indices whose scoring window
        just completed go through the scorer, on the same
        ``[t - span, t + span)`` segment the full pass would consume.
        """
        span = self.config.sst.lead
        key = (baseline, self._offset)
        if key != self._cache_key or n < self._cache_n:
            x = np.asarray(self._values)
            normalised = robust_normalise(x, baseline=baseline)
            capacity = max(256, 2 * n)
            self._norm_buf = np.zeros(capacity, dtype=np.float64)
            self._score_buf = np.zeros(capacity, dtype=np.float64)
            self._norm_buf[:n] = normalised
            self._score_buf[:n] = self.scorer.scores(normalised)
            med, scale = median_and_mad(x[:baseline])
            self._cache_stats = (med, MAD_TO_SIGMA * scale + 1e-9)
            self._cache_key = key
            self._cache_n = n
            self._next_score_t = n - span + 1
            self._scan_t = 0
            return self._norm_buf[:n], self._score_buf[:n]
        if n > self._norm_buf.size:
            capacity = max(2 * n, 256)
            grown_norm = np.zeros(capacity, dtype=np.float64)
            grown_norm[:self._cache_n] = self._norm_buf[:self._cache_n]
            self._norm_buf = grown_norm
            grown_scores = np.zeros(capacity, dtype=np.float64)
            grown_scores[:self._cache_n] = self._score_buf[:self._cache_n]
            self._score_buf = grown_scores
        old_n = self._cache_n
        med, denom = self._cache_stats
        fresh = np.asarray(self._values[old_n:n], dtype=np.float64)
        self._norm_buf[old_n:n] = (fresh - med) / denom
        self._score_buf[old_n:n] = 0.0
        self._cache_n = n
        t_hi = n - span          # inclusive: last index whose window fits
        t_lo = self._next_score_t
        if t_hi >= t_lo:
            segment = self._norm_buf[t_lo - span:t_hi + span]
            segment_scores = self.scorer.scores(segment)
            self._score_buf[t_lo:t_hi + 1] = \
                segment_scores[span:span + (t_hi - t_lo + 1)]
            self._next_score_t = t_hi + 1
        return self._norm_buf[:n], self._score_buf[:n]


@dataclass
class StreamingAssessor:
    """Online detection + DiD attribution over treated/control streams.

    Feed one bin per unit per tick with :meth:`push`; when the treated
    aggregate declares a change, the assessor immediately runs the DiD
    comparison over the data received so far and emits the assessment.
    """

    change_index: int
    config: FunnelConfig = field(default_factory=FunnelConfig)

    def __post_init__(self) -> None:
        self._detector = StreamingDetector(self.change_index, self.config)
        self._treated: List[np.ndarray] = []
        self._control: List[np.ndarray] = []
        self._estimator = DiDEstimator()
        self.assessment: Optional[Assessment] = None

    @property
    def position(self) -> int:
        return self._detector.position

    def push(self, treated: Sequence[float],
             control: Sequence[float] = ()) -> Optional[Assessment]:
        """Feed one tick of per-unit samples.

        Args:
            treated: current bin's value for each treated unit.
            control: current bin's value for each control unit (may be
                empty under Full Launching — attribution then reports
                the change without exclusion, as offline does).

        Returns:
            The assessment, on the tick its detection is declared.
        """
        treated = np.asarray(treated, dtype=np.float64).ravel()
        control = np.asarray(control, dtype=np.float64).ravel()
        if treated.size == 0:
            raise ParameterError("each tick needs at least 1 treated value")
        if self._treated and treated.size != self._treated[0].size:
            raise ParameterError("treated unit count changed mid-stream")
        if self._control and control.size != self._control[0].size:
            raise ParameterError("control unit count changed mid-stream")
        self._treated.append(treated)
        self._control.append(control)

        change = self._detector.push(float(treated.mean()))
        if change is None or self.assessment is not None:
            return None
        self.assessment = self._attribute(change)
        return self.assessment

    def _attribute(self, change: DetectedChange) -> Assessment:
        treated = np.asarray(self._treated).T        # (units, bins)
        control = np.asarray(self._control).T
        if control.size == 0:
            return Assessment(
                verdict=Verdict.CAUSED_BY_CHANGE, change=change,
                notes=("no control group available; other factors were "
                       "not excluded",),
            )
        w = self.config.effective_did_window
        pre_lo = max(0, self.change_index - w)
        post_hi = min(treated.shape[1], change.index + 1)
        post_lo = max(self.change_index, post_hi - w)
        if post_lo >= post_hi or pre_lo >= self.change_index:
            raise InsufficientDataError(
                "declaration at %d leaves no DiD windows" % change.index
            )
        panel = DiDPanel(
            treated_pre=treated[:, pre_lo:self.change_index],
            treated_post=treated[:, post_lo:post_hi],
            control_pre=control[:, pre_lo:self.change_index],
            control_post=control[:, post_lo:post_hi],
        )
        result = self._estimator.fit(panel)
        caused = result.significant(self.config.did_threshold,
                                    self.config.did_p_value)
        if caused and change.direction and result.normalised_alpha:
            caused = ((change.direction > 0)
                      == (result.normalised_alpha > 0))
        return Assessment(
            verdict=(Verdict.CAUSED_BY_CHANGE if caused
                     else Verdict.OTHER_REASONS),
            change=change,
            did_estimate=result.normalised_alpha,
            control="peers",
        )
