"""Symmetric tridiagonal eigensolver via the implicit-shift QL iteration.

The IKA fast path (paper section 3.2.3) needs the eigenpairs of the tiny
``k x k`` tridiagonal ``T_k`` produced by Lanczos.  The paper cites the QL
iteration of Numerical Recipes ([23], routine ``tqli``): Givens-rotation
sweeps with Wilkinson shifts that converge in O(k) iterations per
eigenvalue, "extremely fast" for the ``k <= 6`` matrices FUNNEL builds.

This is a from-scratch implementation (no LAPACK) so the computational
profile of the reproduction matches the paper's self-contained C++ tool;
it is validated against :func:`numpy.linalg.eigh` in the test suite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ConvergenceError, ParameterError

__all__ = ["tridiag_eigh", "tql2_max_iterations"]

#: Iteration cap per eigenvalue; Numerical Recipes uses 30.
tql2_max_iterations = 30


def _pythag(a: float, b: float) -> float:
    """sqrt(a^2 + b^2) without destructive overflow/underflow."""
    absa, absb = abs(a), abs(b)
    if absa > absb:
        r = absb / absa
        return absa * np.sqrt(1.0 + r * r)
    if absb == 0.0:
        return 0.0
    r = absa / absb
    return absb * np.sqrt(1.0 + r * r)


def tridiag_eigh(diag: np.ndarray,
                 subdiag: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Eigen-decompose a symmetric tridiagonal matrix.

    Args:
        diag: the ``k`` diagonal entries (paper's ``a_1..a_k``).
        subdiag: the ``k - 1`` subdiagonal entries (``b_1..b_{k-1}``).

    Returns:
        ``(eigenvalues, eigenvectors)`` with eigenvalues ascending and
        ``eigenvectors[:, i]`` the unit eigenvector for ``eigenvalues[i]``.

    Raises:
        ParameterError: on mismatched input lengths.
        ConvergenceError: if a QL sweep fails to converge (does not happen
            for well-scaled input within the iteration cap).
    """
    d = np.array(diag, dtype=np.float64, copy=True).ravel()
    e_in = np.asarray(subdiag, dtype=np.float64).ravel()
    n = d.size
    if n == 0:
        raise ParameterError("empty tridiagonal matrix")
    if e_in.size != n - 1:
        raise ParameterError(
            "subdiagonal must have length %d, got %d" % (n - 1, e_in.size)
        )
    if n == 1:
        return d.copy(), np.ones((1, 1), dtype=np.float64)

    # Numerical Recipes convention: e[0] unused, e[1..n-1] holds the
    # subdiagonal; we shift it one left instead (e[i] couples d[i], d[i+1])
    # and keep a trailing zero as the sweep sentinel.
    e = np.zeros(n, dtype=np.float64)
    e[:n - 1] = e_in
    z = np.eye(n, dtype=np.float64)

    for l in range(n):
        iterations = 0
        while True:
            # Find a negligible subdiagonal element to split the matrix.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= np.finfo(np.float64).eps * dd:
                    break
                m += 1
            if m == l:
                break
            iterations += 1
            if iterations > tql2_max_iterations:
                raise ConvergenceError(
                    "QL iteration failed to converge for eigenvalue %d" % l,
                    iterations=iterations,
                )
            # Wilkinson shift from the leading 2x2 block.
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = _pythag(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + np.copysign(r, g))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = _pythag(f, g)
                e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # Accumulate the rotation into the eigenvector matrix.
                f_col = z[:, i + 1].copy()
                z[:, i + 1] = s * z[:, i] + c * f_col
                z[:, i] = c * z[:, i] - s * f_col
            else:
                d[l] -= p
                e[l] = g
                e[m] = 0.0
                continue
            # Inner loop broke on r == 0: retry the sweep.
            continue

    order = np.argsort(d, kind="stable")
    return d[order], z[:, order]
