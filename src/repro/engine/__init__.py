"""The fleet-scale assessment engine.

FUNNEL's value in the paper is assessing *every* KPI of a change's
impact set — 2.2 million KPIs per day at Baidu — within minutes of the
change.  This package is the shared execution layer that makes the
reproduction work the same way: instead of three disconnected per-item
call paths (the evaluation runner's ad-hoc adapters, the CLI, the
deployment simulation), every assessment is

1. **planned** — a software change plus its impact set (from
   :mod:`repro.topology.impact`) expands into
   :class:`~repro.engine.jobs.AssessmentJob` records, one per
   (entity, KPI, detector);
2. **executed** — jobs run in configurable batches, serially or across
   ``concurrent.futures`` process workers, through a single
   :class:`~repro.engine.jobs.Detector` protocol implemented by FUNNEL,
   the SST-only ablation and all baselines, with per-entity baseline
   statistics cached so repeated windows never recompute them; and
3. **instrumented** — every stage (plan, fetch, detect, attribute)
   emits counters and wall-clock timings through
   :mod:`repro.engine.instrument` hooks, and — when an
   :class:`~repro.obs.ObsContext` is attached — structured spans and
   metrics through :mod:`repro.obs`, with worker-side telemetry
   serialized back across the process-pool boundary.

The parallel path is bit-identical to the serial one: each job builds
its detector from a :class:`~repro.engine.jobs.DetectorSpec` with a
seed derived from the job identity alone, so results never depend on
batching, worker count, or scheduling order.
"""

from ..obs import ObsContext
from .batching import (BATCHABLE_DETECTORS, AttributionBatch, DetectBatch,
                       DetectionRecord, PackedJobs, pack_jobs,
                       plan_detect_batches, run_attribution_batch,
                       run_detect_batch, unpack_jobs)
from .cache import BaselineStatsCache, reset_shared_cache, shared_cache
from .detectors import (build_detector, detector_names, register_detector,
                        spec_for_method)
from .engine import AssessmentEngine, FleetAssessmentReport
from .executor import DETECT_MODES, EngineConfig, execute_jobs, job_seed, \
    run_job
from .fleet import FleetScenarioSpec, SyntheticFleetSource
from .instrument import Instrumentation, add_hook, clear_hooks, remove_hook
from .jobs import AssessmentJob, Detector, DetectorSpec, ItemOutcome, JobResult
from .planner import (ENTITY_METRICS, FetchedWindow, job_from_item,
                      jobs_from_items, plan_change_jobs)

__all__ = [
    "AssessmentEngine", "AssessmentJob", "AttributionBatch",
    "BATCHABLE_DETECTORS", "BaselineStatsCache", "DETECT_MODES",
    "DetectBatch", "DetectionRecord",
    "Detector", "DetectorSpec", "EngineConfig", "ENTITY_METRICS",
    "FetchedWindow", "FleetAssessmentReport", "FleetScenarioSpec",
    "Instrumentation", "ItemOutcome", "JobResult", "ObsContext",
    "PackedJobs", "SyntheticFleetSource",
    "add_hook", "build_detector", "clear_hooks", "detector_names",
    "execute_jobs", "job_from_item", "job_seed", "jobs_from_items",
    "pack_jobs", "plan_change_jobs", "plan_detect_batches",
    "register_detector", "remove_hook", "reset_shared_cache",
    "run_attribution_batch", "run_detect_batch", "run_job",
    "shared_cache", "spec_for_method", "unpack_jobs",
]
