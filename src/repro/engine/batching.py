"""Cross-series batched detection and deduplicated pool payloads.

Two independent levers against the two costs BENCH_engine.json exposed:

* **Batched detect stage** (:func:`plan_detect_batches` /
  :func:`run_detect_batch`): funnel-family jobs whose treated aggregates
  share a length are stacked into one ``(n_series, T)`` matrix and
  scored with a single :meth:`repro.core.funnel.Funnel.detect_batch`
  call — one batched normalisation, one stacked ``eigh`` sweep — instead
  of one full pipeline invocation per job.  Only jobs that *declared* a
  change proceed to the per-item DiD attribution stage
  (:class:`AttributionBatch` / :func:`run_attribution_batch`); the
  baselines (CUSUM/MRLS/WoW) keep their per-item path.  Because
  ``Funnel.detect_batch`` is bitwise the per-series pipeline (see
  :meth:`repro.core.ika.IkaSST.scores_batch`), the mode flag changes
  throughput, never verdicts.

* **Packed batches** (:func:`pack_jobs` / :func:`unpack_jobs`): when
  jobs do cross the process-pool boundary, their series payloads are
  decomposed into rows and deduplicated by content before pickling.  A
  fleet change's peer control matrix repeats the same per-entity series
  in every job of the change — and each treated series reappears as a
  control row of its peers — so the pool previously pickled each series
  once *per job*.  Packing ships each distinct row once per batch, which
  is what turned the 2-worker pool from a 0.93x slowdown into a real
  speedup on pickling-bound scenarios.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.funnel import Funnel
from ..types import DetectedChange
from .cache import shared_cache
from .jobs import AssessmentJob, DetectorSpec, ItemOutcome, JobResult

__all__ = [
    "BATCHABLE_DETECTORS",
    "DetectBatch", "DetectionRecord", "plan_detect_batches",
    "run_detect_batch", "detect_only_result",
    "AttributionBatch", "run_attribution_batch",
    "PackedJobs", "pack_jobs", "unpack_jobs",
]

#: Detector names whose detect stage can run batched (they share the
#: funnel pipeline on the treated aggregate).
BATCHABLE_DETECTORS = ("funnel", "improved_sst")

#: Metric names for the batched detect stage (parent + worker channel).
BATCHED_BATCHES_METRIC = "repro_engine_batched_batches_total"
BATCHED_JOBS_METRIC = "repro_engine_batched_jobs_total"
BATCHED_CAPACITY_METRIC = "repro_engine_batched_capacity_total"
PACKED_ROWS_METRIC = "repro_engine_packed_rows_total"
PACKED_UNIQUE_ROWS_METRIC = "repro_engine_packed_unique_rows_total"


# -- batched detect stage ------------------------------------------------------

@dataclass(frozen=True)
class DetectBatch:
    """One stacked detect task: same spec, same series length.

    ``stack`` is the C-contiguous ``(n_jobs, bins)`` matrix of treated
    aggregates — the only ndarray that crosses the pool boundary for the
    whole batch.  ``positions`` index into the caller's job list.
    """

    spec: DetectorSpec
    positions: Tuple[int, ...]
    change_indices: Tuple[int, ...]
    baseline_keys: Tuple[Optional[str], ...]
    stack: np.ndarray

    @property
    def size(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class DetectionRecord:
    """The detect stage's answer for one job of a batch."""

    position: int
    changes: Tuple[DetectedChange, ...]
    detect_seconds: float


def plan_detect_batches(
    jobs: Sequence[AssessmentJob], batch_size: int,
) -> Tuple[List[DetectBatch], List[int]]:
    """Group batchable jobs by (spec, series length) into stacked batches.

    Returns ``(batches, passthrough_positions)``; the passthrough
    positions are the jobs whose detector has no batched detect stage
    (the baselines) and must run per-item.
    """
    groups: Dict[Tuple[DetectorSpec, int], List[int]] = {}
    passthrough: List[int] = []
    for position, job in enumerate(jobs):
        if job.detector.name in BATCHABLE_DETECTORS:
            aggregate = job.treated_aggregate
            groups.setdefault((job.detector, aggregate.size),
                              []).append(position)
        else:
            passthrough.append(position)
    batches: List[DetectBatch] = []
    for (spec, _width), positions in groups.items():
        for start in range(0, len(positions), batch_size):
            chunk = positions[start:start + batch_size]
            stack = np.ascontiguousarray(np.stack(
                [jobs[p].treated_aggregate for p in chunk]))
            batches.append(DetectBatch(
                spec=spec,
                positions=tuple(chunk),
                change_indices=tuple(jobs[p].change_index for p in chunk),
                baseline_keys=tuple(jobs[p].baseline_key for p in chunk),
                stack=stack,
            ))
    return batches, passthrough


def run_detect_batch(batch: DetectBatch) -> List[DetectionRecord]:
    """Score one stacked batch; runs in the worker (or inline).

    Baseline statistics come from the per-process shared cache exactly
    as the per-item path's ``_baseline_stats_for`` would fetch them, so
    cached and uncached jobs normalise bitwise identically.
    """
    funnel = Funnel(batch.spec.option("funnel_config"))
    cache = shared_cache()
    stats = []
    for row, key, change_index in zip(batch.stack, batch.baseline_keys,
                                      batch.change_indices):
        if key is None:
            stats.append(None)
        else:
            stats.append(cache.stats((key, change_index), row,
                                     max(change_index, 1)))
    started = time.perf_counter()
    declared = funnel.detect_batch(batch.stack, batch.change_indices,
                                   baseline_stats=stats)
    share = (time.perf_counter() - started) / max(batch.size, 1)
    return [DetectionRecord(position=position, changes=tuple(changes),
                            detect_seconds=share)
            for position, changes in zip(batch.positions, declared)]


def detect_only_result(job: AssessmentJob, spec_name: str,
                       record: DetectionRecord) -> JobResult:
    """The final result for a job whose batched answer needs no DiD.

    Covers improved_sst (positive iff anything declared) and funnel
    negatives — mirroring the per-item detectors' outcome construction.
    """
    changes = record.changes
    if spec_name == "improved_sst" and changes:
        outcome = ItemOutcome(positive=True,
                              detection_index=changes[0].index)
    else:
        outcome = ItemOutcome(positive=False)
    return JobResult(job_id=job.job_id, detector=spec_name, outcome=outcome,
                     timings=(("detect", record.detect_seconds),))


# -- packed (deduplicated) pool payloads --------------------------------------

#: A packed matrix: ``None`` for an absent optional payload, otherwise
#: ``(ndim, row_indices)`` into the shared row table.
_PackedMatrix = Optional[Tuple[int, Tuple[int, ...]]]


@dataclass(frozen=True)
class PackedJobs:
    """A batch of jobs with series payloads deduplicated row-wise.

    ``jobs`` carry every scalar field but have their array fields set to
    ``None``; ``refs[i]`` holds the packed treated/control/history of
    ``jobs[i]`` as row indices into ``rows`` — the table of distinct
    series this batch needs, each pickled exactly once.
    """

    jobs: Tuple[AssessmentJob, ...]
    refs: Tuple[Tuple[_PackedMatrix, _PackedMatrix, _PackedMatrix], ...]
    rows: Tuple[np.ndarray, ...]

    @property
    def total_rows(self) -> int:
        return sum(len(ref[1]) for refs in self.refs
                   for ref in refs if ref is not None)


def _pack_matrix(value, rows: List[np.ndarray],
                 index: Dict[bytes, int]) -> _PackedMatrix:
    if value is None:
        return None
    matrix = np.asarray(value, dtype=np.float64)
    ndim = matrix.ndim
    matrix = np.atleast_2d(matrix)
    ids = []
    for row in matrix:
        row = np.ascontiguousarray(row)
        digest = hashlib.blake2b(row.tobytes(), digest_size=16).digest()
        key = digest + row.size.to_bytes(8, "little")
        row_id = index.get(key)
        if row_id is None:
            row_id = len(rows)
            rows.append(row)
            index[key] = row_id
        ids.append(row_id)
    return ndim, tuple(ids)


def _unpack_matrix(packed: _PackedMatrix,
                   rows: Sequence[np.ndarray]) -> Optional[np.ndarray]:
    if packed is None:
        return None
    ndim, ids = packed
    if ndim <= 1:
        return rows[ids[0]]
    return np.vstack([rows[i] for i in ids])


def pack_jobs(jobs: Sequence[AssessmentJob]) -> PackedJobs:
    """Strip and deduplicate the series payloads of a job batch."""
    rows: List[np.ndarray] = []
    index: Dict[bytes, int] = {}
    skeletons = []
    refs = []
    for job in jobs:
        refs.append((_pack_matrix(job.treated, rows, index),
                     _pack_matrix(job.control, rows, index),
                     _pack_matrix(job.history, rows, index)))
        skeletons.append(replace(job, treated=None, control=None,
                                 history=None))
    return PackedJobs(jobs=tuple(skeletons), refs=tuple(refs),
                      rows=tuple(rows))


def unpack_jobs(packed: PackedJobs) -> List[AssessmentJob]:
    """Rebuild the original jobs (content-identical arrays) in order."""
    jobs = []
    for job, (treated, control, history) in zip(packed.jobs, packed.refs):
        jobs.append(replace(
            job,
            treated=_unpack_matrix(treated, packed.rows),
            control=_unpack_matrix(control, packed.rows),
            history=_unpack_matrix(history, packed.rows),
        ))
    return jobs


# -- per-item attribution stage ------------------------------------------------

@dataclass(frozen=True)
class AttributionBatch:
    """DiD attribution work for the funnel jobs that declared a change.

    Jobs travel packed (control/history rows deduplicated); ``changes``
    and ``detect_seconds`` parallel ``packed.jobs``.
    """

    packed: PackedJobs
    positions: Tuple[int, ...]
    changes: Tuple[DetectedChange, ...]
    detect_seconds: Tuple[float, ...]


def run_attribution_batch(
        batch: AttributionBatch) -> List[Tuple[int, JobResult]]:
    """Attribute each declared change; runs in the worker (or inline).

    Mirrors the second half of
    :class:`~repro.engine.detectors.FunnelEngineDetector.assess` —
    identical inputs, identical :class:`~repro.types.Assessment`.
    """
    jobs = unpack_jobs(batch.packed)
    funnels: Dict[DetectorSpec, Funnel] = {}
    out: List[Tuple[int, JobResult]] = []
    for job, position, change, detect_seconds in zip(
            jobs, batch.positions, batch.changes, batch.detect_seconds):
        funnel = funnels.get(job.detector)
        if funnel is None:
            funnel = Funnel(job.detector.option("funnel_config"))
            funnels[job.detector] = funnel
        started = time.perf_counter()
        assessment = funnel.attribute(job.treated, change, job.change_index,
                                      control=job.control,
                                      history=job.history)
        attribute_seconds = time.perf_counter() - started
        index = assessment.change.index if assessment.change else None
        out.append((position, JobResult(
            job_id=job.job_id, detector=job.detector.name,
            outcome=ItemOutcome(positive=assessment.positive,
                                detection_index=index),
            verdict=assessment.verdict,
            did_estimate=assessment.did_estimate,
            timings=(("detect", detect_seconds),
                     ("attribute", attribute_seconds)),
        )))
    return out
