"""Process-local cache of per-entity pre-change baseline statistics.

FUNNEL normalises every series by the robust median/MAD of its
pre-change baseline (:func:`repro.core.scoring.robust_normalise`).  When
the same entity's window is assessed repeatedly — several detectors over
one impact set, rolling re-assessments, the SST-only ablation next to
full FUNNEL — those statistics are identical every time.  This cache
memoises them per ``baseline_key`` so repeated windows never recompute.

The cache is an *optimisation only*: a hit returns exactly what the
recomputation would (same inputs, same ``median_and_mad`` call), so
results are bit-identical whether or not a worker process happens to
have the entry.  That property is what lets each process-pool worker
keep its own instance without any cross-process coordination.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

import numpy as np

from ..core.robust import median_and_mad

__all__ = ["BaselineStatsCache", "shared_cache", "reset_shared_cache"]


class BaselineStatsCache:
    """Bounded memo of ``baseline key -> (median, MAD)`` statistics."""

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._stats: "OrderedDict[Hashable, Tuple[float, float]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    def stats(self, key: Hashable, series: np.ndarray,
              baseline: int) -> Tuple[float, float]:
        """Median/MAD of ``series[:baseline]``, memoised under ``key``.

        The caller owns the contract that ``key`` uniquely identifies
        the baseline *content* — two calls with one key must pass
        bit-identical prefixes.
        """
        cached = self._stats.get(key)
        if cached is not None:
            self.hits += 1
            # True LRU: a hit refreshes the entry, so under fleet-scale
            # churn the hottest baselines outlive one-shot keys instead
            # of being evicted at the same age (FIFO).
            self._stats.move_to_end(key)
            return cached
        self.misses += 1
        computed = median_and_mad(np.asarray(series,
                                             dtype=np.float64)[:baseline])
        if len(self._stats) >= self.max_entries:
            self._stats.popitem(last=False)  # least recently used
        self._stats[key] = (float(computed[0]), float(computed[1]))
        return self._stats[key]

    def clear(self) -> None:
        self._stats.clear()
        self.hits = 0
        self.misses = 0

    def counters(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` — snapshot before a batch, diff
        after, and you have the batch's cache traffic.  This is how the
        executor's worker-telemetry channel reports cache metrics from
        pool workers, whose process-local caches the parent can never
        inspect directly."""
        return self.hits, self.misses

    def info(self) -> dict:
        """JSON-safe cache statistics."""
        return {"entries": len(self._stats), "hits": self.hits,
                "misses": self.misses, "max_entries": self.max_entries}


_SHARED = BaselineStatsCache()


def shared_cache() -> BaselineStatsCache:
    """The process-wide cache engine detectors use by default."""
    return _SHARED


def reset_shared_cache() -> None:
    """Empty the process-wide cache (test isolation helper)."""
    _SHARED.clear()
