"""Engine detectors: every assessment method behind one protocol.

This module adapts the repo's detectors — the full FUNNEL pipeline, the
SST-only ablation, and the CUSUM / MRLS / week-over-week baselines — to
the :class:`~repro.engine.jobs.Detector` protocol, and keeps a registry
mapping method names to factories.  The executor never sees a concrete
detector class: it calls :func:`build_detector` with the job's
:class:`~repro.engine.jobs.DetectorSpec` and a per-job seed, so every
job gets a freshly constructed, deterministically seeded instance.
That construction discipline is what makes parallel execution
bit-identical to serial — a detector with internal random state (CUSUM's
bootstrap) never carries that state across jobs.

What each method is *allowed to see* matches the evaluation setting of
section 4.2:

* ``funnel`` — treated + control/history, detection then DiD
  attribution (timed as separate stages);
* ``improved_sst`` — the same detector, no DiD: any post-change
  detection counts as positive;
* ``cusum`` / ``mrls`` / ``wow`` — the baseline on the treated
  aggregate only, no DiD.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..baselines.cusum import CusumDetector, CusumParams
from ..baselines.mrls import MrlsDetector, MrlsParams
from ..baselines.wow import WeekOverWeekDetector, WowParams
from ..core.funnel import Funnel, FunnelConfig
from ..exceptions import EngineError, InsufficientDataError
from .cache import shared_cache
from .jobs import AssessmentJob, Detector, DetectorSpec, ItemOutcome, JobResult

__all__ = ["register_detector", "detector_names", "build_detector",
           "spec_for_method", "FunnelEngineDetector",
           "SstOnlyEngineDetector", "SeriesEngineDetector"]

DetectorFactory = Callable[[DetectorSpec, int], Detector]

_FACTORIES: Dict[str, DetectorFactory] = {}


def register_detector(name: str, factory: DetectorFactory) -> None:
    """Register ``factory`` as the builder for method ``name``.

    The factory receives the job's spec and the per-job seed and must
    return a fresh :class:`~repro.engine.jobs.Detector`.
    """
    _FACTORIES[name] = factory


def detector_names() -> Tuple[str, ...]:
    """The registered method names, sorted."""
    return tuple(sorted(_FACTORIES))


def build_detector(spec: DetectorSpec, seed: int = 0) -> Detector:
    """Construct a fresh detector for ``spec`` with the given seed."""
    factory = _FACTORIES.get(spec.name)
    if factory is None:
        raise EngineError(
            "unknown detector %r; registered: %s"
            % (spec.name, ", ".join(detector_names()) or "(none)")
        )
    return factory(spec, seed)


def spec_for_method(name: str,
                    funnel_config: Optional[FunnelConfig] = None,
                    cusum_params: Optional[CusumParams] = None,
                    mrls_params: Optional[MrlsParams] = None,
                    wow_params: Optional[WowParams] = None) -> DetectorSpec:
    """Build the :class:`DetectorSpec` for a registered method name.

    Only the options a method understands are attached to its spec, so
    two specs for the same method with irrelevant extra arguments still
    compare (and cache) equal.
    """
    if name in ("funnel", "improved_sst"):
        return DetectorSpec.create(name, funnel_config=funnel_config)
    if name == "cusum":
        return DetectorSpec.create(name, cusum_params=cusum_params)
    if name == "mrls":
        return DetectorSpec.create(name, mrls_params=mrls_params)
    if name == "wow":
        return DetectorSpec.create(name, wow_params=wow_params)
    raise EngineError(
        "unknown method %r; registered: %s"
        % (name, ", ".join(detector_names()) or "(none)")
    )


def _baseline_stats_for(job: AssessmentJob) -> Optional[Tuple[float, float]]:
    """Cached (median, MAD) of the job's pre-change aggregate, if keyed."""
    if job.baseline_key is None:
        return None
    key = (job.baseline_key, job.change_index)
    return shared_cache().stats(key, job.treated_aggregate,
                                max(job.change_index, 1))


class FunnelEngineDetector:
    """The full Fig. 3 pipeline as an engine detector.

    Detection and attribution are timed separately so the executor can
    report where fleet assessment time goes; the pre-change baseline
    statistics come from the shared per-process cache when the job
    carries a ``baseline_key``.
    """

    name = "funnel"

    def __init__(self, config: Optional[FunnelConfig] = None) -> None:
        self.funnel = Funnel(config)

    def assess(self, job: AssessmentJob) -> JobResult:
        stats = _baseline_stats_for(job)
        started = time.perf_counter()
        changes = self.funnel.detect(job.treated_aggregate, job.change_index,
                                     baseline_stats=stats)
        detect_seconds = time.perf_counter() - started
        if not changes:
            return JobResult(
                job_id=job.job_id, detector=self.name,
                outcome=ItemOutcome(positive=False),
                timings=(("detect", detect_seconds),),
            )
        started = time.perf_counter()
        assessment = self.funnel.attribute(
            job.treated, changes[0], job.change_index,
            control=job.control, history=job.history,
        )
        attribute_seconds = time.perf_counter() - started
        index = assessment.change.index if assessment.change else None
        return JobResult(
            job_id=job.job_id, detector=self.name,
            outcome=ItemOutcome(positive=assessment.positive,
                                detection_index=index),
            verdict=assessment.verdict,
            did_estimate=assessment.did_estimate,
            timings=(("detect", detect_seconds),
                     ("attribute", attribute_seconds)),
        )


class SstOnlyEngineDetector:
    """The improved-SST ablation: detection without attribution."""

    name = "improved_sst"

    def __init__(self, config: Optional[FunnelConfig] = None) -> None:
        self.funnel = Funnel(config)

    def assess(self, job: AssessmentJob) -> JobResult:
        stats = _baseline_stats_for(job)
        started = time.perf_counter()
        changes = self.funnel.detect(job.treated_aggregate, job.change_index,
                                     baseline_stats=stats)
        detect_seconds = time.perf_counter() - started
        outcome = (ItemOutcome(positive=True,
                               detection_index=changes[0].index)
                   if changes else ItemOutcome(positive=False))
        return JobResult(job_id=job.job_id, detector=self.name,
                         outcome=outcome,
                         timings=(("detect", detect_seconds),))


class SeriesEngineDetector:
    """Adapter for baselines that detect on a single aggregate series.

    Wraps any object with ``detect(series, first_only=...) ->
    List[DetectedChange]`` (CUSUM, MRLS, week-over-week).  Detections
    starting before the software change (1-bin slack for start
    estimation jitter) are by definition not caused by it and are
    dropped; a series too short for the method counts as a negative.
    """

    def __init__(self, name: str, detector) -> None:
        self.name = name
        self._detector = detector

    def assess(self, job: AssessmentJob) -> JobResult:
        started = time.perf_counter()
        try:
            changes = self._detector.detect(job.treated_aggregate,
                                            first_only=False)
        except InsufficientDataError:
            changes = []
        relevant = [c for c in changes
                    if c.start_index >= job.change_index - 1]
        detect_seconds = time.perf_counter() - started
        outcome = (ItemOutcome(positive=True,
                               detection_index=relevant[0].index)
                   if relevant else ItemOutcome(positive=False))
        return JobResult(job_id=job.job_id, detector=self.name,
                         outcome=outcome,
                         timings=(("detect", detect_seconds),))


def _funnel_factory(spec: DetectorSpec, seed: int) -> Detector:
    return FunnelEngineDetector(spec.option("funnel_config"))


def _sst_only_factory(spec: DetectorSpec, seed: int) -> Detector:
    return SstOnlyEngineDetector(spec.option("funnel_config"))


def _cusum_factory(spec: DetectorSpec, seed: int) -> Detector:
    return SeriesEngineDetector(
        "cusum", CusumDetector(spec.option("cusum_params"), seed=seed))


def _mrls_factory(spec: DetectorSpec, seed: int) -> Detector:
    return SeriesEngineDetector("mrls",
                                MrlsDetector(spec.option("mrls_params")))


def _wow_factory(spec: DetectorSpec, seed: int) -> Detector:
    return SeriesEngineDetector(
        "wow", WeekOverWeekDetector(spec.option("wow_params")))


register_detector("funnel", _funnel_factory)
register_detector("improved_sst", _sst_only_factory)
register_detector("cusum", _cusum_factory)
register_detector("mrls", _mrls_factory)
register_detector("wow", _wow_factory)
