"""The engine facade: detectors + executor + instrumentation in one call.

:class:`AssessmentEngine` is what the entry layers use — the CLI's
``assess-fleet``, the evaluation harness and the deployment simulation
all converge here.  It normalises method names into
:class:`~repro.engine.jobs.DetectorSpec` recipes, runs jobs through the
batched executor, and (for fleet sources) folds the per-job answers into
a JSON-safe :class:`FleetAssessmentReport`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..obs import ObsContext
from .cache import shared_cache
from .detectors import spec_for_method
from .executor import EngineConfig, execute_jobs
from .instrument import Instrumentation
from .jobs import AssessmentJob, DetectorSpec, JobResult

__all__ = ["AssessmentEngine", "FleetAssessmentReport"]


def _rate(numerator: int, denominator: int) -> Optional[float]:
    """A JSON-safe ratio: ``None`` instead of NaN for empty denominators."""
    if denominator <= 0:
        return None
    return numerator / denominator


@dataclass
class FleetAssessmentReport:
    """Aggregated outcome of one fleet assessment run.

    Per detector: job/positive counts, verdict distribution, and — for
    jobs carrying ground truth — confusion counts with precision/recall.
    """

    jobs: int = 0
    detectors: Dict[str, dict] = field(default_factory=dict)
    instrumentation: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    throughput_jobs_per_second: Optional[float] = None
    obs: Optional[dict] = None

    @classmethod
    def from_run(cls, jobs: Sequence[AssessmentJob],
                 results: Sequence[JobResult],
                 instrumentation: Instrumentation) -> "FleetAssessmentReport":
        per_detector: Dict[str, dict] = {}
        for job, result in zip(jobs, results):
            stats = per_detector.setdefault(result.detector, {
                "jobs": 0, "positives": 0, "true_positives": 0,
                "false_positives": 0, "false_negatives": 0,
                "labelled_jobs": 0, "verdicts": {},
            })
            stats["jobs"] += 1
            if result.positive:
                stats["positives"] += 1
            if result.verdict is not None:
                verdict = result.verdict.value
                stats["verdicts"][verdict] = \
                    stats["verdicts"].get(verdict, 0) + 1
            if job.truth_positive is not None:
                stats["labelled_jobs"] += 1
                if result.positive and job.truth_positive:
                    stats["true_positives"] += 1
                elif result.positive:
                    stats["false_positives"] += 1
                elif job.truth_positive:
                    stats["false_negatives"] += 1
        for stats in per_detector.values():
            stats["precision"] = _rate(
                stats["true_positives"],
                stats["true_positives"] + stats["false_positives"])
            stats["recall"] = _rate(
                stats["true_positives"],
                stats["true_positives"] + stats["false_negatives"])

        snapshot = instrumentation.snapshot()
        execute = snapshot["stages"].get("execute", {})
        seconds = execute.get("seconds", 0.0)
        throughput = (len(results) / seconds) if seconds > 0 else None
        obs_summary = None
        if instrumentation.obs is not None and instrumentation.obs.enabled:
            ctx = instrumentation.obs
            obs_summary = {"trace_id": ctx.tracer.trace_id,
                           "span_count": ctx.span_count}
        return cls(
            jobs=len(results),
            detectors=per_detector,
            instrumentation=snapshot,
            cache=shared_cache().info(),
            throughput_jobs_per_second=throughput,
            obs=obs_summary,
        )

    def as_dict(self) -> dict:
        """The JSON document ``repro assess-fleet`` prints."""
        doc = {
            "jobs": self.jobs,
            "detectors": self.detectors,
            "instrumentation": self.instrumentation,
            "cache": self.cache,
            "throughput_jobs_per_second": self.throughput_jobs_per_second,
        }
        if self.obs is not None:
            doc["obs"] = self.obs
        return doc


class AssessmentEngine:
    """One configured engine: detector specs + executor sizing.

    ``detectors`` accepts method names (resolved through
    :func:`~repro.engine.detectors.spec_for_method` with the given
    parameter sets) or ready-made :class:`DetectorSpec` objects.
    """

    def __init__(self,
                 detectors: Iterable[Union[str, DetectorSpec]] = ("funnel",),
                 config: Optional[EngineConfig] = None,
                 funnel_config=None, cusum_params=None, mrls_params=None,
                 wow_params=None,
                 instrumentation: Optional[Instrumentation] = None,
                 obs: Optional[ObsContext] = None) -> None:
        self.specs: Tuple[DetectorSpec, ...] = tuple(
            spec if isinstance(spec, DetectorSpec) else spec_for_method(
                spec, funnel_config=funnel_config, cusum_params=cusum_params,
                mrls_params=mrls_params, wow_params=wow_params)
            for spec in detectors
        )
        self.config = config or EngineConfig()
        self.instrumentation = instrumentation or Instrumentation(obs=obs)
        if obs is not None and self.instrumentation.obs is None:
            self.instrumentation.obs = obs
        self.obs = self.instrumentation.obs

    def run(self, jobs: Iterable[AssessmentJob]) -> List[JobResult]:
        """Execute a prepared job stream (results in input order)."""
        return execute_jobs(jobs, config=self.config,
                            instrumentation=self.instrumentation,
                            obs=self.obs)

    def assess_fleet(self, source) -> FleetAssessmentReport:
        """Plan, execute and summarise a fleet source's full job set.

        ``source`` is any object with ``plan_jobs(specs, instrumentation)
        -> Iterable[AssessmentJob]`` — e.g.
        :class:`~repro.engine.fleet.SyntheticFleetSource`.

        With an observability context attached, the whole run lives
        under one ``assess_fleet`` root span: planning and fetching
        spans from the planner, then the executor's span tree.
        """
        report, _, _ = self.assess_fleet_detailed(source)
        return report

    def assess_fleet_detailed(
            self, source
    ) -> Tuple[FleetAssessmentReport, List[AssessmentJob], List[JobResult]]:
        """:meth:`assess_fleet`, additionally returning the per-job data.

        The live replay driver compares its streamed verdicts against
        the zipped ``(jobs, results)``; the report alone folds that
        detail away.
        """
        observed = self.obs is not None and self.obs.enabled
        root = (self.obs.tracer.span("assess_fleet") if observed
                else nullcontext())
        with root:
            jobs = list(source.plan_jobs(
                self.specs, instrumentation=self.instrumentation))
            results = self.run(jobs)
        report = FleetAssessmentReport.from_run(jobs, results,
                                                self.instrumentation)
        return report, jobs, results
