"""Batched, optionally parallel execution of assessment jobs.

The executor takes an iterable of :class:`~repro.engine.jobs.AssessmentJob`
and returns one :class:`~repro.engine.jobs.JobResult` per job, in input
order.  Jobs are grouped into batches of :attr:`EngineConfig.batch_size`;
with ``workers == 0`` the batches run inline (the serial reference
path), otherwise they are shipped to a
:class:`concurrent.futures.ProcessPoolExecutor` with a bounded number of
in-flight batches so a fleet-sized job stream never materialises in
memory all at once.

**Parallel is bit-identical to serial.**  Both paths run the same
:func:`_run_batch` function, and every job builds its own detector whose
seed derives only from the job's identity (:func:`job_seed` — a CRC of
the detector name, job id and job seed).  No detector state, RNG
position, cache content or scheduling order can leak between jobs, so
the results are a pure function of the job list — regardless of batch
size, worker count, or which worker ran what.

**Observability crosses the pool the same way results do.**  Module
state (hooks, metric registries) is process-local, so a worker records
spans and metrics into a throwaway context and returns a
:class:`~repro.obs.WorkerTelemetry` alongside its results; the parent
re-parents the spans under its ``execute`` span, merges the metric
deltas, and re-emits hook events.  Serial execution uses the identical
channel, so the two modes produce the same span tree shape, the same
aggregate counters, and the same hook event counts.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import EngineError
from ..obs import MetricsRegistry, ObsContext, Tracer, WorkerTelemetry
from ..obs.metrics import LATENCY_BUCKETS
from ..obs.tracing import RemoteContext
from .cache import shared_cache
from .detectors import build_detector
from .instrument import Instrumentation, emit_spans
from .jobs import AssessmentJob, JobResult

__all__ = ["EngineConfig", "job_seed", "run_job", "execute_jobs"]

#: Cap on batches submitted but not yet collected per worker.
_INFLIGHT_PER_WORKER = 2

#: Metric names the worker channel populates.
JOBS_METRIC = "repro_engine_jobs_total"
POSITIVES_METRIC = "repro_engine_positives_total"
DETECT_SECONDS_METRIC = "repro_engine_detect_seconds"
CACHE_HITS_METRIC = "repro_engine_baseline_cache_hits_total"
CACHE_MISSES_METRIC = "repro_engine_baseline_cache_misses_total"
INFLIGHT_GAUGE = "repro_engine_inflight_batches"


@dataclass(frozen=True)
class EngineConfig:
    """Executor knobs.

    Attributes:
        workers: process-pool size; ``0`` (the default) runs the serial
            reference path inline — bit-identical, no pool overhead.
        batch_size: jobs per executor task.  Larger batches amortise
            pickling; smaller ones balance better across workers.
    """

    workers: int = 0
    batch_size: int = 16

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise EngineError("workers must be >= 0, got %d" % self.workers)
        if self.batch_size < 1:
            raise EngineError(
                "batch_size must be >= 1, got %d" % self.batch_size)


def job_seed(job: AssessmentJob) -> int:
    """The deterministic seed for ``job``'s detector.

    Derived from the detector name and the job's identity alone —
    never from scheduling — so a job's randomness (e.g. CUSUM's
    bootstrap shuffles) is the same on any worker, in any batch.
    """
    token = "%s:%d:%d" % (job.detector.name, job.job_id, job.seed)
    return zlib.crc32(token.encode("utf-8"))


def run_job(job: AssessmentJob) -> JobResult:
    """Assess one job with a freshly built, deterministically seeded detector."""
    detector = build_detector(job.detector, seed=job_seed(job))
    return detector.assess(job)


def _run_batch(jobs: Sequence[AssessmentJob]) -> List[JobResult]:
    """The one batch body both the serial and the pooled paths run."""
    return [run_job(job) for job in jobs]


def _run_batch_observed(jobs: Sequence[AssessmentJob],
                        remote: RemoteContext, position: int
                        ) -> Tuple[List[JobResult], WorkerTelemetry]:
    """:func:`_run_batch` plus worker-side telemetry capture.

    Runs in the pool worker (or inline, serially): spans for the batch,
    each job and each detector stage, metric counters/histograms, and
    the baseline-cache hit/miss delta this batch caused in *this*
    process.  Everything returned is picklable; the parent re-parents
    and merges it via :meth:`~repro.obs.ObsContext.absorb`.
    """
    tracer = Tracer(remote=remote)
    metrics = MetricsRegistry()
    jobs_total = metrics.counter(JOBS_METRIC, help="Jobs assessed.")
    positives = metrics.counter(POSITIVES_METRIC,
                                help="Jobs assessed positive.")
    latency = metrics.histogram(
        DETECT_SECONDS_METRIC,
        help="Detector stage latency per job.", buckets=LATENCY_BUCKETS)
    cache = shared_cache()
    hits_before, misses_before = cache.counters()

    results: List[JobResult] = []
    with tracer.span("batch", batch=position, jobs=len(jobs)):
        for job in jobs:
            detector = job.detector.name
            with tracer.span("job", detector=detector, job_id=job.job_id,
                             entity=job.entity, metric=job.metric) as span:
                result = run_job(job)
            stage_start = span.start_unix
            for stage, seconds in result.timings:
                tracer.record(stage, seconds, parent_id=span.span_id,
                              start_unix=stage_start, detector=detector)
                latency.observe(seconds, detector=detector, stage=stage)
                stage_start += seconds
            jobs_total.inc(detector=detector)
            if result.positive:
                positives.inc(detector=detector)
            results.append(result)

    if cache.hits > hits_before:
        metrics.counter(CACHE_HITS_METRIC,
                        help="Baseline-stats cache hits.").inc(
            cache.hits - hits_before)
    if cache.misses > misses_before:
        metrics.counter(CACHE_MISSES_METRIC,
                        help="Baseline-stats cache misses.").inc(
            cache.misses - misses_before)
    return results, WorkerTelemetry(spans=tracer.export(),
                                    metrics=metrics.snapshot())


def _batches(jobs: Iterable[AssessmentJob],
             size: int) -> Iterator[List[AssessmentJob]]:
    batch: List[AssessmentJob] = []
    for job in jobs:
        batch.append(job)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _record(results: Sequence[JobResult],
            instrumentation: Optional[Instrumentation]) -> None:
    """Fold one batch's results into the compat Instrumentation.

    Always local-only (``mirror=False``): when observability is on,
    these numbers reach the obs registry through the worker channel,
    and mirroring here too would double-count.
    """
    if instrumentation is None:
        return
    instrumentation.count("jobs", len(results), mirror=False)
    instrumentation.count("positives",
                          sum(1 for r in results if r.positive),
                          mirror=False)
    stage_totals: dict = {}
    for result in results:
        for stage, seconds in result.timings:
            calls, total = stage_totals.get(stage, (0, 0.0))
            stage_totals[stage] = (calls + 1, total + seconds)
    for stage, (calls, total) in stage_totals.items():
        instrumentation.add_time(stage, total, items=calls, calls=calls,
                                 mirror=False)


def _resolve_obs(instrumentation: Optional[Instrumentation],
                 obs: Optional[ObsContext]) -> Optional[ObsContext]:
    if obs is None and instrumentation is not None:
        obs = instrumentation.obs
    if obs is not None and not obs.enabled:
        return None
    return obs


def execute_jobs(jobs: Iterable[AssessmentJob],
                 config: Optional[EngineConfig] = None,
                 instrumentation: Optional[Instrumentation] = None,
                 obs: Optional[ObsContext] = None) -> List[JobResult]:
    """Run every job and return results in input order.

    Args:
        jobs: the job stream (consumed lazily in the parallel path).
        config: worker/batch sizing; defaults to serial execution.
        instrumentation: optional sink for the run's ``execute`` wall
            time, per-stage detector timings, and job/positive counters.
        obs: optional observability context.  Defaults to
            ``instrumentation.obs`` when one is attached; when enabled,
            the run produces a full span tree and metric set that is
            identical in shape and counts whether execution is serial
            or pooled.
    """
    config = config or EngineConfig()
    obs = _resolve_obs(instrumentation, obs)
    started = time.perf_counter()
    if obs is not None:
        with obs.tracer.span("execute", workers=config.workers,
                             batch_size=config.batch_size):
            remote = obs.remote_context()
            if config.workers == 0:
                results = _execute_serial_observed(
                    jobs, config, instrumentation, obs, remote)
            else:
                results = _execute_pooled(jobs, config, instrumentation,
                                          obs, remote)
    elif config.workers == 0:
        results = []
        for batch in _batches(jobs, config.batch_size):
            batch_results = _run_batch(batch)
            _record(batch_results, instrumentation)
            results.extend(batch_results)
    else:
        results = _execute_pooled(jobs, config, instrumentation, None, None)
    if instrumentation is not None:
        instrumentation.add_time("execute", time.perf_counter() - started,
                                 items=len(results), mirror=False)
    return results


def _absorb(obs: ObsContext, telemetry: WorkerTelemetry) -> None:
    obs.absorb(telemetry)
    emit_spans(telemetry.spans)


def _execute_serial_observed(jobs: Iterable[AssessmentJob],
                             config: EngineConfig,
                             instrumentation: Optional[Instrumentation],
                             obs: ObsContext,
                             remote: RemoteContext) -> List[JobResult]:
    """Serial path through the same telemetry channel the pool uses."""
    results: List[JobResult] = []
    for position, batch in enumerate(_batches(jobs, config.batch_size)):
        batch_results, telemetry = _run_batch_observed(batch, remote,
                                                       position)
        _absorb(obs, telemetry)
        _record(batch_results, instrumentation)
        results.extend(batch_results)
    return results


def _execute_pooled(jobs: Iterable[AssessmentJob], config: EngineConfig,
                    instrumentation: Optional[Instrumentation],
                    obs: Optional[ObsContext],
                    remote: Optional[RemoteContext]) -> List[JobResult]:
    """Submit batches to a process pool, keeping bounded work in flight."""
    max_inflight = config.workers * _INFLIGHT_PER_WORKER
    ordered: dict = {}
    pending: dict = {}
    inflight_peak = 0
    with ProcessPoolExecutor(max_workers=config.workers) as pool:
        for position, batch in enumerate(_batches(jobs, config.batch_size)):
            while len(pending) >= max_inflight:
                done, _ = wait(tuple(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    ordered[pending.pop(future)] = future.result()
            if obs is not None:
                future = pool.submit(_run_batch_observed, batch, remote,
                                     position)
            else:
                future = pool.submit(_run_batch, batch)
            pending[future] = position
            inflight_peak = max(inflight_peak, len(pending))
        for future, position in pending.items():
            ordered[position] = future.result()
    if obs is not None:
        obs.metrics.gauge(
            INFLIGHT_GAUGE,
            help="Peak batches in flight across the pool.").set(
            float(inflight_peak))
    results: List[JobResult] = []
    for position in sorted(ordered):
        if obs is not None:
            batch_results, telemetry = ordered[position]
            _absorb(obs, telemetry)
        else:
            batch_results = ordered[position]
        _record(batch_results, instrumentation)
        results.extend(batch_results)
    return results
