"""Batched, optionally parallel execution of assessment jobs.

The executor takes an iterable of :class:`~repro.engine.jobs.AssessmentJob`
and returns one :class:`~repro.engine.jobs.JobResult` per job, in input
order.  Jobs are grouped into batches of :attr:`EngineConfig.batch_size`;
with ``workers == 0`` the batches run inline (the serial reference
path), otherwise they are shipped to a
:class:`concurrent.futures.ProcessPoolExecutor` with a bounded number of
in-flight batches so a fleet-sized job stream never materialises in
memory all at once.

**Parallel is bit-identical to serial.**  Both paths run the same
:func:`_run_batch` function, and every job builds its own detector whose
seed derives only from the job's identity (:func:`job_seed` — a CRC of
the detector name, job id and job seed).  No detector state, RNG
position, cache content or scheduling order can leak between jobs, so
the results are a pure function of the job list — regardless of batch
size, worker count, or which worker ran what.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import EngineError
from .detectors import build_detector
from .instrument import Instrumentation
from .jobs import AssessmentJob, JobResult

__all__ = ["EngineConfig", "job_seed", "run_job", "execute_jobs"]

#: Cap on batches submitted but not yet collected per worker.
_INFLIGHT_PER_WORKER = 2


@dataclass(frozen=True)
class EngineConfig:
    """Executor knobs.

    Attributes:
        workers: process-pool size; ``0`` (the default) runs the serial
            reference path inline — bit-identical, no pool overhead.
        batch_size: jobs per executor task.  Larger batches amortise
            pickling; smaller ones balance better across workers.
    """

    workers: int = 0
    batch_size: int = 16

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise EngineError("workers must be >= 0, got %d" % self.workers)
        if self.batch_size < 1:
            raise EngineError(
                "batch_size must be >= 1, got %d" % self.batch_size)


def job_seed(job: AssessmentJob) -> int:
    """The deterministic seed for ``job``'s detector.

    Derived from the detector name and the job's identity alone —
    never from scheduling — so a job's randomness (e.g. CUSUM's
    bootstrap shuffles) is the same on any worker, in any batch.
    """
    token = "%s:%d:%d" % (job.detector.name, job.job_id, job.seed)
    return zlib.crc32(token.encode("utf-8"))


def run_job(job: AssessmentJob) -> JobResult:
    """Assess one job with a freshly built, deterministically seeded detector."""
    detector = build_detector(job.detector, seed=job_seed(job))
    return detector.assess(job)


def _run_batch(jobs: Sequence[AssessmentJob]) -> List[JobResult]:
    """The one batch body both the serial and the pooled paths run."""
    return [run_job(job) for job in jobs]


def _batches(jobs: Iterable[AssessmentJob],
             size: int) -> Iterator[List[AssessmentJob]]:
    batch: List[AssessmentJob] = []
    for job in jobs:
        batch.append(job)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _record(results: Sequence[JobResult],
            instrumentation: Optional[Instrumentation]) -> None:
    if instrumentation is None:
        return
    instrumentation.count("jobs", len(results))
    instrumentation.count("positives",
                          sum(1 for r in results if r.positive))
    stage_totals: dict = {}
    for result in results:
        for stage, seconds in result.timings:
            calls, total = stage_totals.get(stage, (0, 0.0))
            stage_totals[stage] = (calls + 1, total + seconds)
    for stage, (calls, total) in stage_totals.items():
        instrumentation.add_time(stage, total, items=calls, calls=calls)


def execute_jobs(jobs: Iterable[AssessmentJob],
                 config: Optional[EngineConfig] = None,
                 instrumentation: Optional[Instrumentation] = None
                 ) -> List[JobResult]:
    """Run every job and return results in input order.

    Args:
        jobs: the job stream (consumed lazily in the parallel path).
        config: worker/batch sizing; defaults to serial execution.
        instrumentation: optional sink for the run's ``execute`` wall
            time, per-stage detector timings, and job/positive counters.
    """
    config = config or EngineConfig()
    started = time.perf_counter()
    if config.workers == 0:
        results: List[JobResult] = []
        for batch in _batches(jobs, config.batch_size):
            batch_results = _run_batch(batch)
            _record(batch_results, instrumentation)
            results.extend(batch_results)
    else:
        results = _execute_pooled(jobs, config, instrumentation)
    if instrumentation is not None:
        instrumentation.add_time("execute", time.perf_counter() - started,
                                 items=len(results))
    return results


def _execute_pooled(jobs: Iterable[AssessmentJob], config: EngineConfig,
                    instrumentation: Optional[Instrumentation]
                    ) -> List[JobResult]:
    """Submit batches to a process pool, keeping bounded work in flight."""
    max_inflight = config.workers * _INFLIGHT_PER_WORKER
    ordered: dict = {}
    pending: dict = {}
    with ProcessPoolExecutor(max_workers=config.workers) as pool:
        for position, batch in enumerate(_batches(jobs, config.batch_size)):
            while len(pending) >= max_inflight:
                done, _ = wait(tuple(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    ordered[pending.pop(future)] = future.result()
            pending[pool.submit(_run_batch, batch)] = position
        for future, position in pending.items():
            ordered[position] = future.result()
    results: List[JobResult] = []
    for position in sorted(ordered):
        batch_results: Tuple[JobResult, ...] = ordered[position]
        _record(batch_results, instrumentation)
        results.extend(batch_results)
    return results
