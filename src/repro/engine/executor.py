"""Batched, optionally parallel execution of assessment jobs.

The executor takes an iterable of :class:`~repro.engine.jobs.AssessmentJob`
and returns one :class:`~repro.engine.jobs.JobResult` per job, in input
order.  Jobs are grouped into batches of :attr:`EngineConfig.batch_size`;
with ``workers == 0`` the batches run inline (the serial reference
path), otherwise they are shipped to a
:class:`concurrent.futures.ProcessPoolExecutor` with a bounded number of
in-flight batches so a fleet-sized job stream never materialises in
memory all at once.

**Parallel is bit-identical to serial.**  Both paths run the same
:func:`_run_batch` function, and every job builds its own detector whose
seed derives only from the job's identity (:func:`job_seed` — a CRC of
the detector name, job id and job seed).  No detector state, RNG
position, cache content or scheduling order can leak between jobs, so
the results are a pure function of the job list — regardless of batch
size, worker count, or which worker ran what.

**Observability crosses the pool the same way results do.**  Module
state (hooks, metric registries) is process-local, so a worker records
spans and metrics into a throwaway context and returns a
:class:`~repro.obs.WorkerTelemetry` alongside its results; the parent
re-parents the spans under its ``execute`` span, merges the metric
deltas, and re-emits hook events.  Serial execution uses the identical
channel, so the two modes produce the same span tree shape, the same
aggregate counters, and the same hook event counts.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import EngineError
from ..obs import MetricsRegistry, ObsContext, Tracer, WorkerTelemetry
from ..obs.metrics import LATENCY_BUCKETS
from ..obs.tracing import RemoteContext
from .batching import (BATCHED_BATCHES_METRIC, BATCHED_CAPACITY_METRIC,
                       BATCHED_JOBS_METRIC, PACKED_ROWS_METRIC,
                       PACKED_UNIQUE_ROWS_METRIC, AttributionBatch,
                       DetectBatch, PackedJobs, detect_only_result,
                       pack_jobs, plan_detect_batches, run_attribution_batch,
                       run_detect_batch, unpack_jobs)
from .cache import shared_cache
from .detectors import build_detector
from .instrument import Instrumentation, emit_spans
from .jobs import AssessmentJob, JobResult

__all__ = ["EngineConfig", "job_seed", "run_job", "execute_jobs"]

#: Valid values of :attr:`EngineConfig.detect_mode`.
DETECT_MODES = ("per_item", "batched")

#: Cap on batches submitted but not yet collected per worker.
_INFLIGHT_PER_WORKER = 2

#: Metric names the worker channel populates.
JOBS_METRIC = "repro_engine_jobs_total"
POSITIVES_METRIC = "repro_engine_positives_total"
DETECT_SECONDS_METRIC = "repro_engine_detect_seconds"
CACHE_HITS_METRIC = "repro_engine_baseline_cache_hits_total"
CACHE_MISSES_METRIC = "repro_engine_baseline_cache_misses_total"
INFLIGHT_GAUGE = "repro_engine_inflight_batches"


@dataclass(frozen=True)
class EngineConfig:
    """Executor knobs.

    Attributes:
        workers: process-pool size; ``0`` (the default) runs the serial
            reference path inline — bit-identical, no pool overhead.
        batch_size: jobs per executor task.  Larger batches amortise
            pickling; smaller ones balance better across workers.
        detect_mode: ``"per_item"`` runs every job's full pipeline
            individually; ``"batched"`` stacks funnel-family jobs of
            equal series length and scores each stack in one
            :meth:`~repro.core.funnel.Funnel.detect_batch` call, with
            only the jobs that declared a change proceeding to the
            per-item DiD attribution stage.  The two modes are
            bit-identical in results (see :mod:`repro.engine.batching`);
            batched is the throughput mode.
    """

    workers: int = 0
    batch_size: int = 16
    detect_mode: str = "per_item"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise EngineError("workers must be >= 0, got %d" % self.workers)
        if self.batch_size < 1:
            raise EngineError(
                "batch_size must be >= 1, got %d" % self.batch_size)
        if self.detect_mode not in DETECT_MODES:
            raise EngineError(
                "detect_mode must be one of %s, got %r"
                % ("/".join(DETECT_MODES), self.detect_mode))


def job_seed(job: AssessmentJob) -> int:
    """The deterministic seed for ``job``'s detector.

    Derived from the detector name and the job's identity alone —
    never from scheduling — so a job's randomness (e.g. CUSUM's
    bootstrap shuffles) is the same on any worker, in any batch.
    """
    token = "%s:%d:%d" % (job.detector.name, job.job_id, job.seed)
    return zlib.crc32(token.encode("utf-8"))


def run_job(job: AssessmentJob) -> JobResult:
    """Assess one job with a freshly built, deterministically seeded detector."""
    detector = build_detector(job.detector, seed=job_seed(job))
    return detector.assess(job)


def _run_batch(jobs: Sequence[AssessmentJob]) -> List[JobResult]:
    """The one batch body both the serial and the pooled paths run."""
    return [run_job(job) for job in jobs]


def _run_batch_observed(jobs: Sequence[AssessmentJob],
                        remote: RemoteContext, position: int
                        ) -> Tuple[List[JobResult], WorkerTelemetry]:
    """:func:`_run_batch` plus worker-side telemetry capture.

    Runs in the pool worker (or inline, serially): spans for the batch,
    each job and each detector stage, metric counters/histograms, and
    the baseline-cache hit/miss delta this batch caused in *this*
    process.  Everything returned is picklable; the parent re-parents
    and merges it via :meth:`~repro.obs.ObsContext.absorb`.
    """
    tracer = Tracer(remote=remote)
    metrics = MetricsRegistry()
    jobs_total = metrics.counter(JOBS_METRIC, help="Jobs assessed.")
    positives = metrics.counter(POSITIVES_METRIC,
                                help="Jobs assessed positive.")
    latency = metrics.histogram(
        DETECT_SECONDS_METRIC,
        help="Detector stage latency per job.", buckets=LATENCY_BUCKETS)
    cache = shared_cache()
    hits_before, misses_before = cache.counters()

    results: List[JobResult] = []
    with tracer.span("batch", batch=position, jobs=len(jobs)):
        for job in jobs:
            detector = job.detector.name
            with tracer.span("job", detector=detector, job_id=job.job_id,
                             entity=job.entity, metric=job.metric) as span:
                result = run_job(job)
            stage_start = span.start_unix
            for stage, seconds in result.timings:
                tracer.record(stage, seconds, parent_id=span.span_id,
                              start_unix=stage_start, detector=detector)
                latency.observe(seconds, detector=detector, stage=stage)
                stage_start += seconds
            jobs_total.inc(detector=detector)
            if result.positive:
                positives.inc(detector=detector)
            results.append(result)

    if cache.hits > hits_before:
        metrics.counter(CACHE_HITS_METRIC,
                        help="Baseline-stats cache hits.").inc(
            cache.hits - hits_before)
    if cache.misses > misses_before:
        metrics.counter(CACHE_MISSES_METRIC,
                        help="Baseline-stats cache misses.").inc(
            cache.misses - misses_before)
    return results, WorkerTelemetry(spans=tracer.export(),
                                    metrics=metrics.snapshot())


def _run_batch_packed(packed: PackedJobs) -> List[JobResult]:
    """:func:`_run_batch` on a deduplicated payload (pool submissions).

    Unpacking restores content-identical job arrays, so results are
    bitwise the results of the unpacked batch — only the pickle volume
    changes.
    """
    return _run_batch(unpack_jobs(packed))


def _run_batch_packed_observed(packed: PackedJobs, remote: RemoteContext,
                               position: int
                               ) -> Tuple[List[JobResult], WorkerTelemetry]:
    return _run_batch_observed(unpack_jobs(packed), remote, position)


def _run_detect_batch_observed(batch: DetectBatch, remote: RemoteContext,
                               position: int):
    """:func:`~repro.engine.batching.run_detect_batch` with telemetry."""
    tracer = Tracer(remote=remote)
    metrics = MetricsRegistry()
    cache = shared_cache()
    hits_before, misses_before = cache.counters()
    with tracer.span("detect_batch", batch=position, jobs=batch.size,
                     detector=batch.spec.name,
                     series_bins=int(batch.stack.shape[1])):
        records = run_detect_batch(batch)
    jobs_total = metrics.counter(JOBS_METRIC, help="Jobs assessed.")
    latency = metrics.histogram(
        DETECT_SECONDS_METRIC,
        help="Detector stage latency per job.", buckets=LATENCY_BUCKETS)
    for record in records:
        jobs_total.inc(detector=batch.spec.name)
        latency.observe(record.detect_seconds, detector=batch.spec.name,
                        stage="detect")
    if batch.spec.name == "improved_sst":
        positives = sum(1 for r in records if r.changes)
        if positives:
            metrics.counter(POSITIVES_METRIC,
                            help="Jobs assessed positive.").inc(
                positives, detector=batch.spec.name)
    metrics.counter(BATCHED_BATCHES_METRIC,
                    help="Stacked detect batches scored.").inc()
    metrics.counter(BATCHED_JOBS_METRIC,
                    help="Jobs scored through stacked batches.").inc(
        batch.size)
    if cache.hits > hits_before:
        metrics.counter(CACHE_HITS_METRIC,
                        help="Baseline-stats cache hits.").inc(
            cache.hits - hits_before)
    if cache.misses > misses_before:
        metrics.counter(CACHE_MISSES_METRIC,
                        help="Baseline-stats cache misses.").inc(
            cache.misses - misses_before)
    return records, WorkerTelemetry(spans=tracer.export(),
                                    metrics=metrics.snapshot())


def _run_attribution_batch_observed(batch: AttributionBatch,
                                    remote: RemoteContext, position: int):
    """Attribution stage with telemetry (funnel positives only)."""
    tracer = Tracer(remote=remote)
    metrics = MetricsRegistry()
    with tracer.span("attribute_batch", batch=position,
                     jobs=len(batch.positions)):
        out = run_attribution_batch(batch)
    latency = metrics.histogram(
        DETECT_SECONDS_METRIC,
        help="Detector stage latency per job.", buckets=LATENCY_BUCKETS)
    positives = metrics.counter(POSITIVES_METRIC,
                                help="Jobs assessed positive.")
    for _position, result in out:
        for stage, seconds in result.timings:
            if stage != "detect":
                latency.observe(seconds, detector=result.detector,
                                stage=stage)
        if result.positive:
            positives.inc(detector=result.detector)
    return out, WorkerTelemetry(spans=tracer.export(),
                                metrics=metrics.snapshot())


def _batches(jobs: Iterable[AssessmentJob],
             size: int) -> Iterator[List[AssessmentJob]]:
    batch: List[AssessmentJob] = []
    for job in jobs:
        batch.append(job)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def _record(results: Sequence[JobResult],
            instrumentation: Optional[Instrumentation]) -> None:
    """Fold one batch's results into the compat Instrumentation.

    Always local-only (``mirror=False``): when observability is on,
    these numbers reach the obs registry through the worker channel,
    and mirroring here too would double-count.
    """
    if instrumentation is None:
        return
    instrumentation.count("jobs", len(results), mirror=False)
    instrumentation.count("positives",
                          sum(1 for r in results if r.positive),
                          mirror=False)
    stage_totals: dict = {}
    for result in results:
        for stage, seconds in result.timings:
            calls, total = stage_totals.get(stage, (0, 0.0))
            stage_totals[stage] = (calls + 1, total + seconds)
    for stage, (calls, total) in stage_totals.items():
        instrumentation.add_time(stage, total, items=calls, calls=calls,
                                 mirror=False)


def _resolve_obs(instrumentation: Optional[Instrumentation],
                 obs: Optional[ObsContext]) -> Optional[ObsContext]:
    if obs is None and instrumentation is not None:
        obs = instrumentation.obs
    if obs is not None and not obs.enabled:
        return None
    return obs


def execute_jobs(jobs: Iterable[AssessmentJob],
                 config: Optional[EngineConfig] = None,
                 instrumentation: Optional[Instrumentation] = None,
                 obs: Optional[ObsContext] = None) -> List[JobResult]:
    """Run every job and return results in input order.

    Args:
        jobs: the job stream (consumed lazily in the parallel path).
        config: worker/batch sizing; defaults to serial execution.
        instrumentation: optional sink for the run's ``execute`` wall
            time, per-stage detector timings, and job/positive counters.
        obs: optional observability context.  Defaults to
            ``instrumentation.obs`` when one is attached; when enabled,
            the run produces a full span tree and metric set that is
            identical in shape and counts whether execution is serial
            or pooled.
    """
    config = config or EngineConfig()
    obs = _resolve_obs(instrumentation, obs)
    started = time.perf_counter()
    if obs is not None:
        with obs.tracer.span("execute", workers=config.workers,
                             batch_size=config.batch_size,
                             detect_mode=config.detect_mode):
            remote = obs.remote_context()
            if config.detect_mode == "batched":
                results = _execute_batched(jobs, config, instrumentation,
                                           obs, remote)
            elif config.workers == 0:
                results = _execute_serial_observed(
                    jobs, config, instrumentation, obs, remote)
            else:
                results = _execute_pooled(jobs, config, instrumentation,
                                          obs, remote)
    elif config.detect_mode == "batched":
        results = _execute_batched(jobs, config, instrumentation, None, None)
    elif config.workers == 0:
        results = []
        for batch in _batches(jobs, config.batch_size):
            batch_results = _run_batch(batch)
            _record(batch_results, instrumentation)
            results.extend(batch_results)
    else:
        results = _execute_pooled(jobs, config, instrumentation, None, None)
    if instrumentation is not None:
        instrumentation.add_time("execute", time.perf_counter() - started,
                                 items=len(results), mirror=False)
    return results


def _absorb(obs: ObsContext, telemetry: WorkerTelemetry) -> None:
    obs.absorb(telemetry)
    emit_spans(telemetry.spans)


def _execute_serial_observed(jobs: Iterable[AssessmentJob],
                             config: EngineConfig,
                             instrumentation: Optional[Instrumentation],
                             obs: ObsContext,
                             remote: RemoteContext) -> List[JobResult]:
    """Serial path through the same telemetry channel the pool uses."""
    results: List[JobResult] = []
    for position, batch in enumerate(_batches(jobs, config.batch_size)):
        batch_results, telemetry = _run_batch_observed(batch, remote,
                                                       position)
        _absorb(obs, telemetry)
        _record(batch_results, instrumentation)
        results.extend(batch_results)
    return results


def _execute_pooled(jobs: Iterable[AssessmentJob], config: EngineConfig,
                    instrumentation: Optional[Instrumentation],
                    obs: Optional[ObsContext],
                    remote: Optional[RemoteContext]) -> List[JobResult]:
    """Submit batches to a process pool, keeping bounded work in flight."""
    max_inflight = config.workers * _INFLIGHT_PER_WORKER
    ordered: dict = {}
    pending: dict = {}
    inflight_peak = 0
    with ProcessPoolExecutor(max_workers=config.workers) as pool:
        for position, batch in enumerate(_batches(jobs, config.batch_size)):
            while len(pending) >= max_inflight:
                done, _ = wait(tuple(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    ordered[pending.pop(future)] = future.result()
            # Ship the batch with duplicated series rows deduplicated:
            # a change's peer-control series repeat across its jobs, so
            # packing cuts the pickle volume roughly by the control
            # fan-out (the fix for the 2-worker slowdown in
            # BENCH_engine.json).
            packed = pack_jobs(batch)
            if obs is not None:
                _count_packing(obs, packed)
                future = pool.submit(_run_batch_packed_observed, packed,
                                     remote, position)
            else:
                future = pool.submit(_run_batch_packed, packed)
            pending[future] = position
            inflight_peak = max(inflight_peak, len(pending))
        for future, position in pending.items():
            ordered[position] = future.result()
    if obs is not None:
        obs.metrics.gauge(
            INFLIGHT_GAUGE,
            help="Peak batches in flight across the pool.").set(
            float(inflight_peak))
    results: List[JobResult] = []
    for position in sorted(ordered):
        if obs is not None:
            batch_results, telemetry = ordered[position]
            _absorb(obs, telemetry)
        else:
            batch_results = ordered[position]
        _record(batch_results, instrumentation)
        results.extend(batch_results)
    return results


def _count_packing(obs: ObsContext, packed: PackedJobs) -> None:
    obs.metrics.counter(
        PACKED_ROWS_METRIC,
        help="Series rows referenced by packed pool batches.").inc(
        packed.total_rows)
    obs.metrics.counter(
        PACKED_UNIQUE_ROWS_METRIC,
        help="Distinct series rows actually pickled to workers.").inc(
        len(packed.rows))


def _run_stage(pool: Optional[ProcessPoolExecutor], max_inflight: int,
               tasks: Sequence, observed_fn, plain_fn,
               obs: Optional[ObsContext],
               remote: Optional[RemoteContext]) -> List:
    """Run one batched-mode stage's tasks, results in task order.

    Inline when ``pool`` is ``None``; otherwise submitted with the same
    bounded-inflight discipline as the per-item pooled path.  Worker
    telemetry is absorbed in task order, so the resulting span stream is
    deterministic for a given job list.
    """
    outputs: List = [None] * len(tasks)
    if pool is None:
        for position, task in enumerate(tasks):
            if obs is not None:
                outputs[position], telemetry = observed_fn(task, remote,
                                                           position)
                _absorb(obs, telemetry)
            else:
                outputs[position] = plain_fn(task)
        return outputs
    pending: dict = {}
    for position, task in enumerate(tasks):
        while len(pending) >= max_inflight:
            done, _ = wait(tuple(pending), return_when=FIRST_COMPLETED)
            for future in done:
                outputs[pending.pop(future)] = future.result()
        if obs is not None:
            future = pool.submit(observed_fn, task, remote, position)
        else:
            future = pool.submit(plain_fn, task)
        pending[future] = position
    for future, position in pending.items():
        outputs[position] = future.result()
    if obs is not None:
        for position, output in enumerate(outputs):
            outputs[position], telemetry = output
            _absorb(obs, telemetry)
    return outputs


def _execute_batched(jobs: Iterable[AssessmentJob], config: EngineConfig,
                     instrumentation: Optional[Instrumentation],
                     obs: Optional[ObsContext],
                     remote: Optional[RemoteContext]) -> List[JobResult]:
    """The two-stage batched mode: stacked detect, then per-item DiD.

    Funnel-family jobs are grouped by series length into stacked
    batches; each batch crosses the pool boundary as one ndarray.  Only
    jobs whose batched detect declared a change are packed (control and
    history rows deduplicated) and shipped to the attribution stage.
    Baseline detectors fall through to the per-item path.  Results are
    bitwise the per-item results, in input order.
    """
    job_list = list(jobs)
    detect_batches, passthrough = plan_detect_batches(job_list,
                                                      config.batch_size)
    if obs is not None:
        obs.metrics.counter(
            BATCHED_CAPACITY_METRIC,
            help="Stacked-batch slot capacity (batches x batch_size)."
        ).inc(len(detect_batches) * config.batch_size)
    max_inflight = max(config.workers * _INFLIGHT_PER_WORKER, 1)
    results: dict = {}
    pool = (ProcessPoolExecutor(max_workers=config.workers)
            if config.workers else None)
    try:
        detect_outputs = _run_stage(pool, max_inflight, detect_batches,
                                    _run_detect_batch_observed,
                                    run_detect_batch, obs, remote)
        attr_items: List[tuple] = []
        for batch, records in zip(detect_batches, detect_outputs):
            for record in records:
                job = job_list[record.position]
                if batch.spec.name == "funnel" and record.changes:
                    attr_items.append((record.position, job,
                                       record.changes[0],
                                       record.detect_seconds))
                else:
                    results[record.position] = detect_only_result(
                        job, batch.spec.name, record)
        attr_items.sort(key=lambda item: item[0])
        attr_batches = []
        for start in range(0, len(attr_items), config.batch_size):
            chunk = attr_items[start:start + config.batch_size]
            packed = pack_jobs([job for _, job, _, _ in chunk])
            if obs is not None and pool is not None:
                _count_packing(obs, packed)
            attr_batches.append(AttributionBatch(
                packed=packed,
                positions=tuple(item[0] for item in chunk),
                changes=tuple(item[2] for item in chunk),
                detect_seconds=tuple(item[3] for item in chunk),
            ))
        for output in _run_stage(pool, max_inflight, attr_batches,
                                 _run_attribution_batch_observed,
                                 run_attribution_batch, obs, remote):
            for position, result in output:
                results[position] = result

        passthrough_batches = list(_batches(
            [job_list[p] for p in passthrough], config.batch_size))
        if pool is None:
            passthrough_outputs = _run_stage(
                None, max_inflight, passthrough_batches,
                _run_batch_observed, _run_batch, obs, remote)
        else:
            packed_batches = []
            for batch in passthrough_batches:
                packed = pack_jobs(batch)
                if obs is not None:
                    _count_packing(obs, packed)
                packed_batches.append(packed)
            passthrough_outputs = _run_stage(
                pool, max_inflight, packed_batches,
                _run_batch_packed_observed, _run_batch_packed, obs, remote)
        cursor = 0
        for batch, output in zip(passthrough_batches, passthrough_outputs):
            for result in output:
                results[passthrough[cursor]] = result
                cursor += 1
    finally:
        if pool is not None:
            pool.shutdown()
    ordered = [results[position] for position in range(len(job_list))]
    _record(ordered, instrumentation)
    return ordered
