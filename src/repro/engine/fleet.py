"""A synthetic fleet scenario: the `repro assess-fleet` data source.

:class:`SyntheticFleetSource` is a self-contained *series provider*
(see :mod:`repro.engine.planner`): it generates a fleet topology, a
stream of dark/full-launched software changes against it, and — lazily,
per entity and KPI — the measurement windows the planner fetches.
A configurable fraction of the changes genuinely impact their treated
entities (a level shift injected at the change bin), giving the engine
report a ground truth to score precision/recall against.

Determinism: every entity's base series derives from a CRC of
``(scenario seed, entity type, entity, metric)`` and each change owns a
disjoint window of the timeline, so any window can be regenerated
identically in any process, in any order — the property the executor's
bit-identical parallelism relies on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..changes.change import SoftwareChange
from ..changes.rollout import RolloutPolicy, plan_rollout
from ..exceptions import EngineError
from ..synthetic.fleetgen import FleetSpec, generate_fleet
from ..topology.impact import ImpactSet, identify_impact_set
from ..types import ChangeKind, LaunchMode
from .instrument import Instrumentation
from .jobs import AssessmentJob, DetectorSpec
from .planner import FetchedWindow, plan_change_jobs

__all__ = ["FleetScenarioSpec", "SyntheticFleetSource"]

#: Bins per synthetic day (1-minute bins).
DAY_BINS = 24 * 60

#: (level, noise sigma) per KPI; page views additionally get a daily cycle.
_METRIC_MODELS: Dict[str, Tuple[float, float]] = {
    "memory_utilization": (55.0, 1.6),
    "cpu_context_switch_count": (5200.0, 320.0),
    "page_view_count": (1200.0, 35.0),
}

#: Injected level shifts, in noise-sigma units of the entity's KPI.
_IMPACT_SIGMAS = 8.0


@dataclass(frozen=True)
class FleetScenarioSpec:
    """Shape of one synthetic fleet-assessment scenario.

    Attributes:
        n_services / n_servers: fleet topology size.
        n_changes: software changes to assess (each owns a disjoint
            window of the timeline).
        impact_fraction: fraction of changes that genuinely shift their
            treated entities' KPIs.
        dark_fraction: fraction of changes rolled out as dark launches
            (the rest are full launches, exercising the historical
            control path).
        history_days: days of lead telemetry before the first change —
            the historical control depth.
        window_bins: bins per change window.
        change_offset: bin of the software change inside its window.
        max_control_units: cap on peer-control rows per job (large
            services would otherwise dominate fetch cost).
        seed: scenario seed; every derived series is a pure function of
            it.
    """

    n_services: int = 6
    n_servers: int = 48
    n_changes: int = 8
    impact_fraction: float = 0.5
    dark_fraction: float = 0.75
    history_days: int = 2
    window_bins: int = 240
    change_offset: int = 80
    max_control_units: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_changes < 1:
            raise EngineError("n_changes must be >= 1")
        if not 0.0 <= self.impact_fraction <= 1.0:
            raise EngineError("impact_fraction must be in [0, 1]")
        if not 0.0 <= self.dark_fraction <= 1.0:
            raise EngineError("dark_fraction must be in [0, 1]")
        if self.history_days < 1:
            raise EngineError("history_days must be >= 1")
        if self.window_bins < 60:
            raise EngineError("window_bins must be >= 60")
        if not 30 <= self.change_offset <= self.window_bins - 30:
            raise EngineError(
                "change_offset must leave >= 30 bins on each side of the "
                "window"
            )
        if self.max_control_units < 1:
            raise EngineError("max_control_units must be >= 1")

    @property
    def lead_bins(self) -> int:
        return self.history_days * DAY_BINS

    @property
    def total_bins(self) -> int:
        return self.lead_bins + self.n_changes * self.window_bins


def _stable_seed(*parts: object) -> int:
    return zlib.crc32(":".join(str(p) for p in parts).encode("utf-8"))


class SyntheticFleetSource:
    """Fleet topology + change stream + lazily generated series windows."""

    def __init__(self, spec: Optional[FleetScenarioSpec] = None) -> None:
        self.spec = spec or FleetScenarioSpec()
        self.fleet = generate_fleet(FleetSpec(
            n_services=self.spec.n_services,
            n_servers=self.spec.n_servers,
            seed=self.spec.seed,
        ))
        self._series: Dict[Tuple[str, str, str], np.ndarray] = {}
        self._impact_sets: Dict[str, ImpactSet] = {}
        self._build_changes()

    # -- change stream ---------------------------------------------------------

    def _build_changes(self) -> None:
        spec = self.spec
        rng = np.random.default_rng(_stable_seed(spec.seed, "changes"))
        services = self.fleet.service_names
        self.changes: List[SoftwareChange] = []
        self._ordinal: Dict[str, int] = {}
        self._impactful: Dict[str, bool] = {}
        self._direction: Dict[str, int] = {}
        for k in range(spec.n_changes):
            service = services[int(rng.integers(0, len(services)))]
            hostnames = self.fleet.service(service).hostnames
            dark = (rng.random() < spec.dark_fraction) and len(hostnames) >= 2
            plan = plan_rollout(hostnames, RolloutPolicy(
                mode=LaunchMode.DARK if dark else LaunchMode.FULL,
                seed=int(rng.integers(0, 2 ** 31)),
            ))
            change = SoftwareChange(
                change_id="chg-%04d" % k,
                kind=(ChangeKind.SOFTWARE_UPGRADE if rng.random() < 0.5
                      else ChangeKind.CONFIG_CHANGE),
                service=service,
                hostnames=plan.treated,
                at_time=(spec.lead_bins + k * spec.window_bins
                         + spec.change_offset) * 60,
            )
            self.changes.append(change)
            self._ordinal[change.change_id] = k
            self._impactful[change.change_id] = bool(
                rng.random() < spec.impact_fraction)
            self._direction[change.change_id] = 1 if rng.random() < 0.5 else -1

    def _impact_set(self, change: SoftwareChange) -> ImpactSet:
        cached = self._impact_sets.get(change.change_id)
        if cached is None:
            cached = identify_impact_set(self.fleet, change.service,
                                         change.hostnames)
            self._impact_sets[change.change_id] = cached
        return cached

    # -- series generation -----------------------------------------------------

    def _base_series(self, entity_type: str, entity: str,
                     metric: str) -> np.ndarray:
        """The entity's full-timeline series, before any injected impact."""
        key = (entity_type, entity, metric)
        series = self._series.get(key)
        if series is not None:
            return series
        level, sigma = _METRIC_MODELS[metric]
        rng = np.random.default_rng(
            _stable_seed(self.spec.seed, entity_type, entity, metric))
        t = np.arange(self.spec.total_bins, dtype=np.float64)
        series = level * (0.8 + 0.4 * rng.random()) \
            + rng.normal(0.0, sigma, size=t.size)
        if metric == "page_view_count":
            amplitude = level * (0.25 + 0.15 * rng.random())
            phase = rng.random() * 2.0 * np.pi
            series = series + amplitude * np.sin(
                2.0 * np.pi * t / DAY_BINS + phase)
        self._series[key] = series
        return series

    def _is_treated(self, change: SoftwareChange, entity_type: str,
                    entity: str) -> bool:
        if entity_type == "server":
            return entity in change.hostnames
        if entity_type == "instance":
            return any(entity == "%s@%s" % (change.service, host)
                       for host in change.hostnames)
        return False

    def _window(self, change: SoftwareChange, entity_type: str, entity: str,
                metric: str) -> np.ndarray:
        """The entity's window for ``change``, impact injected if treated."""
        k = self._ordinal[change.change_id]
        start = self.spec.lead_bins + k * self.spec.window_bins
        window = self._base_series(entity_type, entity,
                                   metric)[start:start
                                           + self.spec.window_bins].copy()
        if (self._impactful[change.change_id]
                and self._is_treated(change, entity_type, entity)):
            _, sigma = _METRIC_MODELS[metric]
            shift = self._direction[change.change_id] * _IMPACT_SIGMAS * sigma
            window[self.spec.change_offset:] += shift
        return window

    # -- the provider protocol -------------------------------------------------

    def fetch(self, change: SoftwareChange, entity_type: str, entity: str,
              metric: str) -> FetchedWindow:
        """Materialise one (entity, KPI) window for ``change``."""
        treated = np.atleast_2d(self._window(change, entity_type, entity,
                                             metric))
        impact = self._impact_set(change)
        control = None
        if entity_type in ("server", "instance") and impact.dark_launched:
            peers = (impact.control_hostnames if entity_type == "server"
                     else tuple(i.name for i in impact.cinstances))
            peers = peers[:self.spec.max_control_units]
            control = np.vstack([
                self._window(change, entity_type, peer, metric)
                for peer in peers
            ]) if peers else None
        history = None
        if control is None:
            history = self._history(change, entity_type, entity, metric)
        change_index = self.spec.change_offset
        return FetchedWindow(treated=treated, control=control,
                             history=history, change_index=change_index)

    def _history(self, change: SoftwareChange, entity_type: str, entity: str,
                 metric: str) -> np.ndarray:
        """Same clock window on each of the ``history_days`` previous days."""
        k = self._ordinal[change.change_id]
        start = self.spec.lead_bins + k * self.spec.window_bins
        base = self._base_series(entity_type, entity, metric)
        rows = [base[start - d * DAY_BINS:
                     start - d * DAY_BINS + self.spec.window_bins]
                for d in range(1, self.spec.history_days + 1)]
        return np.vstack(rows)

    def observed_series(self, entity_type: str, entity: str,
                        metric: str) -> np.ndarray:
        """The full timeline as the fleet's agents would measure it.

        The base series plus every impactful change's injected level
        shift inside that change's own window — i.e. exactly the
        concatenation of the per-change :meth:`fetch` windows (windows
        are disjoint by construction).  This is what the live replay
        driver streams into a metric store bin by bin.
        """
        series = self._base_series(entity_type, entity, metric).copy()
        for change in self.changes:
            if not (self._impactful[change.change_id]
                    and self._is_treated(change, entity_type, entity)):
                continue
            k = self._ordinal[change.change_id]
            start = self.spec.lead_bins + k * self.spec.window_bins
            _, sigma = _METRIC_MODELS[metric]
            shift = self._direction[change.change_id] * _IMPACT_SIGMAS * sigma
            series[start + self.spec.change_offset:
                   start + self.spec.window_bins] += shift
        return series

    def history(self, change: SoftwareChange, entity_type: str, entity: str,
                metric: str) -> np.ndarray:
        """Public historical control (the rows :meth:`fetch` would use).

        The replay driver passes this as the live pipeline's history
        provider: the store's own recent past contains the impacts
        earlier changes injected, whereas these rows are clean.
        """
        return self._history(change, entity_type, entity, metric)

    def truth(self, change: SoftwareChange, entity_type: str, entity: str,
              metric: str) -> bool:
        """Ground truth: did ``change`` impact this entity's KPI?"""
        return (self._impactful[change.change_id]
                and self._is_treated(change, entity_type, entity))

    # -- planning --------------------------------------------------------------

    def plan_jobs(self, specs: Sequence[DetectorSpec],
                  instrumentation: Optional[Instrumentation] = None
                  ) -> Iterator[AssessmentJob]:
        """All jobs for the scenario: every change x entity x KPI x spec."""
        job_id = 0
        for change in self.changes:
            for spec in specs:
                for job in plan_change_jobs(self.fleet, change, self, spec,
                                            start_id=job_id,
                                            instrumentation=instrumentation):
                    job_id = job.job_id + 1
                    yield job
