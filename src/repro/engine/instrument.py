"""Counters, stage timings and observer hooks for the assessment engine.

Every engine stage — ``plan`` (impact-set expansion), ``fetch`` (series
materialisation), ``detect`` (SST/baseline scoring), ``attribute`` (DiD
comparison) and ``execute`` (whole batched runs) — reports its item
count and wall-clock duration here.  Two consumption styles:

* **pull** — an :class:`Instrumentation` object accumulates per-stage
  totals; :meth:`Instrumentation.snapshot` returns a JSON-safe summary
  (this is what ``repro assess-fleet`` prints);
* **push** — module-level hooks registered with :func:`add_hook`
  receive one event dict per stage completion, for live dashboards or
  test probes.

Hook failures are deliberately not swallowed: a broken observer should
fail loudly in tests rather than silently drop telemetry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

__all__ = ["StageStats", "Instrumentation", "add_hook", "remove_hook",
           "clear_hooks", "emit"]

Hook = Callable[[dict], None]

_HOOKS: List[Hook] = []


def add_hook(hook: Hook) -> Hook:
    """Register ``hook`` to receive one event dict per engine stage."""
    _HOOKS.append(hook)
    return hook


def remove_hook(hook: Hook) -> None:
    """Unregister a hook added with :func:`add_hook` (idempotent)."""
    if hook in _HOOKS:
        _HOOKS.remove(hook)


def clear_hooks() -> None:
    """Remove every registered hook (test teardown helper)."""
    del _HOOKS[:]


def emit(event: dict) -> None:
    """Deliver ``event`` to every registered hook, in registration order."""
    for hook in tuple(_HOOKS):
        hook(event)


@dataclass
class StageStats:
    """Accumulated totals for one engine stage."""

    calls: int = 0
    items: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"calls": self.calls, "items": self.items,
                "seconds": round(self.seconds, 6)}


class Instrumentation:
    """Accumulates stage timings and named counters for one engine run.

    Example:
        >>> inst = Instrumentation()
        >>> with inst.timed("plan", items=3):
        ...     pass
        >>> inst.count("jobs", 3)
        >>> sorted(inst.snapshot()["stages"])
        ['plan']
    """

    def __init__(self) -> None:
        self.stages: Dict[str, StageStats] = {}
        self.counters: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, stage: str, seconds: float, items: int = 0,
                 calls: int = 1) -> None:
        """Record ``seconds`` of wall-clock spent in ``stage``.

        Emits a ``{"kind": "stage", ...}`` event to the registered hooks.
        """
        stats = self.stages.setdefault(stage, StageStats())
        stats.calls += calls
        stats.items += items
        stats.seconds += seconds
        emit({"kind": "stage", "stage": stage, "seconds": seconds,
              "items": items})

    @contextmanager
    def timed(self, stage: str, items: int = 0) -> Iterator[None]:
        """Context manager timing one ``stage`` invocation."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(stage, time.perf_counter() - started, items=items)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe summary of every stage and counter recorded so far."""
        return {
            "stages": {name: stats.as_dict()
                       for name, stats in sorted(self.stages.items())},
            "counters": dict(sorted(self.counters.items())),
        }
