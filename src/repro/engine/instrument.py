"""Counters, stage timings and observer hooks for the assessment engine.

This module is now a thin compatibility shim over :mod:`repro.obs` —
the structured tracing/metrics layer.  :class:`Instrumentation` keeps
its original pull API (per-stage totals, named counters,
:meth:`Instrumentation.snapshot`) and push API (module-level hooks
receiving one event dict per stage completion), so pre-obs callers and
tests keep working unchanged.  When an :class:`~repro.obs.ObsContext`
is attached, every recording is mirrored into it:

* :meth:`Instrumentation.timed` opens a real span (so planner stages
  appear in the run's trace with correct parentage);
* :meth:`Instrumentation.add_time` records a completed span and feeds
  the ``repro_engine_stage_seconds`` histogram;
* :meth:`Instrumentation.count` increments a
  ``repro_engine_<name>_total`` counter.

The executor suppresses the mirroring (``mirror=False``) for the stats
it derives from job results, because those flow through the worker
telemetry channel instead — otherwise pooled runs would double-count.

Hook failures are deliberately not swallowed: a broken observer should
fail loudly in tests rather than silently drop telemetry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..obs import ObsContext, SpanRecord
from ..obs.metrics import LATENCY_BUCKETS

__all__ = ["StageStats", "Instrumentation", "add_hook", "remove_hook",
           "clear_hooks", "emit", "emit_spans", "has_hooks",
           "STAGE_SECONDS_METRIC"]

Hook = Callable[[dict], None]

_HOOKS: List[Hook] = []

#: Histogram fed by every mirrored stage timing.
STAGE_SECONDS_METRIC = "repro_engine_stage_seconds"


def add_hook(hook: Hook) -> Hook:
    """Register ``hook`` to receive one event dict per engine stage."""
    _HOOKS.append(hook)
    return hook


def remove_hook(hook: Hook) -> None:
    """Unregister a hook added with :func:`add_hook` (idempotent)."""
    if hook in _HOOKS:
        _HOOKS.remove(hook)


def clear_hooks() -> None:
    """Remove every registered hook (test teardown helper)."""
    del _HOOKS[:]


def has_hooks() -> bool:
    """True when at least one hook is registered (cheap emit guard)."""
    return bool(_HOOKS)


def emit(event: dict) -> None:
    """Deliver ``event`` to every registered hook, in registration order."""
    for hook in tuple(_HOOKS):
        hook(event)


def emit_spans(records: Iterable[SpanRecord]) -> None:
    """Deliver worker-channel spans to the hooks as ``span`` events.

    This is the fix for the old gap where module-level hooks were
    process-local: pool workers record spans instead of calling hooks,
    the executor ships them back, and this function re-emits them in
    the parent — so serial and pooled runs deliver the same events.
    """
    if not _HOOKS:
        return
    for record in records:
        emit({"kind": "span", "name": record.name,
              "seconds": record.duration_s, "span_id": record.span_id,
              "parent_id": record.parent_id,
              "attrs": dict(record.attrs)})


@dataclass
class StageStats:
    """Accumulated totals for one engine stage."""

    calls: int = 0
    items: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"calls": self.calls, "items": self.items,
                "seconds": round(self.seconds, 6)}


class Instrumentation:
    """Accumulates stage timings and named counters for one engine run.

    Example:
        >>> inst = Instrumentation()
        >>> with inst.timed("plan", items=3):
        ...     pass
        >>> inst.count("jobs", 3)
        >>> sorted(inst.snapshot()["stages"])
        ['plan']
    """

    def __init__(self, obs: Optional[ObsContext] = None) -> None:
        self.stages: Dict[str, StageStats] = {}
        self.counters: Dict[str, int] = {}
        self.obs = obs

    # -- recording -----------------------------------------------------------

    def _obs_enabled(self) -> bool:
        return self.obs is not None and self.obs.enabled

    def count(self, name: str, n: int = 1, mirror: bool = True) -> None:
        """Increment the counter ``name`` by ``n``.

        Mirrored into the obs registry as ``repro_engine_<name>_total``
        unless ``mirror`` is false (the executor's counts arrive through
        the worker channel instead).
        """
        self.counters[name] = self.counters.get(name, 0) + n
        if mirror and self._obs_enabled():
            self.obs.metrics.counter(
                "repro_engine_%s_total" % name,
                help="Engine counter %r." % name).inc(n)

    def _observe_stage(self, stage: str, seconds: float) -> None:
        self.obs.metrics.histogram(
            STAGE_SECONDS_METRIC,
            help="Wall-clock seconds per engine stage invocation.",
            buckets=LATENCY_BUCKETS).observe(seconds, stage=stage)

    def add_time(self, stage: str, seconds: float, items: int = 0,
                 calls: int = 1, mirror: bool = True) -> None:
        """Record ``seconds`` of wall-clock spent in ``stage``.

        Emits a ``{"kind": "stage", ...}`` event to the registered
        hooks; with an attached obs context (and ``mirror`` true) also
        records a completed span and a histogram observation.
        """
        stats = self.stages.setdefault(stage, StageStats())
        stats.calls += calls
        stats.items += items
        stats.seconds += seconds
        emit({"kind": "stage", "stage": stage, "seconds": seconds,
              "items": items})
        if mirror and self._obs_enabled():
            self.obs.tracer.record(stage, seconds, items=items)
            self._observe_stage(stage, seconds)

    @contextmanager
    def timed(self, stage: str, items: int = 0) -> Iterator[None]:
        """Context manager timing one ``stage`` invocation.

        With an obs context attached, the invocation is a live span —
        nested ``timed`` blocks (and executor work inside them) parent
        correctly.
        """
        if self._obs_enabled():
            started = time.perf_counter()
            with self.obs.tracer.span(stage, items=items):
                try:
                    yield
                finally:
                    seconds = time.perf_counter() - started
                    self.add_time(stage, seconds, items=items,
                                  mirror=False)
                    self._observe_stage(stage, seconds)
        else:
            started = time.perf_counter()
            try:
                yield
            finally:
                self.add_time(stage, time.perf_counter() - started,
                              items=items)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe summary of every stage and counter recorded so far."""
        return {
            "stages": {name: stats.as_dict()
                       for name, stats in sorted(self.stages.items())},
            "counters": dict(sorted(self.counters.items())),
        }
