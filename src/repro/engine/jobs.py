"""The engine's job model: what to assess, with what, and the answer.

An :class:`AssessmentJob` is the unit of work: one (software change,
entity, KPI) item plus the :class:`DetectorSpec` naming the method that
must assess it.  Jobs are frozen and picklable — numpy payloads plus
parameter dataclasses — so the executor can ship them to process
workers unchanged.

A :class:`Detector` (the protocol every method implements) turns a job
into a :class:`JobResult`.  :class:`ItemOutcome` is the method-agnostic
detection answer the evaluation harness consumes; it used to live in
:mod:`repro.eval.runner` and is re-exported from there for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..types import Verdict

__all__ = ["ItemOutcome", "DetectorSpec", "AssessmentJob", "JobResult",
           "Detector"]


@dataclass(frozen=True)
class ItemOutcome:
    """One method's answer for one item."""

    positive: bool
    detection_index: Optional[int] = None

    def delay(self, truth_start: int) -> Optional[int]:
        if self.detection_index is None:
            return None
        return max(0, self.detection_index - truth_start)


@dataclass(frozen=True)
class DetectorSpec:
    """A serialisable recipe for building a registered detector.

    ``options`` is a sorted tuple of ``(key, value)`` pairs (parameter
    dataclasses, thresholds, ...) forwarded to the detector factory.
    Specs — not detector instances — travel with jobs, so every worker
    (and every job, see :func:`repro.engine.executor.execute_jobs`)
    builds its own detector deterministically.
    """

    name: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(cls, name: str, **options: object) -> "DetectorSpec":
        """Build a spec, dropping ``None``-valued options."""
        kept = tuple(sorted((key, value) for key, value in options.items()
                            if value is not None))
        return cls(name=name, options=kept)

    def option(self, key: str, default: object = None) -> object:
        for name, value in self.options:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class AssessmentJob:
    """One (change, entity, KPI, detector) unit of engine work.

    Attributes:
        job_id: caller-assigned identity; with ``seed`` and the detector
            name it determines the detector's random seed, which is what
            makes parallel execution bit-identical to serial.
        detector: the method that must assess this job.
        change_index: bin index of the software change in ``treated``.
        treated: treated measurements, ``(units, bins)`` or one series.
        control: peer control matrix (cservers/cinstances) or ``None``.
        history: historical control ``(days, bins)`` or ``None``.
        change_id / entity_type / entity / metric: identity labels for
            reports; empty strings when unknown (corpus items).
        baseline_key: cache key for the pre-change baseline statistics.
            Callers must guarantee that two jobs sharing a key have
            bit-identical pre-change treated aggregates; ``None``
            disables caching for the job.
        truth_positive: ground-truth label when the caller knows it.
        seed: extra entropy mixed into the detector seed.
    """

    job_id: int
    detector: DetectorSpec
    change_index: int
    treated: np.ndarray
    control: Optional[np.ndarray] = None
    history: Optional[np.ndarray] = None
    change_id: str = ""
    entity_type: str = ""
    entity: str = ""
    metric: str = ""
    baseline_key: Optional[str] = None
    truth_positive: Optional[bool] = None
    seed: int = 0

    @property
    def treated_aggregate(self) -> np.ndarray:
        """The treated units' mean series (detection input)."""
        return np.atleast_2d(np.asarray(self.treated,
                                        dtype=np.float64)).mean(axis=0)


@dataclass(frozen=True)
class JobResult:
    """A detector's full answer for one job.

    ``timings`` holds per-stage wall-clock seconds measured inside the
    detector (``detect``, ``attribute``); the executor folds them into
    the run's :class:`~repro.engine.instrument.Instrumentation`.
    """

    job_id: int
    detector: str
    outcome: ItemOutcome
    verdict: Optional[Verdict] = None
    did_estimate: Optional[float] = None
    timings: Tuple[Tuple[str, float], ...] = field(default=())

    @property
    def positive(self) -> bool:
        return self.outcome.positive


@runtime_checkable
class Detector(Protocol):
    """The one contract every assessment method implements.

    Implementations must be stateless across :meth:`assess` calls (or
    derive all randomness from construction-time seeds): the engine
    builds one instance per job so that results are independent of
    batching and scheduling.
    """

    name: str

    def assess(self, job: AssessmentJob) -> JobResult:
        """Assess one job and return the full result."""
        ...
