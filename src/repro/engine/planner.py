"""The planner: from software changes and corpus items to assessment jobs.

Two entry points feed the executor:

* :func:`plan_change_jobs` is the fleet path — it expands one recorded
  :class:`~repro.changes.change.SoftwareChange` into its impact set
  (:func:`~repro.topology.impact.identify_impact_set`), then emits one
  job per (monitored entity, KPI, detector), pulling the measurement
  windows from a *series provider*.  The impact-set expansion is timed
  as the ``plan`` stage and each window materialisation as ``fetch``.
* :func:`jobs_from_items` / :func:`job_from_item` is the evaluation
  path — it wraps pre-built corpus items (anything shaped like
  :class:`~repro.synthetic.dataset.EvaluationItem`) without touching
  topology.

A *series provider* is any object with::

    fetch(change, entity_type, entity, metric) -> FetchedWindow

and, optionally, ``truth(change, entity_type, entity, metric) ->
Optional[bool]`` supplying ground-truth labels for synthetic fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from ..changes.change import SoftwareChange
from ..obs.metrics import BYTE_BUCKETS
from ..topology.entities import Fleet
from ..topology.impact import identify_impact_set
from .instrument import Instrumentation
from .jobs import AssessmentJob, DetectorSpec

__all__ = ["ENTITY_METRICS", "FetchedWindow", "job_from_item",
           "jobs_from_items", "plan_change_jobs"]

FETCH_BYTES_METRIC = "repro_engine_fetch_bytes"


def _window_nbytes(window: "FetchedWindow") -> int:
    total = np.asarray(window.treated).nbytes
    if window.control is not None:
        total += np.asarray(window.control).nbytes
    if window.history is not None:
        total += np.asarray(window.history).nbytes
    return total

#: The KPIs monitored per entity type (the paper's three KPI families:
#: seasonal page views at service level, stationary memory and variable
#: context-switch counts at machine level).
ENTITY_METRICS: Dict[str, Tuple[str, ...]] = {
    "server": ("memory_utilization", "cpu_context_switch_count"),
    "instance": ("memory_utilization",),
    "service": ("page_view_count",),
}


@dataclass(frozen=True)
class FetchedWindow:
    """One entity/KPI measurement window as a provider returns it.

    Attributes:
        treated: treated measurements, ``(units, bins)`` or one series.
        control: peer control matrix or ``None`` (Full Launching,
            affected services).
        history: historical control ``(days, bins)`` or ``None``.
        change_index: bin index of the software change in the window.
    """

    treated: np.ndarray
    control: Optional[np.ndarray] = None
    history: Optional[np.ndarray] = None
    change_index: int = 0


def job_from_item(item, spec: DetectorSpec,
                  job_id: Optional[int] = None) -> AssessmentJob:
    """Wrap one corpus item as an assessment job for ``spec``.

    ``item`` is duck-typed against
    :class:`~repro.synthetic.dataset.EvaluationItem`.  The baseline key
    is derived from the item id alone: the same item assessed by several
    detectors shares its cached pre-change statistics.
    """
    return AssessmentJob(
        job_id=item.item_id if job_id is None else job_id,
        detector=spec,
        change_index=item.change_index,
        treated=item.treated,
        control=item.control,
        history=item.history,
        change_id=str(item.change_id),
        entity_type=item.entity_type,
        metric=item.metric,
        baseline_key="item:%s" % item.item_id,
        truth_positive=item.truth.positive,
    )


def jobs_from_items(items: Iterable, spec: DetectorSpec
                    ) -> Iterator[AssessmentJob]:
    """Lazily wrap a corpus stream as jobs for one detector spec."""
    for item in items:
        yield job_from_item(item, spec)


def plan_change_jobs(fleet: Fleet, change: SoftwareChange, provider,
                     spec: DetectorSpec, start_id: int = 0,
                     instrumentation: Optional[Instrumentation] = None
                     ) -> Iterator[AssessmentJob]:
    """Expand one software change into per-entity assessment jobs.

    Identifies the change's impact set, then yields one job per
    monitored entity and KPI (see :data:`ENTITY_METRICS`), fetching each
    window from ``provider``.  Job ids are assigned sequentially from
    ``start_id``.

    The impact-set identification is recorded under the ``plan`` stage
    and every window materialisation under ``fetch``.
    """
    inst = instrumentation or Instrumentation()
    observed = inst.obs is not None and inst.obs.enabled
    with inst.timed("plan", items=1):
        impact = identify_impact_set(fleet, change.service, change.hostnames)
        entities = impact.monitored_entities()
    inst.count("entities", len(entities))

    truth_of = getattr(provider, "truth", None)
    job_id = start_id
    for entity_type, entity in entities:
        for metric in ENTITY_METRICS.get(entity_type, ()):
            with inst.timed("fetch", items=1):
                window = provider.fetch(change, entity_type, entity, metric)
            if observed:
                n_bytes = _window_nbytes(window)
                inst.obs.metrics.counter(
                    FETCH_BYTES_METRIC + "_total",
                    help="Bytes materialised by window fetches.").inc(n_bytes)
                inst.obs.metrics.histogram(
                    FETCH_BYTES_METRIC,
                    help="Bytes per fetched window.",
                    buckets=BYTE_BUCKETS).observe(n_bytes, metric=metric)
            truth = (truth_of(change, entity_type, entity, metric)
                     if truth_of is not None else None)
            yield AssessmentJob(
                job_id=job_id,
                detector=spec,
                change_index=window.change_index,
                treated=window.treated,
                control=window.control,
                history=window.history,
                change_id=str(change.change_id),
                entity_type=entity_type,
                entity=entity,
                metric=metric,
                baseline_key="%s/%s/%s/%s" % (change.change_id, entity_type,
                                              entity, metric),
                truth_positive=truth,
            )
            job_id += 1
