"""Evaluation harness: metrics, delays, costs, and the experiment runner."""

from .confusion import ConfusionMatrix
from .cost import CostReport, cores_for_kpis, measure_method_costs
from .delay import DelayDistribution, ccdf
from .roc import RocCurve, roc_curve
from .runner import (CLEAN_SCALE_FACTOR, METHOD_NAMES, EvaluationResult,
                     ItemOutcome, evaluate_corpus, make_method)

__all__ = ["ConfusionMatrix", "CostReport", "cores_for_kpis",
           "measure_method_costs", "DelayDistribution", "ccdf",
           "CLEAN_SCALE_FACTOR", "METHOD_NAMES", "EvaluationResult",
           "ItemOutcome", "evaluate_corpus", "make_method",
           "RocCurve", "roc_curve"]
