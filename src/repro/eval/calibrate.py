"""Threshold calibration — the paper's best-accuracy parameter selection.

Section 4.1: "the values of other parameters of CUSUM, MRLS and FUNNEL
(alpha) are also set to the best for the corresponding algorithm's
accuracy."  This module reproduces that protocol: for each method it
computes one *peak post-change statistic* per item (a single scores()
pass), then sweeps the declaration threshold and picks the value that
maximises the synthesized accuracy (clean-half counts scaled by 86, as
in Table 1).

Because the statistic is computed once per item, sweeping hundreds of
candidate thresholds costs nothing extra — important for MRLS, whose
statistic is 100x more expensive than anyone else's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.cusum import CusumDetector, CusumParams
from ..baselines.mrls import MrlsDetector, MrlsParams
from ..exceptions import EvaluationError
from ..synthetic.dataset import EvaluationItem
from .confusion import ConfusionMatrix
from .runner import CLEAN_SCALE_FACTOR

__all__ = ["ItemStatistic", "collect_statistics", "sweep_threshold",
           "pick_threshold", "calibrate_baseline", "CalibrationResult"]

StatisticFn = Callable[[EvaluationItem], float]


@dataclass(frozen=True)
class ItemStatistic:
    """One item's peak post-change statistic plus its synthesis weight."""

    statistic: float
    positive: bool
    weight: float


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a threshold sweep."""

    method: str
    threshold: float
    accuracy: float
    sweep: Tuple[Tuple[float, float], ...]
    """Every (threshold, accuracy) pair evaluated."""


def _peak_post_statistic(detector, item: EvaluationItem) -> float:
    """Largest raw statistic over windows ending after the change."""
    series = item.treated_aggregate
    scores = detector.scores(series)          # normalised by threshold
    raw = scores * detector.params.threshold
    return float(raw[item.change_index:].max())


def collect_statistics(items: Iterable[EvaluationItem],
                       statistic: StatisticFn,
                       clean_factor: float = CLEAN_SCALE_FACTOR,
                       stride: int = 1) -> List[ItemStatistic]:
    """Evaluate ``statistic`` once per (strided) item."""
    if stride < 1:
        raise EvaluationError("stride must be >= 1")
    out: List[ItemStatistic] = []
    for counter, item in enumerate(items):
        if counter % stride:
            continue
        weight = stride * (clean_factor if item.half == "clean" else 1.0)
        out.append(ItemStatistic(
            statistic=statistic(item),
            positive=item.truth.positive,
            weight=weight,
        ))
    if not out:
        raise EvaluationError("no items were evaluated")
    return out


def sweep_threshold(stats: Sequence[ItemStatistic],
                    thresholds: Sequence[float]
                    ) -> List[Tuple[float, float, float]]:
    """Synthesized ``(threshold, accuracy, recall)`` at every candidate."""
    results = []
    for threshold in thresholds:
        matrix = ConfusionMatrix()
        for stat in stats:
            predicted = stat.statistic > threshold
            if predicted and stat.positive:
                matrix.tp += stat.weight
            elif predicted:
                matrix.fp += stat.weight
            elif stat.positive:
                matrix.fn += stat.weight
            else:
                matrix.tn += stat.weight
        results.append((float(threshold), float(matrix.accuracy),
                        float(matrix.recall)))
    return results


def pick_threshold(sweep: Sequence[Tuple[float, float, float]],
                   recall_floor: float = 0.8) -> Tuple[float, float]:
    """Best-accuracy threshold subject to a recall floor.

    The clean half's x86 weight makes unconstrained accuracy degenerate:
    "never declare" scores ~98% by construction.  The paper's methods all
    operate at recalls of 84-100% (Table 1), so the sweep picks the most
    accurate threshold that keeps recall at or above ``recall_floor``,
    falling back to the unconstrained optimum if nothing qualifies.
    """
    qualifying = [(t, a) for t, a, r in sweep if r >= recall_floor]
    if qualifying:
        threshold, accuracy = max(qualifying, key=lambda pair: pair[1])
        return threshold, accuracy
    threshold, accuracy, _ = max(sweep, key=lambda row: row[1])
    return threshold, accuracy


def calibrate_baseline(method: str, items: Iterable[EvaluationItem],
                       thresholds: Optional[Sequence[float]] = None,
                       stride: int = 1,
                       recall_floor: float = 0.8) -> CalibrationResult:
    """Best-accuracy threshold for ``cusum`` or ``mrls``.

    The detector's statistic is computed with its default parameters
    (the statistic itself does not depend on the threshold); the sweep
    then selects the declaration threshold per :func:`pick_threshold`.
    """
    if method == "cusum":
        detector = CusumDetector(CusumParams())
        if thresholds is None:
            thresholds = np.arange(2.0, 80.0, 1.0)
    elif method == "mrls":
        detector = MrlsDetector(MrlsParams())
        if thresholds is None:
            thresholds = np.arange(2.0, 30.0, 0.5)
    else:
        raise EvaluationError(
            "calibrate_baseline supports 'cusum' and 'mrls', got %r" % method
        )

    stats = collect_statistics(
        items, lambda item: _peak_post_statistic(detector, item),
        stride=stride,
    )
    sweep = sweep_threshold(stats, thresholds)
    best_threshold, best_accuracy = pick_threshold(sweep, recall_floor)
    return CalibrationResult(
        method=method,
        threshold=best_threshold,
        accuracy=best_accuracy,
        sweep=tuple(sweep),
    )
