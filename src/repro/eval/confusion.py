"""Confusion-matrix bookkeeping and the section 4.2 metrics.

Outcome labelling follows the paper exactly: an item is a true positive
when the method reports a software-change-induced KPI change and the
ground truth agrees; a false positive when the method reports one but
there was either no KPI change at all or the change was not induced by
the software change; a false negative when a genuine induced change is
missed; a true negative otherwise.

Metrics: ``Precision = TP/(TP+FP)``, ``Recall = TP/(TP+FN)``,
``TNR = TN/(TN+FP)``, ``Accuracy = (TP+TN)/total``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import EvaluationError

__all__ = ["ConfusionMatrix"]


@dataclass
class ConfusionMatrix:
    """Counts of TP/TN/FP/FN with the paper's derived metrics.

    Supports addition (merging strata) and integer scaling (the Table 1
    synthesis multiplies the clean half's counts by 86).
    """

    tp: float = 0
    tn: float = 0
    fp: float = 0
    fn: float = 0

    def __post_init__(self) -> None:
        for name in ("tp", "tn", "fp", "fn"):
            if getattr(self, name) < 0:
                raise EvaluationError("%s must be >= 0" % name)

    # -- accumulation ------------------------------------------------------------

    def record(self, predicted: bool, actual: bool) -> None:
        """Tally one item's outcome."""
        if predicted and actual:
            self.tp += 1
        elif predicted and not actual:
            self.fp += 1
        elif not predicted and actual:
            self.fn += 1
        else:
            self.tn += 1

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            tp=self.tp + other.tp, tn=self.tn + other.tn,
            fp=self.fp + other.fp, fn=self.fn + other.fn,
        )

    def scaled(self, factor: float) -> "ConfusionMatrix":
        """All counts multiplied by ``factor`` (paper's x86 synthesis)."""
        if factor < 0:
            raise EvaluationError("scale factor must be >= 0")
        return ConfusionMatrix(
            tp=self.tp * factor, tn=self.tn * factor,
            fp=self.fp * factor, fn=self.fn * factor,
        )

    # -- metrics ------------------------------------------------------------------

    @property
    def total(self) -> float:
        return self.tp + self.tn + self.fp + self.fn

    @property
    def positives(self) -> float:
        return self.tp + self.fn

    @property
    def negatives(self) -> float:
        return self.tn + self.fp

    @staticmethod
    def _ratio(numerator: float, denominator: float) -> float:
        """A rate, or ``nan`` when its denominator is empty."""
        if denominator == 0:
            return float("nan")
        return numerator / denominator

    @property
    def precision(self) -> float:
        return self._ratio(self.tp, self.tp + self.fp)

    @property
    def recall(self) -> float:
        return self._ratio(self.tp, self.tp + self.fn)

    @property
    def tnr(self) -> float:
        return self._ratio(self.tn, self.tn + self.fp)

    @property
    def accuracy(self) -> float:
        return self._ratio(self.tp + self.tn, self.total)

    def as_row(self) -> dict:
        """The Table 1 row for this matrix."""
        return {
            "total": self.total,
            "precision": self.precision,
            "recall": self.recall,
            "tnr": self.tnr,
            "accuracy": self.accuracy,
        }
