"""Computational-cost measurement — paper section 4.3 and Table 2.

Each method's deployed per-window work is timed single-threaded and
converted to the paper's capacity metric: the number of CPU cores needed
to keep up with one million KPIs collected and assessed every minute.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..baselines.cusum import CusumDetector, CusumParams
from ..baselines.mrls import MrlsDetector, MrlsParams
from ..core.ika import IkaSST
from ..core.rsst import ImprovedSST, ImprovedSSTParams
from ..exceptions import EvaluationError

__all__ = ["CostReport", "time_callable", "measure_method_costs",
           "cores_for_kpis"]


@dataclass(frozen=True)
class CostReport:
    """Per-window runtime and the derived capacity figure."""

    method: str
    seconds_per_window: float
    windows_timed: int

    @property
    def microseconds_per_window(self) -> float:
        return self.seconds_per_window * 1e6

    def cores_for(self, kpis: int = 1_000_000,
                  interval_seconds: float = 60.0) -> int:
        return cores_for_kpis(self.seconds_per_window, kpis,
                              interval_seconds)


def cores_for_kpis(seconds_per_window: float, kpis: int = 1_000_000,
                   interval_seconds: float = 60.0) -> int:
    """Cores needed to assess ``kpis`` series every ``interval_seconds``.

    Table 2's last row: each KPI needs one window evaluation per
    collection interval, so a single core sustains
    ``interval / seconds_per_window`` KPIs.
    """
    if seconds_per_window <= 0:
        raise EvaluationError("seconds_per_window must be positive")
    return int(math.ceil(kpis * seconds_per_window / interval_seconds))


def time_callable(work: Callable[[], int], min_seconds: float = 0.5,
                  max_rounds: int = 1000) -> CostReport:
    """Repeat ``work`` until ``min_seconds`` of wall time accumulates.

    ``work`` returns the number of windows it evaluated; the report's
    per-window time is total time over total windows.
    """
    total_windows = 0
    start = time.perf_counter()
    rounds = 0
    while time.perf_counter() - start < min_seconds and rounds < max_rounds:
        total_windows += int(work())
        rounds += 1
    elapsed = time.perf_counter() - start
    if total_windows == 0:
        raise EvaluationError("work() evaluated zero windows")
    return CostReport(method="", seconds_per_window=elapsed / total_windows,
                      windows_timed=total_windows)


def measure_method_costs(series_length: int = 2048, seed: int = 5,
                         min_seconds: float = 0.5,
                         include_exact_sst: bool = False
                         ) -> Dict[str, CostReport]:
    """Time every method's deployed per-window path on one noise series.

    Returns a mapping method name -> :class:`CostReport`:

    * ``funnel`` — the batched IKA scorer's amortised per-window cost
      (scoring + Eq. 11 gates), the path the online tool runs;
    * ``cusum`` — one CUSUM statistic + the bootstrap significance test
      (the MERCURY deployment evaluates both per analysis window);
    * ``mrls`` — one multiscale robust-local-subspace statistic
      (iterated-SVD Robust PCA at every scale);
    * optionally ``exact_sst`` — the SVD reference path, to quantify the
      IKA speedup.
    """
    rng = np.random.default_rng(seed)
    series = 50.0 + rng.normal(0.0, 1.0, size=series_length)

    reports: Dict[str, CostReport] = {}

    ika = IkaSST()
    n_windows = series_length - ika.params.window_length + 1

    def funnel_work() -> int:
        ika.scores(series)
        return n_windows

    report = time_callable(funnel_work, min_seconds)
    reports["funnel"] = CostReport("funnel", report.seconds_per_window,
                                   report.windows_timed)

    cusum = CusumDetector(CusumParams())
    cusum_window = series[:cusum.params.window]

    def cusum_work() -> int:
        cusum.statistic_for_window(cusum_window)
        cusum._bootstrap_significant(cusum_window)
        return 1

    report = time_callable(cusum_work, min_seconds)
    reports["cusum"] = CostReport("cusum", report.seconds_per_window,
                                  report.windows_timed)

    mrls = MrlsDetector(MrlsParams())
    mrls_window = series[:mrls.params.window]

    def mrls_work() -> int:
        mrls.statistic_for_window(mrls_window)
        return 1

    report = time_callable(mrls_work, min_seconds)
    reports["mrls"] = CostReport("mrls", report.seconds_per_window,
                                 report.windows_timed)

    if include_exact_sst:
        exact = ImprovedSST(ImprovedSSTParams())
        lo = exact.params.first_index()

        def exact_work() -> int:
            exact.score_at(series, lo)
            return 1

        report = time_callable(exact_work, min_seconds)
        reports["exact_sst"] = CostReport(
            "exact_sst", report.seconds_per_window, report.windows_timed)

    return reports
