"""Detection-delay statistics and CCDFs — paper section 4.4 and Fig. 5.

Detection delay is "the time between the start of a KPI change and its
detection by a method", in time-bins (minutes); computational latency is
excluded (it is evaluated separately in section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import EvaluationError

__all__ = ["DelayDistribution", "ccdf"]


def ccdf(delays: Sequence[float],
         grid: Optional[Sequence[float]] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of ``delays`` over ``grid``.

    Returns ``(grid, fraction_exceeding)`` with fractions in percent,
    matching the Fig. 5 axes.  The default grid spans 0-60 minutes.
    """
    values = np.asarray(list(delays), dtype=np.float64)
    if values.size == 0:
        raise EvaluationError("CCDF of zero delays")
    if grid is None:
        grid = np.arange(0.0, 61.0, 1.0)
    grid = np.asarray(grid, dtype=np.float64)
    fractions = np.array([
        100.0 * np.mean(values > g) for g in grid
    ])
    return grid, fractions


@dataclass
class DelayDistribution:
    """Accumulates per-item detection delays for one method."""

    method: str
    delays: List[float] = field(default_factory=list)

    def record(self, delay: float) -> None:
        if delay < 0:
            raise EvaluationError(
                "negative detection delay %g for %s" % (delay, self.method)
            )
        self.delays.append(float(delay))

    def __len__(self) -> int:
        return len(self.delays)

    @property
    def median(self) -> float:
        if not self.delays:
            return float("nan")
        return float(np.median(self.delays))

    @property
    def mean(self) -> float:
        if not self.delays:
            return float("nan")
        return float(np.mean(self.delays))

    def percentile(self, q: float) -> float:
        if not self.delays:
            return float("nan")
        return float(np.percentile(self.delays, q))

    def ccdf(self, grid: Optional[Sequence[float]] = None):
        return ccdf(self.delays, grid)

    def reduction_vs(self, other: "DelayDistribution") -> float:
        """Median-delay reduction of this method vs ``other`` in percent.

        The paper reports FUNNEL's delay as 38.02% shorter than MRLS's
        and 64.99% shorter than CUSUM's.
        """
        if not self.delays or not other.delays:
            return float("nan")
        return 100.0 * (1.0 - self.median / other.median)
