"""Plain-text rendering of the reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["format_table", "format_percent", "render_table1",
           "render_table2", "render_ccdf", "render_ascii_series"]


def format_percent(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "   n/a"
    return "%6.2f%%" % (100.0 * value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Monospace table with per-column width fitting."""
    columns = [list(map(str, col)) for col in
               zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w)
                                for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(rows: List[Dict]) -> str:
    """Render Table 1 rows produced by ``EvaluationResult.table1``."""
    body = []
    for row in rows:
        body.append([
            row["method"], row["type"], "%d" % round(row["total"]),
            format_percent(row["precision"]),
            format_percent(row["recall"]),
            format_percent(row["tnr"]),
            format_percent(row["accuracy"]),
        ])
    return format_table(
        ["Algorithm", "Type", "Total", "Precision", "Recall", "TNR",
         "Accuracy"],
        body,
        title="Table 1: Precision, Recall, TNR and Accuracy per KPI type",
    )


def render_table2(reports: Dict[str, "CostReport"]) -> str:
    """Render Table 2 from :func:`repro.eval.cost.measure_method_costs`."""
    order = [name for name in ("funnel", "cusum", "mrls", "exact_sst")
             if name in reports]
    body = []
    for name in order:
        report = reports[name]
        us = report.microseconds_per_window
        if us < 1000:
            runtime = "%.1f us" % us
        elif us < 1e6:
            runtime = "%.3f ms" % (us / 1e3)
        else:
            runtime = "%.3f s" % (us / 1e6)
        body.append([name, runtime, "%d" % report.cores_for()])
    return format_table(
        ["Method", "Run time per window", "Cores for 1M KPIs"],
        body,
        title="Table 2: Comparison of computational time",
    )


def render_ccdf(curves: Dict[str, tuple], width: int = 60) -> str:
    """Tabulate CCDF curves (Fig. 5) at a coarse minute grid."""
    methods = sorted(curves)
    grid_points = [0, 5, 10, 15, 20, 25, 30, 40, 50, 60]
    rows = []
    for g in grid_points:
        row = ["%d min" % g]
        for method in methods:
            grid, fractions = curves[method]
            idx = int(np.searchsorted(grid, g))
            idx = min(idx, len(fractions) - 1)
            row.append("%5.1f%%" % fractions[idx])
        rows.append(row)
    return format_table(["Delay >", *methods], rows,
                        title="Fig. 5: CCDF of detection delay")


def render_ascii_series(values: Sequence[float], height: int = 12,
                        width: int = 72, title: str = "") -> str:
    """Coarse ASCII plot of one series (for the Fig. 2/6/7 benches)."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return "(empty series)"
    if data.size > width:
        # Downsample by block mean to the plot width.
        usable = (data.size // width) * width
        data = data[:usable].reshape(width, -1).mean(axis=1)
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo or 1.0
    levels = np.clip(((data - lo) / span * (height - 1)).round(), 0,
                     height - 1).astype(int)
    canvas = [[" "] * data.size for _ in range(height)]
    for x, level in enumerate(levels):
        canvas[height - 1 - level][x] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append("%10.2f +%s" % (hi, "".join(canvas[0])))
    for row in canvas[1:-1]:
        lines.append("           |%s" % "".join(row))
    lines.append("%10.2f +%s" % (lo, "".join(canvas[-1])))
    return "\n".join(lines)
