"""ROC curves over detector statistics.

Section 4.1 notes the threshold-based evaluation "draws the same
conclusion as the method that [changes] the value of the parameters,
calculating the accuracies and plotting the receiver operating
characteristic (ROC) curves".  This module provides that alternative
protocol: given one peak post-change statistic per item (from
:func:`repro.eval.calibrate.collect_statistics`), it sweeps *all*
thresholds and returns the full ROC, its AUC, and the operating point
closest to a target recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import EvaluationError
from .calibrate import ItemStatistic

__all__ = ["RocCurve", "roc_curve"]


@dataclass(frozen=True)
class RocCurve:
    """A weighted ROC curve.

    Attributes:
        fpr: false-positive rates, ascending (0 to 1).
        tpr: true-positive rates aligned with ``fpr``.
        thresholds: the statistic threshold at each point (descending;
            point ``i`` declares a change when ``statistic > thresholds[i]``).
    """

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve (trapezoidal)."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.tpr, self.fpr))

    def operating_point(self, target_tpr: float = 0.95
                        ) -> Tuple[float, float, float]:
        """``(threshold, fpr, tpr)`` of the cheapest point reaching
        ``target_tpr`` (or the best-TPR point if none reaches it)."""
        reaching = np.where(self.tpr >= target_tpr)[0]
        idx = int(reaching[0]) if reaching.size else int(np.argmax(self.tpr))
        return (float(self.thresholds[idx]), float(self.fpr[idx]),
                float(self.tpr[idx]))


def roc_curve(stats: Sequence[ItemStatistic]) -> RocCurve:
    """Build the weighted ROC from per-item peak statistics.

    Item weights carry the paper's x86 clean-half synthesis, so the FPR
    axis reflects the synthesized negative population, exactly like the
    Table 1 rates.
    """
    stats = list(stats)
    if not stats:
        raise EvaluationError("ROC of zero items")
    values = np.asarray([s.statistic for s in stats])
    positives = np.asarray([s.positive for s in stats], dtype=bool)
    weights = np.asarray([s.weight for s in stats], dtype=np.float64)

    total_pos = float(weights[positives].sum())
    total_neg = float(weights[~positives].sum())
    if total_pos == 0 or total_neg == 0:
        raise EvaluationError(
            "ROC needs both positive and negative items "
            "(have %g positive / %g negative weight)"
            % (total_pos, total_neg)
        )

    order = np.argsort(-values, kind="stable")
    sorted_vals = values[order]
    tp_cum = np.cumsum(np.where(positives[order], weights[order], 0.0))
    fp_cum = np.cumsum(np.where(~positives[order], weights[order], 0.0))

    # Collapse ties: keep the last index of each distinct threshold.
    distinct = np.r_[np.where(np.diff(sorted_vals) != 0)[0],
                     sorted_vals.size - 1]
    tpr = np.r_[0.0, tp_cum[distinct] / total_pos]
    fpr = np.r_[0.0, fp_cum[distinct] / total_neg]
    thresholds = np.r_[np.inf, sorted_vals[distinct]]
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds)
