"""The experiment runner: methods x corpus -> Table 1 / Fig. 5 data.

Every method is evaluated through the assessment engine
(:mod:`repro.engine`): :func:`make_method` resolves a method name to an
:class:`EngineMethod` — a callable adapter wrapping a
:class:`~repro.engine.jobs.DetectorSpec` — and :func:`evaluate_corpus`
plans one :class:`~repro.engine.jobs.AssessmentJob` per (item, method)
and runs them through the batched executor, serially or across process
workers.  The engine preserves what each method is *allowed to see*:

* **funnel** — treated + control/history, full Fig. 3 flow;
* **improved_sst** — the same detector, no DiD (any post-change
  detection counts as "caused by the change");
* **cusum** / **mrls** — the baselines on the treated aggregate, no DiD
  (the paper's comparison setting).

The Table 1 synthesis then follows section 4.2.1: per (method, KPI type)
the clean half's confusion counts are scaled by 86 (= 6194/72) and added
to the inducing half's counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..baselines.cusum import CusumParams
from ..baselines.mrls import MrlsParams
from ..core.funnel import FunnelConfig
from ..engine import (EngineConfig, Instrumentation, ItemOutcome, ObsContext,
                      execute_jobs, job_from_item, run_job, spec_for_method)
from ..engine.jobs import AssessmentJob, DetectorSpec
from ..exceptions import EngineError, EvaluationError
from ..synthetic.dataset import EvaluationItem
from ..types import KpiCharacter
from .confusion import ConfusionMatrix
from .delay import DelayDistribution

__all__ = ["ItemOutcome", "MethodAdapter", "EngineMethod", "make_method",
           "EvaluationResult", "evaluate_corpus", "CLEAN_SCALE_FACTOR",
           "METHOD_NAMES"]

#: The paper's synthesis factor for the clean half (6194 / 72 ~= 86).
CLEAN_SCALE_FACTOR = 86.0

METHOD_NAMES = ("funnel", "improved_sst", "cusum", "mrls")

MethodAdapter = Callable[[EvaluationItem], ItemOutcome]


class EngineMethod:
    """A method adapter backed by an engine detector spec.

    Calling it assesses one item exactly as the batched executor would
    (same per-job detector construction, same seed), so the one-item
    convenience path and :func:`evaluate_corpus` cannot diverge.
    """

    def __init__(self, spec: DetectorSpec) -> None:
        self.spec = spec
        self.name = spec.name

    def __call__(self, item: EvaluationItem) -> ItemOutcome:
        return run_job(job_from_item(item, self.spec)).outcome


def make_method(name: str, funnel_config: Optional[FunnelConfig] = None,
                cusum_params: Optional[CusumParams] = None,
                mrls_params: Optional[MrlsParams] = None) -> EngineMethod:
    """Build the engine-backed adapter for one of :data:`METHOD_NAMES`."""
    try:
        spec = spec_for_method(name, funnel_config=funnel_config,
                               cusum_params=cusum_params,
                               mrls_params=mrls_params)
    except EngineError as exc:
        raise EvaluationError("unknown method %r" % name) from exc
    return EngineMethod(spec)


@dataclass
class EvaluationResult:
    """All confusion matrices and delay distributions from one run."""

    #: (method, character, half) -> raw confusion counts.
    strata: Dict[Tuple[str, str, str], ConfusionMatrix] = field(
        default_factory=dict)
    #: method -> detection delays over true positives.
    delays: Dict[str, DelayDistribution] = field(default_factory=dict)
    items_evaluated: int = 0

    def _stratum(self, method: str, character: str,
                 half: str) -> ConfusionMatrix:
        key = (method, character, half)
        if key not in self.strata:
            self.strata[key] = ConfusionMatrix()
        return self.strata[key]

    def record(self, method: str, item: EvaluationItem,
               outcome: ItemOutcome) -> None:
        matrix = self._stratum(method, item.character.value, item.half)
        matrix.record(outcome.positive, item.truth.positive)
        if outcome.positive and item.truth.positive:
            delay = outcome.delay(item.truth.start_index)
            if delay is not None:
                self.delays.setdefault(
                    method, DelayDistribution(method)).record(delay)

    # -- synthesis -----------------------------------------------------------

    def synthesized(self, method: str, character: str,
                    clean_factor: float = CLEAN_SCALE_FACTOR
                    ) -> ConfusionMatrix:
        """Table 1 cell: inducing counts + ``clean_factor`` x clean counts."""
        inducing = self.strata.get((method, character, "inducing"),
                                   ConfusionMatrix())
        clean = self.strata.get((method, character, "clean"),
                                ConfusionMatrix())
        return inducing + clean.scaled(clean_factor)

    def table1(self, methods: Iterable[str] = METHOD_NAMES,
               clean_factor: float = CLEAN_SCALE_FACTOR) -> List[dict]:
        """All Table 1 rows: one per (method, KPI type)."""
        rows = []
        for method in methods:
            for character in (KpiCharacter.SEASONAL,
                              KpiCharacter.STATIONARY,
                              KpiCharacter.VARIABLE):
                matrix = self.synthesized(method, character.value,
                                          clean_factor)
                row = {"method": method, "type": character.value}
                row.update(matrix.as_row())
                rows.append(row)
        return rows

    def overall(self, method: str,
                clean_factor: float = CLEAN_SCALE_FACTOR) -> ConfusionMatrix:
        total = ConfusionMatrix()
        for character in KpiCharacter:
            total = total + self.synthesized(method, character.value,
                                             clean_factor)
        return total


def evaluate_corpus(items: Iterable[EvaluationItem],
                    methods: Dict[str, MethodAdapter],
                    mrls_stride: int = 1,
                    progress: Optional[Callable[[int], None]] = None,
                    workers: int = 0, batch_size: int = 16,
                    instrumentation: Optional[Instrumentation] = None,
                    obs: Optional[ObsContext] = None) -> EvaluationResult:
    """Run every method over every item.

    Engine-backed methods (anything :func:`make_method` returns) are
    planned into assessment jobs and run through
    :func:`repro.engine.execute_jobs` in chunks — set ``workers`` to
    fan the corpus out over a process pool, with results bit-identical
    to the serial default.  Plain callables still work and take the
    legacy per-item loop.

    Args:
        items: the evaluation corpus (streamed).
        methods: name -> adapter; build with :func:`make_method`.
        mrls_stride: evaluate ``mrls`` only on every n-th item (its
            iterated-SVD cost makes the full corpus impractical; the
            sampled counts are scaled back up by ``mrls_stride`` so the
            synthesized rates stay unbiased).  1 = no sampling.
        progress: optional callback invoked with the item counter.
        workers: engine process-pool size; 0 = serial.
        batch_size: jobs per engine batch.
        instrumentation: optional engine instrumentation sink.
        obs: optional :class:`~repro.obs.ObsContext`; when enabled the
            evaluation's engine runs record spans and metrics (worker
            telemetry included), and the caller can write them out with
            :func:`repro.obs.write_run_artifacts`.
    """
    if mrls_stride < 1:
        raise EvaluationError("mrls_stride must be >= 1")
    engine_backed = methods and all(
        isinstance(adapter, EngineMethod) for adapter in methods.values())
    if engine_backed:
        result = _evaluate_with_engine(
            items, methods, mrls_stride, progress,
            EngineConfig(workers=workers, batch_size=batch_size),
            instrumentation, obs)
    else:
        result = _evaluate_legacy(items, methods, mrls_stride, progress)

    if "mrls" in methods and mrls_stride > 1:
        for key in list(result.strata):
            if key[0] == "mrls":
                result.strata[key] = result.strata[key].scaled(mrls_stride)
    return result


def _evaluate_with_engine(items: Iterable[EvaluationItem],
                          methods: Dict[str, "EngineMethod"],
                          mrls_stride: int,
                          progress: Optional[Callable[[int], None]],
                          config: EngineConfig,
                          instrumentation: Optional[Instrumentation],
                          obs: Optional[ObsContext] = None
                          ) -> EvaluationResult:
    """The engine path: chunked job planning + batched execution."""
    result = EvaluationResult()
    chunk_size = config.batch_size * max(config.workers, 1) * 4
    chunk: List[Tuple[int, EvaluationItem]] = []

    def flush() -> None:
        jobs: List[AssessmentJob] = []
        labels: List[Tuple[str, EvaluationItem]] = []
        for counter, item in chunk:
            for name, method in methods.items():
                if name == "mrls" and counter % mrls_stride:
                    continue
                jobs.append(job_from_item(item, method.spec))
                labels.append((name, item))
        outcomes = execute_jobs(jobs, config=config,
                                instrumentation=instrumentation, obs=obs)
        for (name, item), job_result in zip(labels, outcomes):
            result.record(name, item, job_result.outcome)
        if progress is not None:
            for counter, _ in chunk:
                progress(counter)

    for counter, item in enumerate(items):
        result.items_evaluated += 1
        chunk.append((counter, item))
        if len(chunk) >= chunk_size:
            flush()
            chunk = []
    if chunk:
        flush()
    return result


def _evaluate_legacy(items: Iterable[EvaluationItem],
                     methods: Dict[str, MethodAdapter],
                     mrls_stride: int,
                     progress: Optional[Callable[[int], None]]
                     ) -> EvaluationResult:
    """Per-item loop for plain-callable adapters."""
    result = EvaluationResult()
    for counter, item in enumerate(items):
        result.items_evaluated += 1
        for name, adapter in methods.items():
            if name == "mrls" and counter % mrls_stride:
                continue
            outcome = adapter(item)
            result.record(name, item, outcome)
        if progress is not None:
            progress(counter)
    return result
