"""The experiment runner: methods x corpus -> Table 1 / Fig. 5 data.

Adapters give every method the same contract — assess one
:class:`~repro.synthetic.dataset.EvaluationItem` and return whether a
software-change-induced KPI change was found plus the detection index —
while preserving what each method is *allowed to see*:

* **funnel** — treated + control/history, full Fig. 3 flow;
* **improved_sst** — the same detector, no DiD (any post-change
  detection counts as "caused by the change");
* **cusum** / **mrls** — the baselines on the treated aggregate, no DiD
  (the paper's comparison setting).

The Table 1 synthesis then follows section 4.2.1: per (method, KPI type)
the clean half's confusion counts are scaled by 86 (= 6194/72) and added
to the inducing half's counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..baselines.cusum import CusumDetector, CusumParams
from ..baselines.mrls import MrlsDetector, MrlsParams
from ..core.funnel import Funnel, FunnelConfig
from ..exceptions import EvaluationError
from ..synthetic.dataset import EvaluationItem
from ..types import KpiCharacter
from .confusion import ConfusionMatrix
from .delay import DelayDistribution

__all__ = ["ItemOutcome", "MethodAdapter", "make_method",
           "EvaluationResult", "evaluate_corpus", "CLEAN_SCALE_FACTOR",
           "METHOD_NAMES"]

#: The paper's synthesis factor for the clean half (6194 / 72 ~= 86).
CLEAN_SCALE_FACTOR = 86.0

METHOD_NAMES = ("funnel", "improved_sst", "cusum", "mrls")


@dataclass(frozen=True)
class ItemOutcome:
    """One method's answer for one item."""

    positive: bool
    detection_index: Optional[int] = None

    def delay(self, truth_start: int) -> Optional[int]:
        if self.detection_index is None:
            return None
        return max(0, self.detection_index - truth_start)


MethodAdapter = Callable[[EvaluationItem], ItemOutcome]


def _funnel_adapter(config: FunnelConfig = None) -> MethodAdapter:
    funnel = Funnel(config)

    def assess(item: EvaluationItem) -> ItemOutcome:
        result = funnel.assess(
            item.treated, item.change_index,
            control=item.control, history=item.history,
        )
        index = result.change.index if result.change else None
        return ItemOutcome(positive=result.positive, detection_index=index)

    return assess


def _improved_sst_adapter(config: FunnelConfig = None) -> MethodAdapter:
    funnel = Funnel(config)

    def assess(item: EvaluationItem) -> ItemOutcome:
        changes = funnel.detect(item.treated_aggregate, item.change_index)
        if not changes:
            return ItemOutcome(positive=False)
        return ItemOutcome(positive=True, detection_index=changes[0].index)

    return assess


def _baseline_adapter(detector) -> MethodAdapter:
    def assess(item: EvaluationItem) -> ItemOutcome:
        changes = detector.detect(item.treated_aggregate, first_only=False)
        relevant = [c for c in changes
                    if c.start_index >= item.change_index - 1]
        if not relevant:
            return ItemOutcome(positive=False)
        return ItemOutcome(positive=True,
                           detection_index=relevant[0].index)

    return assess


def make_method(name: str, funnel_config: FunnelConfig = None,
                cusum_params: CusumParams = None,
                mrls_params: MrlsParams = None) -> MethodAdapter:
    """Build the adapter for one of :data:`METHOD_NAMES`."""
    if name == "funnel":
        return _funnel_adapter(funnel_config)
    if name == "improved_sst":
        return _improved_sst_adapter(funnel_config)
    if name == "cusum":
        return _baseline_adapter(CusumDetector(cusum_params))
    if name == "mrls":
        return _baseline_adapter(MrlsDetector(mrls_params))
    raise EvaluationError("unknown method %r" % name)


@dataclass
class EvaluationResult:
    """All confusion matrices and delay distributions from one run."""

    #: (method, character, half) -> raw confusion counts.
    strata: Dict[Tuple[str, str, str], ConfusionMatrix] = field(
        default_factory=dict)
    #: method -> detection delays over true positives.
    delays: Dict[str, DelayDistribution] = field(default_factory=dict)
    items_evaluated: int = 0

    def _stratum(self, method: str, character: str,
                 half: str) -> ConfusionMatrix:
        key = (method, character, half)
        if key not in self.strata:
            self.strata[key] = ConfusionMatrix()
        return self.strata[key]

    def record(self, method: str, item: EvaluationItem,
               outcome: ItemOutcome) -> None:
        matrix = self._stratum(method, item.character.value, item.half)
        matrix.record(outcome.positive, item.truth.positive)
        if outcome.positive and item.truth.positive:
            delay = outcome.delay(item.truth.start_index)
            if delay is not None:
                self.delays.setdefault(
                    method, DelayDistribution(method)).record(delay)

    # -- synthesis -----------------------------------------------------------

    def synthesized(self, method: str, character: str,
                    clean_factor: float = CLEAN_SCALE_FACTOR
                    ) -> ConfusionMatrix:
        """Table 1 cell: inducing counts + ``clean_factor`` x clean counts."""
        inducing = self.strata.get((method, character, "inducing"),
                                   ConfusionMatrix())
        clean = self.strata.get((method, character, "clean"),
                                ConfusionMatrix())
        return inducing + clean.scaled(clean_factor)

    def table1(self, methods: Iterable[str] = METHOD_NAMES,
               clean_factor: float = CLEAN_SCALE_FACTOR) -> List[dict]:
        """All Table 1 rows: one per (method, KPI type)."""
        rows = []
        for method in methods:
            for character in (KpiCharacter.SEASONAL,
                              KpiCharacter.STATIONARY,
                              KpiCharacter.VARIABLE):
                matrix = self.synthesized(method, character.value,
                                          clean_factor)
                row = {"method": method, "type": character.value}
                row.update(matrix.as_row())
                rows.append(row)
        return rows

    def overall(self, method: str,
                clean_factor: float = CLEAN_SCALE_FACTOR) -> ConfusionMatrix:
        total = ConfusionMatrix()
        for character in KpiCharacter:
            total = total + self.synthesized(method, character.value,
                                             clean_factor)
        return total


def evaluate_corpus(items: Iterable[EvaluationItem],
                    methods: Dict[str, MethodAdapter],
                    mrls_stride: int = 1,
                    progress: Callable[[int], None] = None
                    ) -> EvaluationResult:
    """Run every method over every item.

    Args:
        items: the evaluation corpus (streamed).
        methods: name -> adapter; build with :func:`make_method`.
        mrls_stride: evaluate ``mrls`` only on every n-th item (its
            iterated-SVD cost makes the full corpus impractical; the
            sampled counts are scaled back up by ``mrls_stride`` so the
            synthesized rates stay unbiased).  1 = no sampling.
        progress: optional callback invoked with the item counter.
    """
    if mrls_stride < 1:
        raise EvaluationError("mrls_stride must be >= 1")
    result = EvaluationResult()
    mrls_strata: Dict[Tuple[str, str, str], ConfusionMatrix] = {}

    for counter, item in enumerate(items):
        result.items_evaluated += 1
        for name, adapter in methods.items():
            if name == "mrls" and counter % mrls_stride:
                continue
            outcome = adapter(item)
            result.record(name, item, outcome)
        if progress is not None:
            progress(counter)

    if "mrls" in methods and mrls_stride > 1:
        for key in list(result.strata):
            if key[0] == "mrls":
                result.strata[key] = result.strata[key].scaled(mrls_stride)
    return result
