"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The concrete
subclasses group failures by the subsystem that raised them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its valid range.

    Raised for example when an SST window ``omega`` is smaller than 2, a
    Krylov dimension exceeds the window size, or a persistence threshold
    is negative.
    """


class InsufficientDataError(ReproError, ValueError):
    """A time series is too short for the requested computation."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge.

    Carries the number of iterations performed in :attr:`iterations`.
    """

    def __init__(self, message: str, iterations: int = 0) -> None:
        super().__init__(message)
        self.iterations = iterations


class TopologyError(ReproError, ValueError):
    """The fleet/service topology is inconsistent.

    Raised for unknown services, duplicate entity names, or self-looping
    service relationships.
    """


class TelemetryError(ReproError, ValueError):
    """A telemetry operation failed (unknown KPI, misaligned series...)."""


class ChangeLogError(ReproError, ValueError):
    """A software-change record is invalid or references unknown entities."""


class EvaluationError(ReproError, ValueError):
    """An evaluation harness invariant was violated."""


class CheckpointError(ReproError, ValueError):
    """A live-session checkpoint is missing, corrupt, or incompatible.

    Raised when ``--resume-from`` points at a file whose version, spec
    or fault plan does not match the replay being resumed.
    """


class ClusterError(ReproError, RuntimeError):
    """The sharded multi-process runtime failed.

    Raised when a worker shard keeps crashing past its restart budget,
    dies without leaving a result, or the fan-in cannot reconcile the
    shard outputs it was handed.
    """


class EngineError(ReproError, ValueError):
    """An assessment-engine request is invalid.

    Raised for unknown detector names, malformed executor
    configurations, or fleet-scenario specs that cannot be planned.
    """
