"""repro.faults — deterministic, seeded fault injection for the live service.

The live pipeline (``repro.live``) earns trust only if it stays correct
when the telemetry path degrades: agents stall, pushes arrive late,
duplicated or out of order, fragments are dropped on the wire, and the
history database throws transient errors.  This package injects exactly
those faults, reproducibly:

* :class:`~repro.faults.plan.FaultPlan` — the DSL: a seed plus a tuple
  of :class:`~repro.faults.plan.FaultRule` entries (probabilistic, or
  scripted against virtual time via windows and key globs).  Every
  decision is a *stateless* hash of ``(seed, kind, key, fragment start)``,
  so the same plan replays the same faults regardless of process,
  platform or resume point.
* :class:`~repro.faults.injector.FaultyMetricStore` — wraps a
  :class:`~repro.telemetry.store.MetricStore`, delaying/holding agent
  appends (delay + silence faults) and dropping/duplicating/reordering
  subscriber pushes (push-layer faults).
* :class:`~repro.faults.injector.FaultyHistoryProvider` — wraps a
  history provider with injected transient
  :class:`~repro.exceptions.TelemetryError` failures.

``repro chaos-replay`` drives a live replay under a named plan and
asserts the live-vs-offline verdict parity contract still holds — see
``docs/live.md``.
"""

from .injector import FAULTS_INJECTED_METRIC, FaultyHistoryProvider, \
    FaultyMetricStore
from .plan import (DELAY, DROP, DUPLICATE, HISTORY_ERROR, PRESET_NAMES,
                   REORDER, SILENCE, FaultPlan, FaultRule, preset_plan)

__all__ = [
    "DELAY", "DROP", "DUPLICATE", "REORDER", "HISTORY_ERROR", "SILENCE",
    "FaultPlan", "FaultRule", "preset_plan", "PRESET_NAMES",
    "FaultyMetricStore", "FaultyHistoryProvider", "FAULTS_INJECTED_METRIC",
]
