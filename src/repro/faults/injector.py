"""Fault injectors wrapping the metric store and the history provider.

Faults live at the layer they would occur in production:

* **ingest faults** (delay, silence) sit between the agent and the
  store: :meth:`FaultyMetricStore.append` holds the fragment in a
  per-key pending queue and releases it when virtual time reaches the
  plan's release instant.  Queues are head-of-line: a fragment never
  overtakes an earlier one for the same key, so the durable store stays
  contiguous — exactly how a stalled agent's backlog flushes.
* **push faults** (drop, duplicate, reorder) sit between the store and
  its subscribers: the store's durable column is already correct, only
  the push delivery is corrupted.  The assessor recovers via dedup,
  overlap trimming and (with ``repair_from_store``) read-repair.
* **history faults** wrap the history provider with leading transient
  :class:`~repro.exceptions.TelemetryError` failures per
  ``(change, KPI)`` item, which the assessor's retry budget absorbs.

All decisions come from the stateless :class:`~repro.faults.plan.
FaultPlan`, so a wrapped replay is reproducible from its seed alone.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import TelemetryError
from ..obs.metrics import MetricsRegistry
from ..telemetry.kpi import KpiKey
from ..telemetry.store import MetricStore, Subscription
from ..telemetry.timeseries import TimeSeries
from .plan import DELIVER, DROP, DUPLICATE, REORDER, FaultPlan

__all__ = ["FAULTS_INJECTED_METRIC", "FaultyMetricStore",
           "FaultyHistoryProvider"]

FAULTS_INJECTED_METRIC = "repro_faults_injected_total"

Callback = Callable[[KpiKey, TimeSeries], None]


class _PushShim:
    """Wraps one subscriber callback with push-layer fault decisions."""

    def __init__(self, plan: FaultPlan, callback: Callback,
                 count: Callable[[str], None]) -> None:
        self.plan = plan
        self.callback = callback
        self.count = count
        #: reorder holds: at most one swapped-back fragment per key.
        self.held: Dict[KpiKey, TimeSeries] = {}
        self.subscription: Optional[Subscription] = None

    def __call__(self, key: KpiKey, fragment: TimeSeries) -> None:
        action = self.plan.push_action(str(key), fragment.start)
        if action == DROP:
            self.count(DROP)
            return
        if action == REORDER and key not in self.held:
            # Hold this push; it goes out *after* the key's next one.
            self.held[key] = fragment
            self.count(REORDER)
            return
        self.callback(key, fragment)
        if action == DUPLICATE:
            self.count(DUPLICATE)
            self.callback(key, fragment)
        swapped = self.held.pop(key, None)
        if swapped is not None:
            self.callback(key, swapped)

    def flush_held(self) -> None:
        """Deliver every swap-held fragment (pre-shutdown parity flush)."""
        if self.subscription is not None and not self.subscription.active:
            self.held.clear()
            return
        for key in sorted(self.held, key=str):
            self.callback(key, self.held[key])
        self.held.clear()


class FaultyMetricStore:
    """A :class:`~repro.telemetry.store.MetricStore` under a fault plan.

    Reads (``series``, ``range``, ``window_matrix``, …) pass straight
    through to the wrapped store — the database itself is durable.
    Writes and pushes go through the plan; call :meth:`advance` as
    virtual time moves to release matured delayed fragments, and
    :meth:`flush_all` before shutdown to deliver every straggler.
    """

    def __init__(self, inner: MetricStore, plan: FaultPlan,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.inner = inner
        self.plan = plan
        self.metrics = metrics
        #: per-key FIFO of ``(release_at, fragment)`` awaiting ingest.
        self._pending: Dict[KpiKey, Deque[Tuple[int, TimeSeries]]] = {}
        self._shims: List[_PushShim] = []

    # -- bookkeeping -----------------------------------------------------------

    @property
    def bin_seconds(self) -> int:
        return self.inner.bin_seconds

    @property
    def appended_fragments(self) -> int:
        """Durably ingested fragments (held ones count on release)."""
        return self.inner.appended_fragments

    @property
    def appended_bins(self) -> int:
        return self.inner.appended_bins

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def _count(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                FAULTS_INJECTED_METRIC,
                help="Faults injected into the live pipeline, by kind.",
            ).inc(kind=kind)

    def pending_fragments(self) -> int:
        return sum(len(q) for q in self._pending.values())

    # -- writes (ingest faults) ------------------------------------------------

    def append(self, key: KpiKey, fragment: TimeSeries) -> None:
        release = self.plan.ingest_release(str(key), fragment.start,
                                           fragment.end)
        queue = self._pending.get(key)
        if release is None and not queue:
            self.inner.append(key, fragment)
            return
        if release is None:
            # No fault of its own, but it must not overtake the held
            # head — agents flush their backlog in order.
            release = fragment.end
        else:
            self._count("hold")
        if queue is None:
            queue = self._pending[key] = deque()
        queue.append((release, fragment))

    def append_batch(self, items: List[Tuple[KpiKey, TimeSeries]]) -> None:
        """Batched append, unbatched on purpose: every fragment rolls
        its own ingest fault and pushes through its own shim decision,
        so a fused replay sees the exact per-fragment fault sequence an
        unfused one does."""
        for key, fragment in items:
            self.append(key, fragment)

    def advance(self, now: int) -> None:
        """Release every pending fragment matured by virtual time ``now``."""
        for key in sorted(self._pending, key=str):
            queue = self._pending[key]
            while queue and queue[0][0] <= now:
                self.inner.append(key, queue.popleft()[1])
            if not queue:
                del self._pending[key]

    def flush_all(self) -> None:
        """Deliver everything still in flight (call before shutdown).

        Pending ingest queues drain into the store in arrival order,
        then each shim delivers its swap-held pushes, so a bounded fault
        plan leaves no data behind and live-vs-offline parity can hold.
        """
        for key in sorted(self._pending, key=str):
            for _, fragment in self._pending[key]:
                self.inner.append(key, fragment)
        self._pending.clear()
        for shim in self._shims:
            shim.flush_held()

    # -- reads (pass-through) --------------------------------------------------

    def __contains__(self, key: KpiKey) -> bool:
        return key in self.inner

    def keys(self) -> List[KpiKey]:
        return self.inner.keys()

    def series(self, key: KpiKey) -> TimeSeries:
        return self.inner.series(key)

    def maybe_series(self, key: KpiKey) -> Optional[TimeSeries]:
        return self.inner.maybe_series(key)

    def range(self, key: KpiKey, from_time: int, to_time: int) -> TimeSeries:
        return self.inner.range(key, from_time, to_time)

    def window_matrix(self, keys: Iterable[KpiKey], from_time: int,
                      to_time: int) -> np.ndarray:
        return self.inner.window_matrix(keys, from_time, to_time)

    def subscription_count(self) -> int:
        return self.inner.subscription_count()

    # -- subscriptions (push faults) -------------------------------------------

    def subscribe(self, keys: Iterable[KpiKey], callback: Callback,
                  batch_callback=None) -> Subscription:
        # ``batch_callback`` is accepted but deliberately unused: push
        # faults (drop / duplicate / reorder) are rolled per fragment,
        # so deliveries must stay per-fragment through the shim.
        shim = _PushShim(self.plan, callback, self._count)
        sub = self.inner.subscribe(keys, shim)
        shim.subscription = sub
        self._shims.append(shim)
        return sub


class FaultyHistoryProvider:
    """A history provider with injected leading transient failures.

    For each ``(change, KPI)`` item the plan prescribes how many initial
    fetch attempts raise :class:`~repro.exceptions.TelemetryError`
    before the provider heals; fewer failures than the assessor's retry
    budget means the fetch recovers and the verdict is unchanged, more
    means a ``degraded`` annotation.  Attempt counting is per-process
    state, which is safe for resume because an attribution's whole retry
    loop completes within a single scheduler tick.
    """

    def __init__(self, inner, plan: FaultPlan,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.inner = inner
        self.plan = plan
        self.metrics = metrics
        self._attempts: Dict[Tuple[str, str], int] = {}

    def __call__(self, change, entity_type: str, entity: str, metric: str):
        key_str = "%s:%s:%s" % (entity_type, entity, metric)
        failures = self.plan.history_failures(change.change_id, key_str)
        if failures:
            item = (change.change_id, key_str)
            seen = self._attempts.get(item, 0)
            if seen < failures:
                self._attempts[item] = seen + 1
                if self.metrics is not None:
                    self.metrics.counter(
                        FAULTS_INJECTED_METRIC,
                        help="Faults injected into the live pipeline, "
                             "by kind.").inc(kind="history_error")
                raise TelemetryError(
                    "injected transient history failure %d/%d for %s"
                    % (seen + 1, failures, key_str))
        if self.inner is None:
            return None
        return self.inner(change, entity_type, entity, metric)
