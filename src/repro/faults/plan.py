"""The fault-plan DSL: seeded, stateless, scriptable by virtual time.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule` entries.  Each rule names one fault kind, an optional
probability, an optional virtual-time ``window`` and an optional
``key_glob`` (matched with :mod:`fnmatch` against the KPI key's string
form ``"entity_type:entity:metric"``).  A rule with probability 1 and a
window is a *scripted* fault; a rule with probability < 1 is a
*probabilistic* one.

Determinism is the load-bearing property: every decision is a pure
function of ``(seed, kind, key, fragment_start)`` through a stable
:func:`hashlib.blake2b` hash — no RNG stream to carry, so a resumed
replay reproduces exactly the faults of an uninterrupted one, across
processes and platforms (``hash()`` randomisation does not apply).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Optional, Tuple

from ..exceptions import ParameterError

__all__ = ["DELAY", "DROP", "DUPLICATE", "REORDER", "HISTORY_ERROR",
           "SILENCE", "FaultRule", "FaultPlan", "preset_plan",
           "PRESET_NAMES"]

#: Agent->store (ingest) faults: the fragment reaches the store late.
DELAY = "delay"
SILENCE = "silence"
#: Store->subscriber (push) faults: the durable store is intact, the
#: push channel loses, repeats or swaps deliveries.
DROP = "drop"
DUPLICATE = "duplicate"
REORDER = "reorder"
#: History-database faults: transient fetch errors.
HISTORY_ERROR = "history_error"

_INGEST_KINDS = (DELAY, SILENCE)
_PUSH_KINDS = (DROP, DUPLICATE, REORDER)
_ALL_KINDS = _INGEST_KINDS + _PUSH_KINDS + (HISTORY_ERROR,)

#: "deliver normally" — the absence of a push fault.
DELIVER = "deliver"


@dataclass(frozen=True)
class FaultRule:
    """One fault class with its scope and intensity.

    Attributes:
        kind: one of :data:`DELAY`, :data:`SILENCE`, :data:`DROP`,
            :data:`DUPLICATE`, :data:`REORDER`, :data:`HISTORY_ERROR`.
        probability: chance the rule fires for a matching event; 1.0
            with a ``window`` makes the rule fully scripted.
        delay_bins: (:data:`DELAY`) bins the fragment is held beyond its
            normal arrival.
        error_attempts: (:data:`HISTORY_ERROR`) leading fetch attempts
            per (change, KPI) item that raise before the provider heals.
        window: optional half-open virtual-time window ``(t0, t1)``; the
            rule only fires for events arriving inside it.  A
            :data:`SILENCE` rule holds matching fragments until ``t1``.
        key_glob: optional :mod:`fnmatch` pattern against the key string
            ``"entity_type:entity:metric"`` (e.g. ``"server:web-*:*"``).
    """

    kind: str
    probability: float = 1.0
    delay_bins: int = 1
    error_attempts: int = 1
    window: Optional[Tuple[int, int]] = None
    key_glob: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise ParameterError("unknown fault kind %r (one of %s)"
                                 % (self.kind, ", ".join(_ALL_KINDS)))
        if not 0.0 <= self.probability <= 1.0:
            raise ParameterError("probability must be in [0, 1]")
        if self.delay_bins < 1:
            raise ParameterError("delay_bins must be >= 1")
        if self.error_attempts < 1:
            raise ParameterError("error_attempts must be >= 1")
        if self.kind == SILENCE and self.window is None:
            raise ParameterError("a silence rule needs a window")
        if self.window is not None and self.window[1] <= self.window[0]:
            raise ParameterError("window end must exceed its start")

    def matches(self, key_str: str, when: int) -> bool:
        if self.window is not None and not \
                (self.window[0] <= when < self.window[1]):
            return False
        if self.key_glob is not None and not \
                fnmatchcase(key_str, self.key_glob):
            return False
        return True

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "probability": self.probability,
            "delay_bins": self.delay_bins,
            "error_attempts": self.error_attempts,
            "window": list(self.window) if self.window else None,
            "key_glob": self.key_glob,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultRule":
        window = doc.get("window")
        return cls(
            kind=doc["kind"],
            probability=float(doc.get("probability", 1.0)),
            delay_bins=int(doc.get("delay_bins", 1)),
            error_attempts=int(doc.get("error_attempts", 1)),
            window=tuple(window) if window else None,
            key_glob=doc.get("key_glob"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules; all decision methods are pure functions."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    name: str = ""

    # -- the deterministic coin --------------------------------------------

    def _roll(self, *parts) -> float:
        """A uniform [0, 1) draw, stable across processes and resumes."""
        token = "|".join([str(self.seed)] + [str(p) for p in parts])
        digest = hashlib.blake2b(token.encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def _fires(self, rule: FaultRule, *parts) -> bool:
        if rule.probability >= 1.0:
            return True
        return self._roll(rule.kind, *parts) < rule.probability

    # -- ingest layer -------------------------------------------------------

    def ingest_release(self, key_str: str, fragment_start: int,
                       fragment_end: int) -> Optional[int]:
        """When a delayed/silenced fragment may reach the store.

        ``None`` means no ingest fault: deliver immediately.  The
        fragment's natural arrival instant is its ``end`` (the agent
        flushes once the bin closes); a delay of ``d`` bins releases it
        ``d`` collection intervals later, a silence window releases it
        at the window's end.  The worst matching rule wins.
        """
        release = None
        bin_seconds = fragment_end - fragment_start  # >= one bin
        for rule in self.rules:
            if rule.kind == DELAY and \
                    rule.matches(key_str, fragment_end) and \
                    self._fires(rule, key_str, fragment_start):
                candidate = fragment_end + rule.delay_bins * bin_seconds
                release = candidate if release is None \
                    else max(release, candidate)
            elif rule.kind == SILENCE and \
                    rule.matches(key_str, fragment_end):
                release = rule.window[1] if release is None \
                    else max(release, rule.window[1])
        return release

    # -- push layer ---------------------------------------------------------

    def push_action(self, key_str: str, fragment_start: int) -> str:
        """What happens to one store->subscriber push.

        The first rule (in plan order) that matches and fires wins;
        returns :data:`DROP`, :data:`DUPLICATE`, :data:`REORDER` or
        :data:`DELIVER`.
        """
        for rule in self.rules:
            if rule.kind not in _PUSH_KINDS:
                continue
            if rule.matches(key_str, fragment_start) and \
                    self._fires(rule, key_str, fragment_start):
                return rule.kind
        return DELIVER

    # -- history layer ------------------------------------------------------

    def history_failures(self, change_id: str, key_str: str) -> int:
        """Leading fetch attempts that raise for this (change, KPI)."""
        failures = 0
        for rule in self.rules:
            if rule.kind != HISTORY_ERROR:
                continue
            if rule.key_glob is not None and not \
                    fnmatchcase(key_str, rule.key_glob):
                continue
            if self._fires(rule, change_id, key_str):
                failures = max(failures, rule.error_attempts)
        return failures

    def has_history_faults(self) -> bool:
        return any(rule.kind == HISTORY_ERROR for rule in self.rules)

    def has_ingest_faults(self) -> bool:
        return any(rule.kind in _INGEST_KINDS for rule in self.rules)

    # -- (de)serialisation --------------------------------------------------

    def describe(self) -> dict:
        """JSON document identifying this plan (checkpoint validation)."""
        return {"name": self.name, "seed": self.seed,
                "rules": [rule.as_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        return cls(seed=int(doc.get("seed", 0)),
                   rules=tuple(FaultRule.from_dict(r)
                               for r in doc.get("rules", ())),
                   name=doc.get("name", ""))


# -- named presets -------------------------------------------------------------

PRESET_NAMES = ("none", "drop-delay-dup", "reorder", "flaky-history",
                "agent-silence", "all")


def preset_plan(name: str, seed: int = 0,
                lead_time: int = 0, bin_seconds: int = 60,
                offset_bins: int = 0) -> FaultPlan:
    """A named fault plan, parameterised only by seed and timeline origin.

    ``lead_time`` anchors the scenario-relative silence window (the
    replay's first streamed instant, ``spec.lead_bins * MINUTE``);
    ``offset_bins`` pushes that window deeper into the stream — a
    mid-run outage instead of a cold-start one, which is what the
    health self-assessment smoke needs (the fault must land *after*
    its detectors' baseline ticks).
    """
    anchor = lead_time + offset_bins * bin_seconds
    if name == "none":
        return FaultPlan(seed=seed, rules=(), name=name)
    if name == "drop-delay-dup":
        rules = (
            FaultRule(DELAY, probability=0.12, delay_bins=2),
            FaultRule(DROP, probability=0.08),
            FaultRule(DUPLICATE, probability=0.08),
        )
    elif name == "reorder":
        rules = (FaultRule(REORDER, probability=0.15),)
    elif name == "flaky-history":
        rules = (FaultRule(HISTORY_ERROR, probability=0.6,
                           error_attempts=2),)
    elif name == "agent-silence":
        # Every server-level agent goes quiet for five collection
        # intervals (starting at the anchor), then floods the backlog.
        rules = (FaultRule(
            SILENCE,
            window=(anchor, anchor + 5 * bin_seconds),
            key_glob="server:*"),)
    elif name == "all":
        rules = (
            FaultRule(DELAY, probability=0.10, delay_bins=2),
            FaultRule(DROP, probability=0.06),
            FaultRule(DUPLICATE, probability=0.06),
            FaultRule(REORDER, probability=0.06),
            FaultRule(HISTORY_ERROR, probability=0.5, error_attempts=2),
            FaultRule(SILENCE,
                      window=(anchor, anchor + 5 * bin_seconds),
                      key_glob="server:*"),
        )
    else:
        raise ParameterError(
            "unknown fault plan %r (one of %s)"
            % (name, ", ".join(PRESET_NAMES)))
    return FaultPlan(seed=seed, rules=rules, name=name)
