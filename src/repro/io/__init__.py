"""Interchange formats: KPI series CSVs and JSONL change logs."""

from .changelog import (change_from_dict, change_to_dict, read_change_log,
                        write_change_log)
from .csvio import read_matrix, read_series, write_matrix, write_series

__all__ = ["change_from_dict", "change_to_dict", "read_change_log",
           "write_change_log", "read_matrix", "read_series",
           "write_matrix", "write_series"]
