"""JSON-lines interchange for software-change logs.

Change deployment logs are the source of truth FUNNEL reads impact sets
from (paper section 3.1).  One JSON object per line::

    {"change_id": "chg-000123", "kind": "config_change",
     "service": "search.backend", "hostnames": ["b-1", "b-2"],
     "at_time": 86460, "description": "...",
     "config_scope": "service"}

``kind`` is a :class:`~repro.types.ChangeKind` value; ``config_scope``
is optional and only valid for configuration changes.
"""

from __future__ import annotations

import json
import pathlib
from typing import TextIO, Union

from ..changes.change import SoftwareChange
from ..changes.log import ChangeLog
from ..exceptions import ChangeLogError
from ..types import ChangeKind

__all__ = ["read_change_log", "write_change_log", "change_to_dict",
           "change_from_dict"]

PathOrFile = Union[str, pathlib.Path, TextIO]

_REQUIRED = ("change_id", "kind", "service", "hostnames", "at_time")


def change_to_dict(change: SoftwareChange) -> dict:
    """The JSON-safe representation of one change record."""
    out = {
        "change_id": change.change_id,
        "kind": change.kind.value,
        "service": change.service,
        "hostnames": list(change.hostnames),
        "at_time": change.at_time,
    }
    if change.description:
        out["description"] = change.description
    if change.config_scope is not None:
        out["config_scope"] = change.config_scope
    return out


def change_from_dict(payload: dict) -> SoftwareChange:
    """Parse one change record; raises ChangeLogError on bad input."""
    missing = [k for k in _REQUIRED if k not in payload]
    if missing:
        raise ChangeLogError("change record missing fields: %s" % missing)
    try:
        kind = ChangeKind(payload["kind"])
    except ValueError:
        raise ChangeLogError(
            "unknown change kind %r" % (payload["kind"],)) from None
    return SoftwareChange(
        change_id=str(payload["change_id"]),
        kind=kind,
        service=str(payload["service"]),
        hostnames=tuple(payload["hostnames"]),
        at_time=int(payload["at_time"]),
        description=str(payload.get("description", "")),
        config_scope=payload.get("config_scope"),
    )


def _open_for(source: PathOrFile, mode: str):
    if isinstance(source, (str, pathlib.Path)):
        return open(source, mode), True
    return source, False


def read_change_log(source: PathOrFile,
                    concurrency_guard_seconds: int = 3600) -> ChangeLog:
    """Load a JSONL change log, enforcing the log's invariants."""
    log = ChangeLog(concurrency_guard_seconds=concurrency_guard_seconds)
    handle, owned = _open_for(source, "r")
    try:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ChangeLogError(
                    "line %d: invalid JSON (%s)" % (line_no, exc)
                ) from None
            log.record(change_from_dict(payload))
    finally:
        if owned:
            handle.close()
    return log


def write_change_log(log: ChangeLog, target: PathOrFile) -> None:
    """Write a ChangeLog as JSONL, time-ordered."""
    handle, owned = _open_for(target, "w")
    try:
        for change in log:
            handle.write(json.dumps(change_to_dict(change),
                                    sort_keys=True))
            handle.write("\n")
    finally:
        if owned:
            handle.close()
