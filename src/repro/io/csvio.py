"""CSV interchange for KPI series.

Two layouts are supported, both with a header row:

* **long** — ``timestamp,value``: one series, one sample per row;
* **wide** — ``timestamp,<unit>,<unit>,...``: one column per
  server/instance, which is the natural export of a metrics system and
  maps directly onto the ``(units, bins)`` matrices the DiD panels use.

Timestamps must be integers (simulation seconds or epoch seconds),
strictly increasing and equally spaced — the loader infers the bin width
and refuses gaps, because silently resampling operational data is how
impact assessments go wrong.
"""

from __future__ import annotations

import csv
import pathlib
from typing import List, Sequence, TextIO, Tuple, Union

import numpy as np

from ..exceptions import TelemetryError
from ..telemetry.timeseries import TimeSeries

__all__ = ["read_series", "write_series", "read_matrix", "write_matrix"]

PathOrFile = Union[str, pathlib.Path, TextIO]


def _open_for(source: PathOrFile, mode: str):
    if isinstance(source, (str, pathlib.Path)):
        return open(source, mode, newline=""), True
    return source, False


def _parse_timestamps(raw: List[str], where: str) -> np.ndarray:
    try:
        timestamps = np.asarray([int(v) for v in raw], dtype=np.int64)
    except ValueError as exc:
        raise TelemetryError("non-integer timestamp in %s: %s"
                             % (where, exc)) from None
    if timestamps.size < 2:
        raise TelemetryError("%s needs at least 2 samples" % where)
    steps = np.diff(timestamps)
    if steps.min() <= 0:
        raise TelemetryError("timestamps in %s are not strictly "
                             "increasing" % where)
    if steps.min() != steps.max():
        raise TelemetryError(
            "timestamps in %s are not equally spaced (bin widths %d..%d); "
            "resample before loading" % (where, steps.min(), steps.max())
        )
    return timestamps


def read_series(source: PathOrFile) -> TimeSeries:
    """Load a long-format ``timestamp,value`` CSV into a TimeSeries."""
    handle, owned = _open_for(source, "r")
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) < 2:
            raise TelemetryError("empty series CSV or missing header")
        raw_t, raw_v = [], []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise TelemetryError(
                    "line %d: expected 2 columns, got %d"
                    % (line_no, len(row))
                )
            raw_t.append(row[0])
            raw_v.append(row[1])
        timestamps = _parse_timestamps(raw_t, "series CSV")
        try:
            values = np.asarray([float(v) for v in raw_v])
        except ValueError as exc:
            raise TelemetryError("non-numeric value: %s" % exc) from None
        return TimeSeries(
            start=int(timestamps[0]),
            bin_seconds=int(timestamps[1] - timestamps[0]),
            values=values,
        )
    finally:
        if owned:
            handle.close()


def write_series(series: TimeSeries, target: PathOrFile,
                 value_header: str = "value") -> None:
    """Write a TimeSeries as a long-format CSV."""
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", value_header])
        for t, v in zip(series.timestamps(), series.values):
            writer.writerow([int(t), repr(float(v))])
    finally:
        if owned:
            handle.close()


def read_matrix(source: PathOrFile
                ) -> Tuple[np.ndarray, List[str], int, int]:
    """Load a wide-format CSV into a ``(units, bins)`` matrix.

    Returns:
        ``(matrix, unit_names, start, bin_seconds)`` — ``matrix[i]`` is
        the series of ``unit_names[i]``.
    """
    handle, owned = _open_for(source, "r")
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) < 2:
            raise TelemetryError("wide CSV needs timestamp + >=1 unit "
                                 "column")
        units = [name.strip() for name in header[1:]]
        if len(set(units)) != len(units):
            raise TelemetryError("duplicate unit columns in wide CSV")
        raw_t: List[str] = []
        rows: List[List[str]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise TelemetryError(
                    "line %d: expected %d columns, got %d"
                    % (line_no, len(header), len(row))
                )
            raw_t.append(row[0])
            rows.append(row[1:])
        timestamps = _parse_timestamps(raw_t, "wide CSV")
        try:
            matrix = np.asarray(
                [[float(v) for v in row] for row in rows]
            ).T
        except ValueError as exc:
            raise TelemetryError("non-numeric value: %s" % exc) from None
        return (matrix, units, int(timestamps[0]),
                int(timestamps[1] - timestamps[0]))
    finally:
        if owned:
            handle.close()


def write_matrix(matrix: np.ndarray, units: Sequence[str], start: int,
                 bin_seconds: int, target: PathOrFile) -> None:
    """Write a ``(units, bins)`` matrix as a wide-format CSV."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != len(units):
        raise TelemetryError(
            "matrix shape %s does not match %d unit names"
            % (matrix.shape, len(units))
        )
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", *units])
        for j in range(matrix.shape[1]):
            timestamp = start + j * bin_seconds
            writer.writerow([timestamp,
                             *(repr(float(v)) for v in matrix[:, j])])
    finally:
        if owned:
            handle.close()
