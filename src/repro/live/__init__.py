"""repro.live — the fleet-scale live assessment service.

The offline engine answers "what did this change do?" after the fact;
this package answers it *while the assessment window is still open*.
A :class:`~repro.live.watcher.ChangeWatcher` tails the change log and
opens metric-store subscriptions over each change's impact set; bounded
ingest queues absorb the push stream (shedding, not growing, under
overload); an event-time scheduler drains them and enforces per-change
deadlines; the :class:`~repro.live.assessor.LiveAssessor` advances one
streaming FUNNEL detector per (entity, KPI) and attributes declarations
the moment they fire; verdicts leave through the at-most-once
:class:`~repro.live.bus.VerdictBus`.

``repro live-replay`` streams a synthetic fleet scenario through the
whole pipeline in accelerated virtual time and can verify the verdicts
against ``repro assess-fleet`` — see ``docs/live.md``.
"""

from .assessor import ChangeSession, KpiTracker, LiveAssessor
from .bus import (JsonlVerdictSink, LiveVerdict, VerdictBus, read_verdicts,
                  verdict_sort_key)
from .checkpoint import (Checkpointer, load_checkpoint, restore_service,
                         snapshot_service, write_checkpoint)
from .config import DROP_NEWEST, DROP_OLDEST, ClusterConfig, LiveConfig
from .detector import IncrementalDetector
from .pool import DetectorPool
from .queues import IngestQueues
from .replay import (LiveReplayReport, fleet_kpi_keys,
                     offline_verdict_records, parity_live_config,
                     replay_scenario)
from .scheduler import EventTimeScheduler
from .service import LiveAssessmentService
from .watcher import ChangeWatcher, StoreHistoryProvider, default_priority

__all__ = [
    "ChangeSession", "KpiTracker", "LiveAssessor",
    "JsonlVerdictSink", "LiveVerdict", "VerdictBus",
    "read_verdicts", "verdict_sort_key",
    "Checkpointer", "load_checkpoint", "restore_service",
    "snapshot_service", "write_checkpoint",
    "DROP_NEWEST", "DROP_OLDEST", "ClusterConfig", "LiveConfig",
    "DetectorPool", "IncrementalDetector", "IngestQueues",
    "LiveReplayReport", "fleet_kpi_keys", "offline_verdict_records",
    "parity_live_config", "replay_scenario",
    "EventTimeScheduler", "LiveAssessmentService",
    "ChangeWatcher", "StoreHistoryProvider", "default_priority",
]
