"""Shared detector state blocks: the fleet-tensor side of the live path.

At fleet scale a tick advances hundreds of
:class:`~repro.live.detector.IncrementalDetector` instances by the same
bin.  When each detector owns private ``values``/``norm``/``scores``
arrays, every per-tick operation — the append, the normalisation, the
pooled-scoring gather — crosses one Python frame *per detector* and
copies each segment once on the way into the stacked scorer.

:class:`DetectorArena` removes both costs: it owns one shared
``(n_rows, capacity)`` float64 block per plane (values, norm, scores)
and hands each detector a *row*.  The detector's array attributes become
row views, so all of its arithmetic is unchanged — same floats, same
operations, different backing storage — while the fused tick path can:

* scatter-write one tick's samples for every tracker in a single fancy
  assignment (:meth:`extend_batch`), and normalise them with one
  broadcast ``(x - med[:, None]) / denom[:, None]`` that is elementwise
  the scalar transform each detector would have applied;
* gather every pending score segment for a stacked
  :meth:`~repro.core.ika.IkaSST.scores_batch` call as one row-sliced
  matrix (:meth:`gather_norm`) instead of ``n`` per-detector copies.

Rows are recycled: :meth:`release` returns a row to the free list and a
detector leaving a shared arena first *detaches* (copies its prefix into
a private single-row arena) so its state stays readable after the
session closes.  Score rows are zeroed on acquisition — the detectors'
invariant is that ``scores[:n]`` is zero wherever no score was computed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["DetectorArena"]

#: Initial column capacity, in bins (matches the old per-detector floor).
_MIN_CAPACITY = 128

#: Initial row count of a shared arena.
_MIN_ROWS = 8


class DetectorArena:
    """One shared ``(rows, capacity)`` float64 block per detector plane."""

    def __init__(self, capacity: int = _MIN_CAPACITY,
                 rows: int = 1) -> None:
        capacity = max(1, int(capacity))
        rows = max(1, int(rows))
        self.values = np.empty((rows, capacity), dtype=np.float64)
        self.norm = np.empty((rows, capacity), dtype=np.float64)
        self.scores = np.zeros((rows, capacity), dtype=np.float64)
        self._free: List[int] = list(range(rows - 1, -1, -1))
        self._in_use = 0

    # -- geometry --------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Columns available per row."""
        return self.values.shape[1]

    @property
    def rows(self) -> int:
        """Rows allocated (in use + free)."""
        return self.values.shape[0]

    @property
    def active_rows(self) -> int:
        """Rows currently owned by a detector."""
        return self._in_use

    # -- row lifecycle ---------------------------------------------------------

    def acquire(self) -> int:
        """Claim a row; its scores plane is zeroed, the rest is garbage."""
        if not self._free:
            self._grow_rows(max(2 * self.rows, _MIN_ROWS))
        row = self._free.pop()
        self.scores[row, :] = 0.0
        self._in_use += 1
        return row

    def release(self, row: int) -> None:
        """Return ``row`` to the free list for reuse."""
        self._free.append(row)
        self._in_use -= 1

    def _grow_rows(self, rows: int) -> None:
        old = self.rows
        for name in ("values", "norm", "scores"):
            block = getattr(self, name)
            grown = (np.zeros if name == "scores" else np.empty)(
                (rows, self.capacity), dtype=np.float64)
            grown[:old] = block
            setattr(self, name, grown)
        self._free.extend(range(rows - 1, old - 1, -1))

    def ensure_capacity(self, needed: int) -> None:
        """Grow every plane to at least ``needed`` columns (geometric).

        New score columns are zero-filled, preserving the detectors'
        zeros-where-unscored invariant, exactly as the old per-detector
        ``_grow`` did.
        """
        if needed <= self.capacity:
            return
        capacity = max(2 * self.capacity, needed)
        for name in ("values", "norm", "scores"):
            block = getattr(self, name)
            grown = (np.zeros if name == "scores" else np.empty)(
                (self.rows, capacity), dtype=np.float64)
            grown[:, :block.shape[1]] = block
            setattr(self, name, grown)

    # -- fused tick operations -------------------------------------------------

    def extend_batch(self, items: Sequence[Tuple[object, np.ndarray]]) -> int:
        """Append one tick's samples to many detectors at once.

        ``items`` is ``[(detector, values), ...]`` in delivery order.
        Detectors that live in this arena with their robust statistics
        already fixed take the tensor path: one fancy scatter-write into
        the values plane per distinct chunk width, then one broadcast
        normalise — ``(x - med[:, None]) / (denom[:, None])`` computes
        elementwise exactly the scalar ``(x - med) / denom`` each
        detector applies, so the norm plane is bitwise what sequential
        :meth:`~repro.live.detector.IncrementalDetector.extend` calls
        would have written.  Everything else (foreign arena, statistics
        still warming up across the baseline boundary) falls back to the
        detector's own ``extend``.

        Returns the number of rows that took the tensor path.
        """
        groups: dict = {}
        for detector, values in items:
            values = np.asarray(values, dtype=np.float64).ravel()
            if values.size == 0:
                continue
            if detector.arena is not self or detector._stats is None:
                detector.extend(values)
                continue
            groups.setdefault(values.size, []).append((detector, values))
        scattered = 0
        for width, members in groups.items():
            rows = np.array([d._row for d, _ in members], dtype=np.intp)
            lengths = np.array([d._n for d, _ in members], dtype=np.intp)
            self.ensure_capacity(int(lengths.max()) + width)
            matrix = np.stack([values for _, values in members])
            cols = lengths[:, None] + np.arange(width, dtype=np.intp)[None, :]
            self.values[rows[:, None], cols] = matrix
            meds = np.array([d._stats[0] for d, _ in members],
                            dtype=np.float64)
            denoms = np.array([d._denominator for d, _ in members],
                              dtype=np.float64)
            self.norm[rows[:, None], cols] = (
                (matrix - meds[:, None]) / denoms[:, None])
            for detector, _ in members:
                detector._n += width
            scattered += len(members)
        return scattered

    def gather_norm(self, rows: Sequence[int], lo: int, hi: int
                    ) -> np.ndarray:
        """Stack ``norm[row, lo:hi]`` for every row — one contiguous copy.

        Row-fancy indexing with a column slice materialises exactly the
        ``np.stack([...])`` of per-detector segments the pool used to
        build, without the per-member Python loop.
        """
        return self.norm[np.asarray(rows, dtype=np.intp), lo:hi]
