"""The live assessor: fragments in, attributed verdicts out.

One :class:`ChangeSession` exists per admitted software change.  It owns
the change's ingest queues, one :class:`KpiTracker` (an
:class:`~repro.live.detector.IncrementalDetector`) per monitored KPI,
and growing buffers for the peer-control series.  The
:class:`LiveAssessor` consumes drained fragments: treated fragments
advance their tracker and, the moment a declaration fires, the DiD
attribution of :meth:`repro.core.funnel.Funnel.attribute` runs on the
buffered panels — peers for dark launches on machine-level KPIs, the
history provider otherwise — and the verdict goes onto the bus.

Panel equivalence with the offline engine: the DiD panels only read
samples up to the declaration index (``post_hi = index + 1``), so
attributing at declaration time from buffers is bit-identical to the
offline engine slicing the full window.  When the declaring treated
series is momentarily ahead of a control buffer (its peers' fragments
for the same bin are still queued), the attribution parks on the
session's pending list and retries as control fragments land.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..changes.change import SoftwareChange
from ..core.funnel import Funnel
from ..exceptions import TelemetryError
from ..obs.health import VERDICT_LAG_BUCKETS, VERDICT_LAG_METRIC
from ..obs.metrics import MetricsRegistry
from ..telemetry.kpi import KpiKey
from ..telemetry.timeseries import TimeSeries
from ..topology.impact import ImpactSet
from ..types import DetectedChange
from .arena import DetectorArena
from .bus import LiveVerdict, VerdictBus
from .config import LiveConfig
from .detector import IncrementalDetector
from .pool import DetectorPool
from .queues import IngestQueues

__all__ = ["KpiTracker", "ChangeSession", "LiveAssessor"]

FUSED_BATCHES_METRIC = "repro_live_fused_batches_total"
FUSED_ROWS_METRIC = "repro_live_fused_rows_total"
GAP_BINS_METRIC = "repro_live_gap_bins_total"
CONTROL_DROPPED_METRIC = "repro_live_control_rows_dropped_total"
DUPLICATE_FRAGMENTS_METRIC = "repro_live_duplicate_fragments_total"
REPAIRED_BINS_METRIC = "repro_live_repaired_bins_total"
RECONCILED_KEYS_METRIC = "repro_live_reconciled_keys_total"
FETCH_ATTEMPTS_METRIC = "repro_live_fetch_attempts_total"
FETCH_FAILURES_METRIC = "repro_live_fetch_failures_total"
DEGRADED_VERDICTS_METRIC = "repro_live_degraded_verdicts_total"

#: Sentinel for a history fetch attempt that failed (error or timeout).
_FETCH_FAILED = object()

ControlGroupKey = Tuple[str, str]  # (entity_type, metric)


class _SeriesBuffer:
    """A growable float column with its start time (control series)."""

    __slots__ = ("start", "values", "length", "degraded")

    def __init__(self, start: int) -> None:
        self.start = start
        self.values = np.empty(128, dtype=np.float64)
        self.length = 0
        self.degraded = False

    def extend(self, values: np.ndarray) -> None:
        needed = self.length + values.size
        if needed > self.values.size:
            grown = np.empty(max(2 * self.values.size, needed),
                             dtype=np.float64)
            grown[:self.length] = self.values[:self.length]
            self.values = grown
        self.values[self.length:needed] = values
        self.length = needed

    def view(self, n: int) -> np.ndarray:
        return self.values[:n]


class KpiTracker:
    """One monitored (entity, KPI) of one change."""

    def __init__(self, key: KpiKey, change_index: int, start_time: int,
                 config: LiveConfig,
                 arena: Optional[DetectorArena] = None) -> None:
        self.key = key
        self.start_time = start_time
        self.detector = IncrementalDetector(
            change_index, config.funnel,
            score_chunk_bins=config.score_chunk_bins,
            deferred_scoring=config.pooled_scoring,
            arena=arena)
        self.change_index = change_index
        self.degraded = False
        self.done = False
        self.declaration: Optional[DetectedChange] = None


class ChangeSession:
    """Everything the pipeline holds for one in-flight change."""

    def __init__(self, change: SoftwareChange, impact: ImpactSet,
                 priority: float, deadline: int,
                 queues: IngestQueues) -> None:
        self.change = change
        self.impact = impact
        self.priority = priority
        self.deadline = deadline
        self.queues = queues
        self.trackers: Dict[KpiKey, KpiTracker] = {}
        #: peer keys per (entity_type, metric), in the offline fetch order.
        self.control_groups: Dict[ControlGroupKey, List[KpiKey]] = {}
        self.control_buffers: Dict[KpiKey, _SeriesBuffer] = {}
        #: attributions waiting for control buffers to catch up.
        self.pending: List[KpiTracker] = []
        self.expected_next: Dict[KpiKey, int] = {}
        self.delivered_through: Dict[KpiKey, int] = {}
        self.subscription = None
        self.started_perf = time.perf_counter()
        self.verdicts = 0

    @property
    def change_id(self) -> str:
        return self.change.change_id

    def subscribed_keys(self) -> List[KpiKey]:
        return list(self.trackers) + list(self.control_buffers)

    @property
    def watermark(self) -> Optional[int]:
        """The event time every subscribed KPI is processed through."""
        if not self.delivered_through:
            return None
        return min(self.delivered_through.values())

    def open_trackers(self) -> List[KpiTracker]:
        return [t for t in self.trackers.values() if not t.done]


class LiveAssessor:
    """Routes drained fragments into trackers and attributes declarations."""

    def __init__(self, config: LiveConfig, bus: VerdictBus,
                 metrics: Optional[MetricsRegistry] = None,
                 history_provider=None, store=None,
                 clock=time.perf_counter, sleep=time.sleep) -> None:
        self.config = config
        self.bus = bus
        self.metrics = metrics or MetricsRegistry()
        self.funnel = Funnel(config.funnel)
        #: ``(change, entity_type, entity, metric) -> Optional[ndarray]``
        #: of historical-control rows; ``None`` provider (or return)
        #: routes the no-peer attribution to the uncontrolled verdict.
        self.history_provider = history_provider
        #: the durable metric store, for gap repair (``repair_from_store``).
        self.store = store
        #: wall-clock source for fetch timeout budgets (injectable).
        self.clock = clock
        #: backoff sleeper between fetch retries (injectable).
        self.sleep = sleep
        #: stacked cross-detector scorer, active under pooled_scoring.
        self.pool = (DetectorPool(self.metrics)
                     if config.pooled_scoring else None)
        #: shared state blocks every tracker's detector lives in — one
        #: scatter-write + one broadcast normalise per fused tick, and
        #: contiguous row-gathers for the pool's stacked scoring.
        self.arena = DetectorArena()

    # -- fragment routing ------------------------------------------------------

    def on_fragment(self, session: ChangeSession, key: KpiKey,
                    fragment: TimeSeries, now: int,
                    stage: Optional[Dict[KpiKey, List[np.ndarray]]] = None
                    ) -> None:
        """Route one delivered fragment, healing a lossy push channel.

        The push stream is treated as at-least-once and possibly holey:
        an exact redelivery is dropped, an overlapping fragment is
        trimmed to its unseen suffix, and a fragment that skips ahead is
        either repaired from the durable store (``repair_from_store``)
        or degrades the item to a ``gap`` verdict as before.

        Deliveries are truncated at the session deadline: under a close
        grace (``close_grace_seconds``) late releases can carry bins
        beyond the assessment window, which must never reach a detector.

        ``stage`` (fused ingest only) collects healed tracker samples
        per key instead of extending each detector inline; the caller
        scatter-writes the whole collection through the arena at the end
        of the batch.
        """
        if fragment.start >= session.deadline:
            return
        if fragment.end > session.deadline:
            fragment = fragment.slice_time(fragment.start, session.deadline)
        expected = session.expected_next.get(key)
        if expected is not None:
            if fragment.end <= expected:
                # Full duplicate: every bin was already processed.
                self.metrics.counter(
                    DUPLICATE_FRAGMENTS_METRIC,
                    help="Redelivered fragments dropped or trimmed.",
                ).inc(kind="duplicate")
                return
            if fragment.start < expected:
                # Overlap: keep only the unseen suffix.
                self.metrics.counter(
                    DUPLICATE_FRAGMENTS_METRIC,
                    help="Redelivered fragments dropped or trimmed.",
                ).inc(kind="overlap")
                fragment = fragment.slice_time(expected, fragment.end)
            elif fragment.start > expected:
                patch = self._repair(key, expected, fragment.start)
                if patch is None:
                    self._mark_gap(session, key, fragment, expected)
                    session.delivered_through[key] = max(
                        session.delivered_through.get(key, fragment.end),
                        fragment.end)
                    session.expected_next[key] = fragment.end
                    return
                self._deliver(session, key, patch, now, stage)
        self._deliver(session, key, fragment, now, stage)

    def on_fragment_batch(self, session: ChangeSession,
                          batch: List[Tuple[KpiKey, TimeSeries]],
                          now: int) -> None:
        """Route one drained tick batch through the fused ingest plane.

        Each fragment is healed exactly as :meth:`on_fragment` would;
        eligible tracker deliveries (deferred detector, statistics
        fixed, living in the shared arena) are *staged* instead of
        extended one by one, then applied with one
        :meth:`~repro.live.arena.DetectorArena.extend_batch` scatter at
        the end.  Staging is invisible: deferred extends never declare
        (scoring happens in the pool stage), per-key sample order is the
        batch order, and attribution retries triggered by control
        fragments only read series prefixes that were complete before
        this batch — so the detector state after the batch is bitwise
        the sequential path's.
        """
        stage: Dict[KpiKey, List[np.ndarray]] = {}
        for key, fragment in batch:
            self.on_fragment(session, key, fragment, now, stage=stage)
        self._flush_stage(session, stage)

    def _flush_stage(self, session: ChangeSession,
                     stage: Dict[KpiKey, List[np.ndarray]]) -> None:
        if not stage:
            return
        items = []
        for key, chunks in stage.items():
            # Sequential deferred extends only buffer, so one extend of
            # the concatenation writes the identical values/norm prefix.
            values = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            items.append((session.trackers[key].detector, values))
        scattered = self.arena.extend_batch(items)
        self.metrics.counter(
            FUSED_BATCHES_METRIC,
            help="Fused arena scatter-writes (one per drained batch).",
        ).inc()
        rows = self.metrics.counter(
            FUSED_ROWS_METRIC,
            help="Detector rows appended through the fused ingest "
                 "plane, by path.")
        if scattered:
            rows.inc(scattered, path="tensor")
        if len(items) - scattered:
            rows.inc(len(items) - scattered, path="fallback")

    def _repair(self, key: KpiKey, lo: int, hi: int) -> Optional[TimeSeries]:
        """The missing ``[lo, hi)`` range read back from the store."""
        if not self.config.repair_from_store or self.store is None:
            return None
        series = self.store.maybe_series(key)
        if series is None:
            return None
        try:
            patch = series.slice_time(lo, hi)
        except TelemetryError:
            return None
        if patch.start != lo or len(patch) != (hi - lo) // patch.bin_seconds:
            return None  # the store does not (yet) cover the hole
        self.metrics.counter(
            REPAIRED_BINS_METRIC,
            help="Bins recovered from the store after dropped pushes.",
        ).inc(len(patch))
        return patch

    def _deliver(self, session: ChangeSession, key: KpiKey,
                 fragment: TimeSeries, now: int,
                 stage: Optional[Dict[KpiKey, List[np.ndarray]]] = None
                 ) -> None:
        session.delivered_through[key] = max(
            session.delivered_through.get(key, fragment.end), fragment.end)
        session.expected_next[key] = fragment.end

        tracker = session.trackers.get(key)
        if tracker is not None:
            if tracker.done or tracker.degraded:
                return
            detector = tracker.detector
            if (stage is not None and detector.deferred
                    and detector._stats is not None
                    and detector.arena is self.arena):
                stage.setdefault(key, []).append(
                    np.asarray(fragment.values, dtype=np.float64).ravel())
                return
            declared = detector.extend(fragment.values)
            if declared is not None:
                tracker.declaration = declared
                self._attribute(session, tracker, now)
            return

        buffer = session.control_buffers.get(key)
        if buffer is not None and not buffer.degraded:
            buffer.extend(fragment.values)
            if session.pending:
                self._retry_pending(session, now)

    # -- pooled scoring --------------------------------------------------------

    def pool_score(self, sessions: List[ChangeSession], now: int) -> int:
        """Score every open tracker's pending segment in stacked batches.

        The scheduler calls this once per tick under ``pooled_scoring``,
        after the drain and before deadline closes: trackers buffered
        their fragments without scoring (deferred mode), so one
        :meth:`~repro.live.pool.DetectorPool.score_pending` pass here
        computes exactly the scores the per-fragment path would have —
        bitwise — and any declaration routes through the same
        ``_attribute`` path.  Returns the number of declarations found.
        """
        if self.pool is None:
            return 0
        work: List[Tuple[ChangeSession, KpiTracker]] = []
        for session in sessions:
            for tracker in session.trackers.values():
                if (tracker.done or tracker.degraded
                        or tracker.declaration is not None):
                    continue
                work.append((session, tracker))
        if not work:
            return 0
        declared = self.pool.score_pending(
            [tracker.detector for _, tracker in work])
        for index, declaration in declared:
            session, tracker = work[index]
            tracker.declaration = declaration
            self._attribute(session, tracker, now)
        return len(declared)

    def _mark_gap(self, session: ChangeSession, key: KpiKey,
                  fragment: TimeSeries, expected: int) -> None:
        gap_bins = max(1, (fragment.start - expected)
                       // max(fragment.bin_seconds, 1))
        self.metrics.counter(
            GAP_BINS_METRIC,
            help="Bins lost to shed fragments, per subscribed KPI.",
        ).inc(gap_bins)
        tracker = session.trackers.get(key)
        if tracker is not None:
            tracker.degraded = True
        buffer = session.control_buffers.get(key)
        if buffer is not None:
            buffer.degraded = True

    # -- degraded-telemetry recovery -------------------------------------------

    def reconcile_session(self, session: ChangeSession, now: int) -> int:
        """Pull any store data the push channel never delivered.

        Called at session close (deadline or shutdown) when
        ``repair_from_store`` is on: a dropped *final* push has no later
        arrival to trigger inline repair, so the tail is read back from
        the store directly, capped at the session deadline so the live
        detector never sees past the assessment window.  Returns the
        number of keys that needed a catch-up read.
        """
        if not self.config.repair_from_store or self.store is None:
            return 0
        caught_up = 0
        for key in session.subscribed_keys():
            expected = session.expected_next.get(key)
            if expected is None:
                continue
            series = self.store.maybe_series(key)
            if series is None:
                continue
            hi = min(series.end, session.deadline)
            if hi <= expected:
                continue
            try:
                fragment = series.slice_time(expected, hi)
            except TelemetryError:
                continue
            if not len(fragment):
                continue
            self.metrics.counter(
                RECONCILED_KEYS_METRIC,
                help="Keys caught up from the store at session close.",
            ).inc()
            caught_up += 1
            self.on_fragment(session, key, fragment, now)
        return caught_up

    # -- history fetch (retry / timeout budget) --------------------------------

    def _fetch_history(self, session: ChangeSession,
                       tracker: KpiTracker) -> Tuple[Optional[np.ndarray],
                                                     bool]:
        """Historical-control rows with retry-with-backoff.

        Returns ``(rows, healthy)``: ``healthy`` is False only when the
        provider kept failing (errors or timeout-budget overruns) past
        ``fetch_retries`` — the caller then degrades the verdict
        annotation instead of crashing the pipeline.
        """
        if self.history_provider is None:
            return None, True
        attempts = self.config.fetch_retries + 1
        backoff = self.config.fetch_backoff_seconds
        budget = self.config.fetch_timeout_seconds
        for attempt in range(attempts):
            self.metrics.counter(
                FETCH_ATTEMPTS_METRIC,
                help="History-provider fetch attempts.").inc()
            started = self.clock()
            try:
                rows = self.history_provider(
                    session.change, tracker.key.entity_type,
                    tracker.key.entity, tracker.key.metric)
            except TelemetryError:
                rows = _FETCH_FAILED
                outcome = "error"
            else:
                if budget > 0 and self.clock() - started > budget:
                    rows = _FETCH_FAILED
                    outcome = "timeout"
            if rows is not _FETCH_FAILED:
                return rows, True
            self.metrics.counter(
                FETCH_FAILURES_METRIC,
                help="Failed history fetch attempts, by outcome.",
            ).inc(outcome=outcome)
            if attempt + 1 < attempts and backoff > 0:
                self.sleep(backoff)
                backoff *= 2
        return None, False

    # -- attribution -----------------------------------------------------------

    def _control_matrix(self, session: ChangeSession, tracker: KpiTracker
                        ) -> Tuple[Optional[np.ndarray], bool]:
        """The peer panel rows, or ``(None, wait)`` when unavailable.

        ``wait`` is True when peers exist but have not yet delivered the
        declaration bin — the caller should park the attribution and
        retry; False means there is genuinely no peer control.
        """
        group = session.control_groups.get(
            (tracker.key.entity_type, tracker.key.metric))
        if not group:
            return None, False
        rows: List[_SeriesBuffer] = []
        for peer_key in group:
            buffer = session.control_buffers[peer_key]
            if buffer.degraded or buffer.start != tracker.start_time:
                self.metrics.counter(
                    CONTROL_DROPPED_METRIC,
                    help="Peer-control rows unusable at attribution "
                         "time (gaps or misaligned backfill).").inc()
                continue
            rows.append(buffer)
        if not rows:
            return None, False
        need = tracker.declaration.index + 1
        length = min(buffer.length for buffer in rows)
        if length < need:
            return None, True
        return np.vstack([buffer.view(length) for buffer in rows]), False

    def _attribute(self, session: ChangeSession, tracker: KpiTracker,
                   now: int, force: bool = False) -> bool:
        """Run DiD for a declared tracker; False = parked as pending."""
        control, wait = self._control_matrix(session, tracker)
        if wait and not force:
            if tracker not in session.pending:
                session.pending.append(tracker)
            return False
        history = None
        degraded_notes: Tuple[str, ...] = ()
        if control is None and self.history_provider is not None:
            history, healthy = self._fetch_history(session, tracker)
            if not healthy:
                degraded_notes = (
                    "degraded: history unavailable after %d attempts"
                    % (self.config.fetch_retries + 1),)
                self.metrics.counter(
                    DEGRADED_VERDICTS_METRIC,
                    help="Verdicts attributed without a healthy "
                         "history fetch.").inc()
        assessment = self.funnel.attribute(
            tracker.detector.series, tracker.declaration,
            tracker.change_index, control=control, history=history)
        self._emit(session, tracker, now, LiveVerdict(
            change_id=session.change_id,
            entity_type=tracker.key.entity_type,
            entity=tracker.key.entity,
            metric=tracker.key.metric,
            verdict=assessment.verdict.value,
            reason="declared",
            emitted_at=now,
            declaration_bin=tracker.declaration.index,
            did_estimate=assessment.did_estimate,
            control=assessment.control,
            direction=tracker.declaration.direction,
            notes=tuple(assessment.notes) + degraded_notes,
        ))
        return True

    def _retry_pending(self, session: ChangeSession, now: int) -> None:
        still_waiting = []
        for tracker in session.pending:
            if tracker.done:
                continue
            if not self._attribute(session, tracker, now):
                still_waiting.append(tracker)
        session.pending = still_waiting

    def _emit(self, session: ChangeSession, tracker: KpiTracker, now: int,
              verdict: LiveVerdict) -> None:
        tracker.done = True
        session.verdicts += 1
        self.metrics.histogram(
            VERDICT_LAG_METRIC,
            help="Deployment-to-verdict latency in virtual seconds.",
            buckets=VERDICT_LAG_BUCKETS,
        ).observe(max(0, now - session.change.at_time))
        self.bus.publish(verdict)

    # -- close -----------------------------------------------------------------

    def close_session(self, session: ChangeSession, now: int) -> None:
        """Deadline close: flush detectors, settle every open tracker.

        Trackers that declare during the flush are attributed (with
        whatever control rows exist — ``force=True`` falls back to
        history / no-control when the peers never caught up); the rest
        close as ``no_change``, with reason ``deadline`` or ``gap``.
        """
        for tracker in session.open_trackers():
            if not tracker.degraded and tracker.declaration is None:
                declared = tracker.detector.flush()
                if declared is not None:
                    tracker.declaration = declared
            if tracker.declaration is not None and not tracker.degraded:
                self._attribute(session, tracker, now, force=True)
                continue
            self._emit(session, tracker, now, LiveVerdict(
                change_id=session.change_id,
                entity_type=tracker.key.entity_type,
                entity=tracker.key.entity,
                metric=tracker.key.metric,
                verdict="no_change",
                reason="gap" if tracker.degraded else "deadline",
                emitted_at=now,
            ))
        session.pending = []
