"""The verdict bus: at-most-once delivery of live assessments.

Every closed (change, entity, KPI) item produces exactly one
:class:`LiveVerdict` — declared-and-attributed, deadline ``no_change``,
or degraded (``gap``).  The bus deduplicates on the item key, fans each
verdict out to its subscribers once, and counts what it saw; the JSONL
sink is the durable tap the CLI and CI artifacts use.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = ["LiveVerdict", "VerdictBus", "JsonlVerdictSink"]

VERDICTS_METRIC = "repro_live_verdicts_total"
DUPLICATES_METRIC = "repro_live_duplicate_verdicts_total"

VerdictKey = Tuple[str, str, str, str]


@dataclass(frozen=True)
class LiveVerdict:
    """One item's final live answer.

    ``reason`` records *why* the item closed: ``"declared"`` (a change
    was declared and attributed), ``"deadline"`` (the assessment window
    elapsed with no declaration), or ``"gap"`` (load shedding punched a
    hole in the item's stream, so no sound verdict was possible).
    ``declaration_bin`` is the window-relative bin of the declaration —
    the same index the offline engine reports — or ``None``.
    ``emitted_at`` is the (virtual) time the verdict left the pipeline.
    """

    change_id: str
    entity_type: str
    entity: str
    metric: str
    verdict: str
    reason: str
    emitted_at: int
    declaration_bin: Optional[int] = None
    did_estimate: Optional[float] = None
    control: Optional[str] = None
    direction: int = 0
    notes: Tuple[str, ...] = ()

    @property
    def key(self) -> VerdictKey:
        return (self.change_id, self.entity_type, self.entity, self.metric)

    def parity_tuple(self) -> tuple:
        """The fields live and offline must agree on (see docs/live.md)."""
        return (self.change_id, self.entity_type, self.entity, self.metric,
                self.verdict, self.declaration_bin)

    def as_dict(self) -> dict:
        doc = asdict(self)
        doc["notes"] = list(self.notes)
        return doc


class VerdictBus:
    """Fan-out with at-most-once delivery per (change, entity, KPI).

    A key is marked seen *before* its verdict is delivered, so a failing
    subscriber can never cause a redelivery; a second publish for the
    same key is dropped and counted.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.verdicts: List[LiveVerdict] = []
        self.published_by_reason: Dict[str, int] = {}
        self._seen: Dict[VerdictKey, bool] = {}
        self._subscribers: List[Callable[[LiveVerdict], None]] = []

    def subscribe(self, subscriber: Callable[[LiveVerdict], None]) -> None:
        self._subscribers.append(subscriber)

    def publish(self, verdict: LiveVerdict) -> bool:
        """Deliver ``verdict`` unless its key was already published."""
        if verdict.key in self._seen:
            self.metrics.counter(
                DUPLICATES_METRIC,
                help="Verdicts dropped by at-most-once delivery.").inc()
            return False
        self._seen[verdict.key] = True
        self.verdicts.append(verdict)
        self.published_by_reason[verdict.reason] = \
            self.published_by_reason.get(verdict.reason, 0) + 1
        self.metrics.counter(
            VERDICTS_METRIC, help="Verdicts published on the bus."
        ).inc(verdict=verdict.verdict, reason=verdict.reason)
        for subscriber in tuple(self._subscribers):
            subscriber(verdict)
        return True

    def __len__(self) -> int:
        return len(self.verdicts)


class JsonlVerdictSink:
    """Bus subscriber writing one JSON object per verdict line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")

    def __call__(self, verdict: LiveVerdict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(verdict.as_dict(), sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlVerdictSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
