"""The verdict bus: at-most-once delivery of live assessments.

Every closed (change, entity, KPI) item produces exactly one
:class:`LiveVerdict` — declared-and-attributed, deadline ``no_change``,
or degraded (``gap``).  The bus deduplicates on the item key, fans each
verdict out to its subscribers once, and counts what it saw; the JSONL
sink is the durable tap the CLI and CI artifacts use.

The serialized form is a *contract*: ``LiveVerdict.as_dict`` field
names/types and the sink's ``json.dumps(..., sort_keys=True)`` line
format are what the cluster fan-in (:mod:`repro.cluster`) byte-compares
across process boundaries, so both are pinned by golden tests.  The
sink is line-buffered and fsyncs on close, so a killed shard leaves a
readable verdict file truncated by at most one torn final line — which
:func:`read_verdicts` tolerates.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from ..exceptions import TelemetryError
from ..obs.metrics import MetricsRegistry

__all__ = ["LiveVerdict", "VerdictBus", "JsonlVerdictSink",
           "read_verdicts", "verdict_sort_key"]

VERDICTS_METRIC = "repro_live_verdicts_total"
DUPLICATES_METRIC = "repro_live_duplicate_verdicts_total"

VerdictKey = Tuple[str, str, str, str]


@dataclass(frozen=True)
class LiveVerdict:
    """One item's final live answer.

    ``reason`` records *why* the item closed: ``"declared"`` (a change
    was declared and attributed), ``"deadline"`` (the assessment window
    elapsed with no declaration), or ``"gap"`` (load shedding punched a
    hole in the item's stream, so no sound verdict was possible).
    ``declaration_bin`` is the window-relative bin of the declaration —
    the same index the offline engine reports — or ``None``.
    ``emitted_at`` is the (virtual) time the verdict left the pipeline.
    """

    change_id: str
    entity_type: str
    entity: str
    metric: str
    verdict: str
    reason: str
    emitted_at: int
    declaration_bin: Optional[int] = None
    did_estimate: Optional[float] = None
    control: Optional[str] = None
    direction: int = 0
    notes: Tuple[str, ...] = ()

    @property
    def key(self) -> VerdictKey:
        return (self.change_id, self.entity_type, self.entity, self.metric)

    def parity_tuple(self) -> tuple:
        """The fields live and offline must agree on (see docs/live.md)."""
        return (self.change_id, self.entity_type, self.entity, self.metric,
                self.verdict, self.declaration_bin)

    def as_dict(self) -> dict:
        doc = asdict(self)
        doc["notes"] = list(self.notes)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "LiveVerdict":
        """Inverse of :meth:`as_dict` (checkpoints, shard verdict files)."""
        doc = dict(doc)
        doc["notes"] = tuple(doc.get("notes", ()))
        return cls(**doc)


def verdict_sort_key(verdict: LiveVerdict) -> tuple:
    """The deterministic global order the cluster fan-in re-establishes.

    Virtual emission time first, then the verdict key.  Keys are unique
    (the bus is at-most-once), so this is a total order: sorting any
    partition of the same verdict set yields the same sequence.
    """
    return (verdict.emitted_at, verdict.change_id, verdict.entity_type,
            verdict.entity, verdict.metric)


class VerdictBus:
    """Fan-out with at-most-once delivery per (change, entity, KPI).

    A key is marked seen *before* its verdict is delivered, so a failing
    subscriber can never cause a redelivery; a second publish for the
    same key is dropped and counted.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.verdicts: List[LiveVerdict] = []
        self.published_by_reason: Dict[str, int] = {}
        self._seen: Dict[VerdictKey, bool] = {}
        self._subscribers: List[Callable[[LiveVerdict], None]] = []

    def subscribe(self, subscriber: Callable[[LiveVerdict], None]) -> None:
        self._subscribers.append(subscriber)

    def publish(self, verdict: LiveVerdict) -> bool:
        """Deliver ``verdict`` unless its key was already published."""
        if verdict.key in self._seen:
            self.metrics.counter(
                DUPLICATES_METRIC,
                help="Verdicts dropped by at-most-once delivery.").inc()
            return False
        self._seen[verdict.key] = True
        self.verdicts.append(verdict)
        self.published_by_reason[verdict.reason] = \
            self.published_by_reason.get(verdict.reason, 0) + 1
        self.metrics.counter(
            VERDICTS_METRIC, help="Verdicts published on the bus."
        ).inc(verdict=verdict.verdict, reason=verdict.reason)
        for subscriber in tuple(self._subscribers):
            subscriber(verdict)
        return True

    def __len__(self) -> int:
        return len(self.verdicts)


class JsonlVerdictSink:
    """Bus subscriber writing one JSON object per verdict line.

    Opened line-buffered: every verdict reaches the OS as soon as its
    line is complete, so a crashed process leaves at most one torn
    final line behind.  :meth:`close` flushes and fsyncs (durability at
    shutdown) and is idempotent — ``__exit__`` after an explicit
    ``close()`` is a no-op, as is a write after close.
    """

    def __init__(self, path: str, fsync_on_close: bool = True) -> None:
        self.path = path
        self.fsync_on_close = fsync_on_close
        self.written = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8",
                                          buffering=1)

    def __call__(self, verdict: LiveVerdict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(verdict.as_dict(), sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.fsync_on_close:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlVerdictSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_verdicts(path: str,
                  tolerate_torn_tail: bool = True) -> List[LiveVerdict]:
    """Read a verdict JSONL file back into :class:`LiveVerdict` objects.

    A killed writer leaves at most one unterminated final line; with
    ``tolerate_torn_tail`` (the default) that tail is skipped rather
    than fatal.  A corrupt line anywhere *else* raises — that is real
    damage, not a crash artifact.
    """
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    verdicts: List[LiveVerdict] = []
    last = len(lines) - 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            if tolerate_torn_tail and index == last:
                break
            raise TelemetryError(
                "verdict file %s is corrupt at line %d" % (path, index + 1))
        verdicts.append(LiveVerdict.from_dict(doc))
    return verdicts
