"""Session checkpointing for the live pipeline: snapshot, kill, resume.

A checkpoint is a JSONL file — one typed record per line — capturing
everything the event-time pipeline holds between ticks: watcher
admissions, per-session ingest queues, incremental-detector state,
event-time watermarks (``expected_next`` / ``delivered_through``),
control buffers, parked attributions and the verdicts already published.

The format is chosen for **bit-identical resume**: every float crosses
JSON as ``repr`` of a finite double, which round-trips exactly, and the
:class:`~repro.live.detector.IncrementalDetector` serialises its full
streaming state (normalised prefix, score prefix, robust stats, scan
cursor).  A service restored with :func:`restore_service` therefore
continues producing the very verdict bytes an uninterrupted run would —
the property ``tests/live/test_checkpoint.py`` pins.

Checkpoints are written atomically (temp file + ``os.replace``), so a
crash mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import List, Optional

import numpy as np

from ..exceptions import CheckpointError
from ..telemetry.kpi import KpiKey
from ..telemetry.timeseries import TimeSeries
from ..topology.impact import identify_impact_set
from ..types import DetectedChange
from .assessor import ChangeSession, KpiTracker, _SeriesBuffer
from .bus import LiveVerdict
from .queues import IngestQueues

__all__ = ["CHECKPOINT_VERSION", "CHECKPOINTS_METRIC", "Checkpointer",
           "snapshot_service", "write_checkpoint", "load_checkpoint",
           "restore_service"]

CHECKPOINT_VERSION = 1
CHECKPOINTS_METRIC = "repro_live_checkpoints_total"


def _key3(key: KpiKey) -> List[str]:
    return [key.entity_type, key.entity, key.metric]


def _unkey3(doc: List[str]) -> KpiKey:
    return KpiKey(doc[0], doc[1], doc[2])


# -- snapshot -----------------------------------------------------------------

def _snapshot_session(session: ChangeSession) -> dict:
    # Every mapping is serialised in *insertion* order, not sorted:
    # close-time emission follows tracker insertion order, so restoring
    # a re-sorted dict would publish the same verdicts in a different
    # order and break bit-identical resume.  Insertion order is itself
    # deterministic (derived from the impact set), so the file is too.
    queues = session.queues
    fragments = []
    for key, queue in queues._queues.items():
        for fragment in queue:
            fragments.append([_key3(key), fragment.start,
                              fragment.values.tolist()])
    return {
        "record": "session",
        "change_id": session.change_id,
        "priority": session.priority,
        "deadline": session.deadline,
        "verdicts": session.verdicts,
        "queues": {
            "shed": queues.shed,
            "last_served": (None if queues._last_served is None
                            else _key3(queues._last_served)),
            "fragments": fragments,
        },
        "expected_next": [[_key3(k), v]
                          for k, v in session.expected_next.items()],
        "delivered_through": [[_key3(k), v]
                              for k, v in
                              session.delivered_through.items()],
        "control_groups": [[etype, metric, [_key3(k) for k in group]]
                           for (etype, metric), group
                           in session.control_groups.items()],
        "control_buffers": [{
            "key": _key3(key),
            "start": buffer.start,
            "degraded": buffer.degraded,
            "values": buffer.values[:buffer.length].tolist(),
        } for key, buffer in session.control_buffers.items()],
        "trackers": [{
            "key": _key3(key),
            "change_index": tracker.change_index,
            "start_time": tracker.start_time,
            "degraded": tracker.degraded,
            "done": tracker.done,
            "declaration": (None if tracker.declaration is None else {
                "index": tracker.declaration.index,
                "start_index": tracker.declaration.start_index,
                "score": tracker.declaration.score,
                "kind": tracker.declaration.kind,
                "direction": tracker.declaration.direction,
            }),
            "detector": tracker.detector.state_dict(),
        } for key, tracker in session.trackers.items()],
        "pending": [_key3(t.key) for t in session.pending],
    }


def snapshot_service(service, now: int, tick: int,
                     extra: Optional[dict] = None) -> List[dict]:
    """Every record of one checkpoint, meta line first."""
    records: List[dict] = [{
        "record": "meta",
        "version": CHECKPOINT_VERSION,
        "now": now,
        "tick": tick,
        "bin_seconds": service.store.bin_seconds,
        "extra": extra or {},
    }, {
        "record": "watcher",
        "seen": sorted(service.watcher._seen),
        "shed_change_ids": list(service.watcher.shed_change_ids),
    }, {
        "record": "scheduler",
        "peak_queue_depth": service.scheduler.peak_queue_depth,
        "closed_count": service.scheduler.closed_count,
        "tick_count": service.scheduler.tick_count,
    }, {
        "record": "service",
        "closed_changes": (len(service.closed)
                           + getattr(service, "restored_closed", 0)),
    }, {
        "record": "bus",
        "verdicts": [v.as_dict() for v in service.bus.verdicts],
    }]
    sessions = sorted(service.watcher.sessions.values(),
                      key=lambda s: (s.change.at_time, s.change_id))
    records.extend(_snapshot_session(session) for session in sessions)
    return records


def write_checkpoint(path: str, records: List[dict]) -> None:
    """Write the records as JSONL, atomically replacing ``path``."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    os.replace(tmp, path)


# -- load / restore -----------------------------------------------------------

def load_checkpoint(path: str) -> dict:
    """Parse a checkpoint file into ``{meta, watcher, ..., sessions}``."""
    if not os.path.exists(path):
        raise CheckpointError("checkpoint %s does not exist" % path)
    doc: dict = {"sessions": []}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise CheckpointError(
                    "checkpoint %s is corrupt: %s" % (path, exc))
            kind = record.get("record")
            if kind == "session":
                doc["sessions"].append(record)
            else:
                doc[kind] = record
    meta = doc.get("meta")
    if meta is None:
        raise CheckpointError("checkpoint %s has no meta record" % path)
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            "checkpoint %s has version %r, this build reads %d"
            % (path, meta.get("version"), CHECKPOINT_VERSION))
    return doc


def _restore_session(service, record: dict) -> ChangeSession:
    changes = {c.change_id: c for c in service.watcher.log}
    change = changes.get(record["change_id"])
    if change is None:
        raise CheckpointError(
            "checkpoint session %r is not in the change log"
            % record["change_id"])
    impact = identify_impact_set(service.watcher.fleet, change.service,
                                 change.hostnames)
    config = service.config
    queues = IngestQueues(config.queue_capacity, config.drop_policy,
                          service.metrics)
    qdoc = record["queues"]
    for key3, start, values in qdoc["fragments"]:
        key = _unkey3(key3)
        fragment = TimeSeries(start, service.store.bin_seconds,
                              np.asarray(values, dtype=np.float64))
        queue = queues._queues.setdefault(key, deque())
        queue.append(fragment)
        queues.depth += 1
    queues.shed = qdoc["shed"]
    queues._last_served = (None if qdoc["last_served"] is None
                           else _unkey3(qdoc["last_served"]))

    session = ChangeSession(change, impact, record["priority"],
                            record["deadline"], queues)
    session.verdicts = record["verdicts"]
    session.expected_next = {_unkey3(k): v
                             for k, v in record["expected_next"]}
    session.delivered_through = {_unkey3(k): v
                                 for k, v in record["delivered_through"]}
    for etype, metric, group in record["control_groups"]:
        session.control_groups[(etype, metric)] = [_unkey3(k)
                                                   for k in group]
    for doc in record["control_buffers"]:
        buffer = _SeriesBuffer(doc["start"])
        values = np.asarray(doc["values"], dtype=np.float64)
        if values.size:
            buffer.extend(values)
        buffer.degraded = doc["degraded"]
        session.control_buffers[_unkey3(doc["key"])] = buffer
    for doc in record["trackers"]:
        key = _unkey3(doc["key"])
        tracker = KpiTracker(key, doc["change_index"], doc["start_time"],
                             config, arena=service.assessor.arena)
        tracker.detector.load_state(doc["detector"])
        tracker.degraded = doc["degraded"]
        tracker.done = doc["done"]
        tracker.declaration = tracker.detector.declared
        if doc["declaration"] is not None and tracker.declaration is None:
            # Declared but not yet stored on the detector (defensive).
            tracker.declaration = DetectedChange(**doc["declaration"])
        session.trackers[key] = tracker
    session.pending = [session.trackers[_unkey3(k)]
                       for k in record["pending"]]

    session.subscription = service.store.subscribe(
        session.subscribed_keys(),
        lambda key, fragment, _q=session.queues: _q.offer(key, fragment),
        batch_callback=(
            (lambda items, _q=session.queues: _q.offer_batch(items))
            if config.fused_ingest else None))
    service.watcher.sessions[session.change_id] = session
    return session


def restore_service(service, checkpoint: dict) -> None:
    """Rebuild a freshly constructed service from a loaded checkpoint.

    The service must be empty (no ticks run): sessions are rebuilt from
    the change log and fleet, queues refilled, detectors restored
    bit-exactly, subscriptions re-registered on the (possibly
    fault-wrapped) store, and the bus re-seeded with the verdicts that
    already went out so at-most-once delivery still holds after resume.
    """
    if service.watcher.sessions or service.closed:
        raise CheckpointError("restore_service needs a fresh service")
    watcher_doc = checkpoint.get("watcher", {})
    service.watcher._seen = set(watcher_doc.get("seen", ()))
    service.watcher.shed_change_ids = list(
        watcher_doc.get("shed_change_ids", ()))
    scheduler_doc = checkpoint.get("scheduler", {})
    service.scheduler.peak_queue_depth = scheduler_doc.get(
        "peak_queue_depth", 0)
    service.scheduler.closed_count = scheduler_doc.get("closed_count", 0)
    service.scheduler.tick_count = scheduler_doc.get("tick_count", 0)
    service.restored_closed = checkpoint.get("service", {}).get(
        "closed_changes", 0)
    for doc in checkpoint.get("bus", {}).get("verdicts", ()):
        verdict = LiveVerdict.from_dict(doc)
        service.bus.verdicts.append(verdict)
        service.bus._seen[verdict.key] = True
    for record in checkpoint["sessions"]:
        _restore_session(service, record)


# -- the periodic writer -------------------------------------------------------

class Checkpointer:
    """Writes a checkpoint every ``every_ticks`` scheduler ticks.

    Attach to a service with :meth:`attach`; the scheduler then calls
    :meth:`on_tick` at the end of every tick.  :attr:`extra` is stamped
    into the meta record verbatim — the replay driver keeps the stream
    offset, scenario spec and fault-plan descriptor there so resume can
    validate compatibility and fast-forward the source.
    """

    def __init__(self, path: str, every_ticks: int = 25) -> None:
        if every_ticks < 1:
            raise CheckpointError("every_ticks must be >= 1")
        self.path = path
        self.every_ticks = every_ticks
        self.extra: dict = {}
        self.service = None
        self.written = 0

    def attach(self, service) -> None:
        self.service = service
        service.scheduler.checkpointer = self

    def on_tick(self, now: int, tick: int) -> bool:
        if self.service is None or tick % self.every_ticks:
            return False
        write_checkpoint(self.path, snapshot_service(
            self.service, now, tick, extra=self.extra))
        self.written += 1
        self.service.metrics.counter(
            CHECKPOINTS_METRIC, help="Checkpoints written."
        ).inc()
        return True
