"""Configuration of the live assessment service and its sharded runtime."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.funnel import FunnelConfig
from ..exceptions import ParameterError

__all__ = ["LiveConfig", "ClusterConfig", "DROP_OLDEST", "DROP_NEWEST"]

#: Load-shedding policies for a full per-KPI ingest queue.
DROP_OLDEST = "drop_oldest"
DROP_NEWEST = "drop_newest"


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of the live pipeline (watcher, queues, scheduler, assessor).

    Attributes:
        funnel: the detection/attribution parameters (paper defaults).
        assessment_window_seconds: how long a change stays open before
            the scheduler auto-closes it; every KPI without a declared
            change by then gets a ``no_change`` verdict.  The default is
            the paper's one-hour assessment horizon.  The replay driver
            overrides it to the scenario's window length so live and
            offline assess the same data.
        baseline_bins: pre-change bins backfilled from the store when a
            change is admitted — the robust-normalisation baseline.
        queue_capacity: bound on each per-KPI ingest queue, in
            fragments; an arriving fragment beyond it triggers
            ``drop_policy``.
        drop_policy: :data:`DROP_OLDEST` sheds the stalest queued
            fragment (keeps the stream fresh, creates a gap the tracker
            detects); :data:`DROP_NEWEST` sheds the arriving fragment.
        max_fragments_per_tick: the scheduler's drain budget per tick
            across all changes (0 = unlimited).  Setting it below the
            ingest rate is how overload is simulated/absorbed: queues
            fill, the policy sheds, memory stays bounded.
        max_active_changes: cap on concurrently assessed changes
            (0 = unlimited).  At capacity an arriving change is admitted
            only if its priority beats the lowest active one, which is
            then evicted; otherwise the new change is shed whole.
        max_control_units: cap on peer-control rows per DiD panel.
        history_days: days of historical control the store-backed
            provider fetches for full launches / service KPIs.
        score_chunk_bins: how many newly scoreable bins accumulate
            before one batched scoring call.  Larger chunks amortise the
            per-call cost (higher throughput) and delay *emission* by up
            to ``chunk - 1`` bins; declared indices and verdicts are
            unaffected, and any remainder is flushed at the deadline.
        fetch_retries: additional attempts after a failed (or timed-out)
            history-provider fetch before the assessor degrades the
            verdict instead of crashing.
        fetch_backoff_seconds: initial wall-clock backoff between fetch
            retries (doubled per attempt); 0 retries immediately, which
            is what the virtual-time replay wants.
        fetch_timeout_seconds: per-call wall-clock budget for one
            history fetch; a slower call counts as a failure and is
            retried.  0 disables the budget.
        close_grace_seconds: how long past its deadline a session stays
            open before the scheduler settles it.  With delayed-delivery
            faults injected, fragments for in-window bins can reach the
            store only after the deadline instant; a grace covering the
            worst injected delay lets them arrive and drain before the
            close.  Data beyond the deadline never reaches a detector —
            the assessor truncates every delivery at the session
            deadline — so a grace changes *when* verdicts emit, never
            what they say.
        pooled_scoring: defer per-fragment scoring and let the
            scheduler score every tracker's pending segment in stacked
            cross-detector batches once per tick (one
            :meth:`repro.core.ika.IkaSST.scores_batch` call per distinct
            segment length).  The batched call is bitwise the per-series
            one and the pool runs after the tick's drain — before any
            deadline close — so declared indices and verdicts are
            unchanged; only the amount of Python/LAPACK call overhead
            per tick is.
        fused_ingest: run the tick's ingest plane in fused batches on
            top of pooled scoring: the store fans a batched append out
            as one push per subscription, the queues hand the scheduler
            a materialised per-tick batch, and the shared
            :class:`~repro.live.arena.DetectorArena` scatter-writes and
            normalises every staged tracker in single vectorised
            passes.  No arithmetic is reordered — the same floats land
            in the same slots — so verdict JSONL is byte-identical to
            the unfused pooled path (CI pins it with ``cmp``).
            Requires ``pooled_scoring`` (fusing only buffers appends;
            something must score them in bulk).
        repair_from_store: when the push stream skips ahead of a
            session's expected next bin (a dropped or reordered push),
            read the missing range back from the durable metric store
            instead of degrading the tracker, and reconcile any
            undelivered tail at session close.  Off by default: under
            queue-shedding overload the gap *is* the load-shedding
            signal and repairing it would undo the shed work.  The
            chaos-replay harness turns it on.
    """

    funnel: FunnelConfig = field(default_factory=FunnelConfig)
    assessment_window_seconds: int = 3600
    baseline_bins: int = 80
    queue_capacity: int = 64
    drop_policy: str = DROP_OLDEST
    max_fragments_per_tick: int = 0
    max_active_changes: int = 0
    max_control_units: int = 8
    history_days: int = 2
    score_chunk_bins: int = 1
    fetch_retries: int = 2
    fetch_backoff_seconds: float = 0.0
    fetch_timeout_seconds: float = 0.0
    close_grace_seconds: int = 0
    pooled_scoring: bool = False
    fused_ingest: bool = False
    repair_from_store: bool = False

    def __post_init__(self) -> None:
        if self.assessment_window_seconds <= 0:
            raise ParameterError("assessment_window_seconds must be positive")
        if self.baseline_bins < 1:
            raise ParameterError("baseline_bins must be >= 1")
        if self.queue_capacity < 1:
            raise ParameterError("queue_capacity must be >= 1")
        if self.drop_policy not in (DROP_OLDEST, DROP_NEWEST):
            raise ParameterError(
                "drop_policy must be %r or %r, got %r"
                % (DROP_OLDEST, DROP_NEWEST, self.drop_policy))
        if self.max_fragments_per_tick < 0:
            raise ParameterError("max_fragments_per_tick must be >= 0")
        if self.max_active_changes < 0:
            raise ParameterError("max_active_changes must be >= 0")
        if self.max_control_units < 1:
            raise ParameterError("max_control_units must be >= 1")
        if self.history_days < 0:
            raise ParameterError("history_days must be >= 0")
        if self.score_chunk_bins < 1:
            raise ParameterError("score_chunk_bins must be >= 1")
        if self.fetch_retries < 0:
            raise ParameterError("fetch_retries must be >= 0")
        if self.fetch_backoff_seconds < 0:
            raise ParameterError("fetch_backoff_seconds must be >= 0")
        if self.fetch_timeout_seconds < 0:
            raise ParameterError("fetch_timeout_seconds must be >= 0")
        if self.close_grace_seconds < 0:
            raise ParameterError("close_grace_seconds must be >= 0")
        if self.fused_ingest and not self.pooled_scoring:
            raise ParameterError("fused_ingest requires pooled_scoring")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the sharded multi-process runtime (:mod:`repro.cluster`).

    Attributes:
        n_shards: worker processes the fleet is partitioned across.
        replicas: virtual nodes per shard on the consistent-hash ring;
            more replicas spread entities more evenly and shrink how
            much moves when a shard is added or removed.
        heartbeat_timeout_seconds: wall-clock silence after which a
            live worker counts as hung and is terminated + restarted.
        max_restarts: restarts allowed per shard (crash or hang) before
            the supervisor gives up with a ``ClusterError``.
        checkpoint_every_ticks: shard-local checkpoint cadence; a
            restarted shard resumes from its latest checkpoint and
            replays only its own backlog.
        start_method: ``"fork"``, ``"spawn"`` or ``"auto"`` (fork when
            the platform offers it — cheap on Linux — else spawn).
        poll_interval_seconds: supervisor heartbeat-queue poll period.
    """

    n_shards: int = 4
    replicas: int = 64
    heartbeat_timeout_seconds: float = 30.0
    max_restarts: int = 2
    checkpoint_every_ticks: int = 10
    start_method: str = "auto"
    poll_interval_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ParameterError("n_shards must be >= 1")
        if self.replicas < 1:
            raise ParameterError("replicas must be >= 1")
        if self.heartbeat_timeout_seconds <= 0:
            raise ParameterError("heartbeat_timeout_seconds must be positive")
        if self.max_restarts < 0:
            raise ParameterError("max_restarts must be >= 0")
        if self.checkpoint_every_ticks < 1:
            raise ParameterError("checkpoint_every_ticks must be >= 1")
        if self.start_method not in ("auto", "fork", "spawn"):
            raise ParameterError(
                "start_method must be 'auto', 'fork' or 'spawn', got %r"
                % (self.start_method,))
        if self.poll_interval_seconds <= 0:
            raise ParameterError("poll_interval_seconds must be positive")
