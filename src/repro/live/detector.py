"""Push-driven FUNNEL detection, bit-identical to the offline path.

:class:`IncrementalDetector` re-implements
:meth:`repro.core.funnel.Funnel.detect` as a streaming computation over
a growing prefix, exploiting two structural facts:

* the score at position ``t`` is a pure function of the normalised
  samples ``x[t - span : t + span]`` (``span = 2*omega - 1``), so each
  arriving bin makes exactly one more score computable and a batched
  call over the newly eligible range returns values **bitwise equal**
  to the offline full-array call;
* :func:`repro.core.scoring.declare_changes` is prefix-stable: scanning
  a prefix finds exactly the full-scan declarations visible in it, so
  applying :func:`repro.core.scoring.confirm_candidate` candidate by
  candidate as scores appear yields the same first reportable
  declaration (same ``index``, ``start_index`` and ``direction``) the
  offline engine attributes.

The declared change's ``score`` and ``kind`` fields are the exception:
offline computes them with samples *after* the declaration bin (the
zero-filled score tail and the classifier's forward context), which a
live detector by definition does not have yet.  Both are reported from
the data available at declaration time and are excluded from the
live-vs-offline parity contract (see ``docs/live.md``).

``score_chunk_bins`` batches scoring calls: with chunk ``c`` the
detector scores once every ``c`` bins, amortising the fixed per-call
cost.  Declarations are still found at the same indices — at most
``c - 1`` bins later in arrival time — and :meth:`flush` (called at the
change deadline) scores any remainder, so no declaration is ever lost
to chunking.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.funnel import FunnelConfig
from ..core.ika import IkaSST
from ..core.robust import MAD_TO_SIGMA, median_and_mad
from ..core.scoring import confirm_candidate
from ..types import DetectedChange

__all__ = ["IncrementalDetector"]

_MIN_CAPACITY = 128


class IncrementalDetector:
    """Streaming change detection for one KPI around one software change.

    Feed bins with :meth:`extend`; the first reportable declaration
    (``start_index >= change_index - 1``, mirroring the offline filter)
    is returned once and stored as :attr:`declared`.
    """

    def __init__(self, change_index: int,
                 config: Optional[FunnelConfig] = None,
                 score_chunk_bins: int = 1,
                 deferred_scoring: bool = False) -> None:
        self.config = config or FunnelConfig()
        self.scorer = IkaSST(self.config.sst)
        self.change_index = change_index
        self.score_chunk_bins = max(1, score_chunk_bins)
        #: When True, :meth:`extend` only buffers — a
        #: :class:`~repro.live.pool.DetectorPool` scores the pending
        #: segment in a stacked batch via :meth:`pending_segment` /
        #: :meth:`apply_scores` / :meth:`scan`.  :meth:`flush` bypasses
        #: the deferral, so a deadline close never loses a declaration.
        self.deferred = bool(deferred_scoring)
        #: Samples each score consumes on either side of its position.
        self.span = self.config.sst.lead
        #: The wall-clock lag declare_changes charges the score with.
        self.lookahead = self.config.sst.lookahead - 1
        self._values = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._norm = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._scores = np.zeros(_MIN_CAPACITY, dtype=np.float64)
        self._n = 0
        self._stats: Optional[tuple] = None
        self._denominator = 0.0
        self._next_score_t = self.span
        self._scan_t = 0
        self.declared: Optional[DetectedChange] = None

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def series(self) -> np.ndarray:
        """The raw samples received so far (view; do not mutate)."""
        return self._values[:self._n]

    @property
    def scores(self) -> np.ndarray:
        """Scores computed so far (zeros where not yet computable)."""
        return self._scores[:self._n]

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the full streaming state.

        Every float survives the JSON round-trip exactly (``repr`` of a
        finite double is lossless), so a detector restored from this
        snapshot continues **bit-identically** to one that never
        stopped — the property the kill-and-resume test pins.
        """
        n = self._n
        return {
            "n": n,
            "values": self._values[:n].tolist(),
            "norm": self._norm[:n].tolist(),
            "scores": self._scores[:n].tolist(),
            "stats": (list(self._stats) if self._stats is not None
                      else None),
            "denominator": self._denominator,
            "next_score_t": self._next_score_t,
            "scan_t": self._scan_t,
            "deferred": self.deferred,
            "declared": (None if self.declared is None else {
                "index": self.declared.index,
                "start_index": self.declared.start_index,
                "score": self.declared.score,
                "kind": self.declared.kind,
                "direction": self.declared.direction,
            }),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse operation)."""
        n = int(state["n"])
        self._grow(max(n, 1))
        self._n = n
        self._values[:n] = state["values"]
        self._norm[:n] = state["norm"]
        self._scores[:n] = state["scores"]
        stats = state["stats"]
        self._stats = None if stats is None else tuple(stats)
        self._denominator = float(state["denominator"])
        self._next_score_t = int(state["next_score_t"])
        self._scan_t = int(state["scan_t"])
        # Absent in pre-pool checkpoints: keep the constructor's choice.
        self.deferred = bool(state.get("deferred", self.deferred))
        declared = state["declared"]
        self.declared = (None if declared is None
                         else DetectedChange(**declared))

    # -- ingest ---------------------------------------------------------------

    def _grow(self, needed: int) -> None:
        if needed <= self._values.size:
            return
        capacity = max(2 * self._values.size, needed)
        for name in ("_values", "_norm", "_scores"):
            old = getattr(self, name)
            grown = (np.zeros if name == "_scores" else np.empty)(
                capacity, dtype=np.float64)
            grown[:self._n] = old[:self._n]
            setattr(self, name, grown)

    def extend(self, values: np.ndarray,
               flush: bool = False) -> Optional[DetectedChange]:
        """Append bins; returns the declaration the moment it fires."""
        values = np.asarray(values, dtype=np.float64).ravel()
        old_n = self._n
        self._grow(old_n + values.size)
        self._values[old_n:old_n + values.size] = values
        self._n = old_n + values.size

        baseline = max(self.change_index, 1)
        if self._stats is None and self._n >= baseline:
            med, scale = median_and_mad(self._values[:baseline])
            self._stats = (med, scale)
            # Same expression as robust_normalise, so the normalised
            # prefix is bitwise identical to the offline transform.
            self._denominator = MAD_TO_SIGMA * scale + 1e-9
            self._norm[:self._n] = (
                self._values[:self._n] - med) / self._denominator
        elif self._stats is not None:
            med = self._stats[0]
            self._norm[old_n:self._n] = (
                self._values[old_n:self._n] - med) / self._denominator

        if self._stats is None:
            return None
        if self.deferred and not flush:
            return None
        self._score(flush=flush)
        return self._scan()

    def flush(self) -> Optional[DetectedChange]:
        """Score and scan everything computable (deadline close)."""
        if self._stats is None or self.declared is not None:
            return None
        self._score(flush=True)
        return self._scan()

    # -- scoring --------------------------------------------------------------

    def _score(self, flush: bool) -> None:
        t_hi = self._n - self.span
        t_lo = self._next_score_t
        if t_hi < t_lo:
            return
        if not flush and t_hi - t_lo + 1 < self.score_chunk_bins:
            return
        segment = self._norm[t_lo - self.span:t_hi + self.span]
        segment_scores = self.scorer.scores(segment)
        self._scores[t_lo:t_hi + 1] = \
            segment_scores[self.span:self.span + (t_hi - t_lo + 1)]
        self._next_score_t = t_hi + 1

    # -- pooled scoring --------------------------------------------------------

    def _pending_bounds(self) -> Optional[tuple]:
        """The ``(t_lo, t_hi)`` score range a pooled pass would fill.

        Exactly the gating of ``_score(flush=False)`` — same chunk
        threshold — so a pooled detector scores the same ranges on the
        same ticks a per-detector one would, just in a shared batch.
        """
        if self._stats is None or self.declared is not None:
            return None
        t_hi = self._n - self.span
        t_lo = self._next_score_t
        if t_hi < t_lo or t_hi - t_lo + 1 < self.score_chunk_bins:
            return None
        return t_lo, t_hi

    def pending_segment(self) -> Optional[np.ndarray]:
        """The normalised slice a pooled scoring pass must consume.

        ``None`` when nothing is scoreable yet (or the detector already
        declared).  The segment is the same ``_norm[t_lo-span:t_hi+span]``
        view ``_score`` would hand to the scorer.
        """
        bounds = self._pending_bounds()
        if bounds is None:
            return None
        t_lo, t_hi = bounds
        return self._norm[t_lo - self.span:t_hi + self.span]

    def apply_scores(self, segment_scores: np.ndarray) -> None:
        """Write back one pooled scoring pass over :meth:`pending_segment`.

        Identical write-back to ``_score``; a no-op if nothing was
        pending (the pool never calls it that way).
        """
        bounds = self._pending_bounds()
        if bounds is None:
            return
        t_lo, t_hi = bounds
        self._scores[t_lo:t_hi + 1] = \
            segment_scores[self.span:self.span + (t_hi - t_lo + 1)]
        self._next_score_t = t_hi + 1

    def scan(self) -> Optional[DetectedChange]:
        """Run the declaration scan after a pooled write-back."""
        return self._scan()

    # -- declaration scan ------------------------------------------------------

    def _scan(self) -> Optional[DetectedChange]:
        if self.declared is not None:
            return None
        policy = self.config.policy
        n = self._n
        # A candidate is only *attemptable* once its score exists and
        # its persistence window plus declaration index fit the prefix.
        limit = min(self._next_score_t, n - self.span + 1)
        if limit <= self._scan_t:
            return None
        armed = np.flatnonzero(
            self._scores[self._scan_t:limit] > policy.score_threshold)
        for candidate in (armed + self._scan_t):
            candidate = int(candidate)
            if candidate < self._scan_t:
                continue  # skipped by an earlier confirmed window
            horizon = candidate + max(
                policy.persistence,
                max(policy.persistence - 1, self.lookahead) + 1)
            if horizon > n:
                # Not decidable yet — retry from here on the next push.
                self._scan_t = candidate
                return None
            declared = confirm_candidate(
                self._norm[:n], self._scores[:n], candidate, policy,
                lookahead=self.lookahead)
            if declared is None:
                self._scan_t = candidate + 1
                continue
            self._scan_t = declared.index + 1
            if declared.start_index >= self.change_index - 1:
                self.declared = declared
                return declared
        return None
