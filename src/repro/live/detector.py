"""Push-driven FUNNEL detection, bit-identical to the offline path.

:class:`IncrementalDetector` re-implements
:meth:`repro.core.funnel.Funnel.detect` as a streaming computation over
a growing prefix, exploiting two structural facts:

* the score at position ``t`` is a pure function of the normalised
  samples ``x[t - span : t + span]`` (``span = 2*omega - 1``), so each
  arriving bin makes exactly one more score computable and a batched
  call over the newly eligible range returns values **bitwise equal**
  to the offline full-array call;
* :func:`repro.core.scoring.declare_changes` is prefix-stable: scanning
  a prefix finds exactly the full-scan declarations visible in it, so
  applying :func:`repro.core.scoring.confirm_candidate` candidate by
  candidate as scores appear yields the same first reportable
  declaration (same ``index``, ``start_index`` and ``direction``) the
  offline engine attributes.

The declared change's ``score`` and ``kind`` fields are the exception:
offline computes them with samples *after* the declaration bin (the
zero-filled score tail and the classifier's forward context), which a
live detector by definition does not have yet.  Both are reported from
the data available at declaration time and are excluded from the
live-vs-offline parity contract (see ``docs/live.md``).

``score_chunk_bins`` batches scoring calls: with chunk ``c`` the
detector scores once every ``c`` bins, amortising the fixed per-call
cost.  Declarations are still found at the same indices — at most
``c - 1`` bins later in arrival time — and :meth:`flush` (called at the
change deadline) scores any remainder, so no declaration is ever lost
to chunking.

Storage lives in a :class:`~repro.live.arena.DetectorArena`: the
detector owns one *row* of the arena's shared ``values``/``norm``/
``scores`` blocks instead of three private arrays.  A detector built
without an explicit arena gets a private single-row one, so nothing
changes for standalone use; the live assessor hands every tracker the
same shared arena so one tick can scatter-write and normalise the
whole fleet in single vectorised passes (see
:meth:`~repro.live.arena.DetectorArena.extend_batch`).  The wire format
of :meth:`state_dict` is unchanged — checkpoints written by the
pre-arena detector restore into an arena-backed one and vice versa.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.funnel import FunnelConfig
from ..core.ika import IkaSST
from ..core.robust import MAD_TO_SIGMA, median_and_mad
from ..core.scoring import (_gating_table, classify_change,
                            confirm_candidate, estimate_change_start)
from ..types import DetectedChange
from .arena import DetectorArena

__all__ = ["IncrementalDetector"]


class IncrementalDetector:
    """Streaming change detection for one KPI around one software change.

    Feed bins with :meth:`extend`; the first reportable declaration
    (``start_index >= change_index - 1``, mirroring the offline filter)
    is returned once and stored as :attr:`declared`.
    """

    def __init__(self, change_index: int,
                 config: Optional[FunnelConfig] = None,
                 score_chunk_bins: int = 1,
                 deferred_scoring: bool = False,
                 arena: Optional[DetectorArena] = None) -> None:
        self.config = config or FunnelConfig()
        self.scorer = IkaSST(self.config.sst)
        self.change_index = change_index
        self.score_chunk_bins = max(1, score_chunk_bins)
        #: When True, :meth:`extend` only buffers — a
        #: :class:`~repro.live.pool.DetectorPool` scores the pending
        #: segment in a stacked batch via :meth:`pending_segment` /
        #: :meth:`apply_scores` / :meth:`scan`.  :meth:`flush` bypasses
        #: the deferral, so a deadline close never loses a declaration.
        self.deferred = bool(deferred_scoring)
        #: Samples each score consumes on either side of its position.
        self.span = self.config.sst.lead
        #: The wall-clock lag declare_changes charges the score with.
        self.lookahead = self.config.sst.lookahead - 1
        self._shared = arena is not None
        self.arena = arena if arena is not None else DetectorArena()
        self._row = self.arena.acquire()
        self._n = 0
        self._stats: Optional[tuple] = None
        self._denominator = 0.0
        self._next_score_t = self.span
        self._scan_t = 0
        self.declared: Optional[DetectedChange] = None

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    # The storage attributes are row views into the arena, re-fetched on
    # each access so they survive arena reallocation on growth.  All
    # arithmetic below runs on the same floats it did when these were
    # private arrays — only the backing memory moved.

    @property
    def _values(self) -> np.ndarray:
        return self.arena.values[self._row]

    @property
    def _norm(self) -> np.ndarray:
        return self.arena.norm[self._row]

    @property
    def _scores(self) -> np.ndarray:
        return self.arena.scores[self._row]

    @property
    def series(self) -> np.ndarray:
        """The raw samples received so far (view; do not mutate)."""
        return self._values[:self._n]

    @property
    def scores(self) -> np.ndarray:
        """Scores computed so far (zeros where not yet computable)."""
        return self._scores[:self._n]

    def detach(self) -> None:
        """Move this detector's row out of a shared arena.

        Copies the live prefix into a private single-row arena and
        releases the shared row for reuse.  Called when a session
        closes, so the detector's ``series``/``scores`` stay readable
        after the arena recycles the row for a new tracker.  A no-op
        for detectors that already own a private arena.
        """
        if not self._shared:
            return
        shared, row, n = self.arena, self._row, self._n
        private = DetectorArena(capacity=max(n, 1))
        private_row = private.acquire()
        private.values[private_row, :n] = shared.values[row, :n]
        private.norm[private_row, :n] = shared.norm[row, :n]
        private.scores[private_row, :n] = shared.scores[row, :n]
        self.arena = private
        self._row = private_row
        self._shared = False
        shared.release(row)

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the full streaming state.

        Every float survives the JSON round-trip exactly (``repr`` of a
        finite double is lossless), so a detector restored from this
        snapshot continues **bit-identically** to one that never
        stopped — the property the kill-and-resume test pins.  The
        format carries no arena geometry: a snapshot written by a
        private-array detector restores into an arena-backed one and
        vice versa.
        """
        n = self._n
        return {
            "n": n,
            "values": self._values[:n].tolist(),
            "norm": self._norm[:n].tolist(),
            "scores": self._scores[:n].tolist(),
            "stats": (list(self._stats) if self._stats is not None
                      else None),
            "denominator": self._denominator,
            "next_score_t": self._next_score_t,
            "scan_t": self._scan_t,
            "deferred": self.deferred,
            "declared": (None if self.declared is None else {
                "index": self.declared.index,
                "start_index": self.declared.start_index,
                "score": self.declared.score,
                "kind": self.declared.kind,
                "direction": self.declared.direction,
            }),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse operation)."""
        n = int(state["n"])
        self.arena.ensure_capacity(max(n, 1))
        self._n = n
        self._values[:n] = state["values"]
        self._norm[:n] = state["norm"]
        self._scores[:n] = state["scores"]
        stats = state["stats"]
        self._stats = None if stats is None else tuple(stats)
        self._denominator = float(state["denominator"])
        self._next_score_t = int(state["next_score_t"])
        self._scan_t = int(state["scan_t"])
        # Absent in pre-pool checkpoints: keep the constructor's choice.
        self.deferred = bool(state.get("deferred", self.deferred))
        declared = state["declared"]
        self.declared = (None if declared is None
                         else DetectedChange(**declared))

    # -- ingest ---------------------------------------------------------------

    def extend(self, values: np.ndarray,
               flush: bool = False) -> Optional[DetectedChange]:
        """Append bins; returns the declaration the moment it fires."""
        values = np.asarray(values, dtype=np.float64).ravel()
        old_n = self._n
        self.arena.ensure_capacity(old_n + values.size)
        self._values[old_n:old_n + values.size] = values
        self._n = old_n + values.size

        baseline = max(self.change_index, 1)
        if self._stats is None and self._n >= baseline:
            med, scale = median_and_mad(self._values[:baseline])
            self._stats = (med, scale)
            # Same expression as robust_normalise, so the normalised
            # prefix is bitwise identical to the offline transform.
            self._denominator = MAD_TO_SIGMA * scale + 1e-9
            self._norm[:self._n] = (
                self._values[:self._n] - med) / self._denominator
        elif self._stats is not None:
            med = self._stats[0]
            self._norm[old_n:self._n] = (
                self._values[old_n:self._n] - med) / self._denominator

        if self._stats is None:
            return None
        if self.deferred and not flush:
            return None
        self._score(flush=flush)
        return self._scan()

    def flush(self) -> Optional[DetectedChange]:
        """Score and scan everything computable (deadline close)."""
        if self._stats is None or self.declared is not None:
            return None
        self._score(flush=True)
        return self._scan()

    # -- scoring --------------------------------------------------------------

    def _score(self, flush: bool) -> None:
        t_hi = self._n - self.span
        t_lo = self._next_score_t
        if t_hi < t_lo:
            return
        if not flush and t_hi - t_lo + 1 < self.score_chunk_bins:
            return
        segment = self._norm[t_lo - self.span:t_hi + self.span]
        segment_scores = self.scorer.scores(segment)
        self._scores[t_lo:t_hi + 1] = \
            segment_scores[self.span:self.span + (t_hi - t_lo + 1)]
        self._next_score_t = t_hi + 1

    # -- pooled scoring --------------------------------------------------------

    def pending_bounds(self) -> Optional[tuple]:
        """The ``(t_lo, t_hi)`` score range a pooled pass would fill.

        Exactly the gating of ``_score(flush=False)`` — same chunk
        threshold — so a pooled detector scores the same ranges on the
        same ticks a per-detector one would, just in a shared batch.
        The pool turns these bounds into arena row slices directly,
        skipping the per-detector segment copy.
        """
        if self._stats is None or self.declared is not None:
            return None
        t_hi = self._n - self.span
        t_lo = self._next_score_t
        if t_hi < t_lo or t_hi - t_lo + 1 < self.score_chunk_bins:
            return None
        return t_lo, t_hi

    def pending_segment(self) -> Optional[np.ndarray]:
        """The normalised slice a pooled scoring pass must consume.

        ``None`` when nothing is scoreable yet (or the detector already
        declared).  The segment is the same ``_norm[t_lo-span:t_hi+span]``
        view ``_score`` would hand to the scorer.
        """
        bounds = self.pending_bounds()
        if bounds is None:
            return None
        t_lo, t_hi = bounds
        return self._norm[t_lo - self.span:t_hi + self.span]

    def apply_scores(self, segment_scores: np.ndarray) -> None:
        """Write back one pooled scoring pass over :meth:`pending_segment`.

        Identical write-back to ``_score``; a no-op if nothing was
        pending (the pool never calls it that way).
        """
        bounds = self.pending_bounds()
        if bounds is None:
            return
        t_lo, t_hi = bounds
        self._scores[t_lo:t_hi + 1] = \
            segment_scores[self.span:self.span + (t_hi - t_lo + 1)]
        self._next_score_t = t_hi + 1

    def scan(self) -> Optional[DetectedChange]:
        """Run the declaration scan after a pooled write-back."""
        return self._scan()

    # -- declaration scan ------------------------------------------------------

    def _scan(self) -> Optional[DetectedChange]:
        if self.declared is not None:
            return None
        policy = self.config.policy
        n = self._n
        # A candidate is only *attemptable* once its score exists and
        # its persistence window plus declaration index fit the prefix.
        limit = min(self._next_score_t, n - self.span + 1)
        if limit <= self._scan_t:
            return None
        s = self._scores[:n]
        armed = np.flatnonzero(
            s[self._scan_t:limit] > policy.score_threshold)
        if armed.size == 0:
            return None
        armed += self._scan_t
        x = self._norm[:n]
        # ``confirm_candidate`` early-returns unless the persistence
        # window ends (candidate + persistence <= n) and the declaration
        # index fits (candidate + max(persistence-1, lookahead) < n).
        # Both are monotone in the candidate, so the decidable candidates
        # are a prefix of ``armed`` — and for those the whole baseline /
        # window statistics table can be computed in one vectorised pass,
        # bitwise equal to the per-candidate medians (the ``_gating_table``
        # contract, pinned in tests/core/test_scoring.py).
        pad = max(policy.persistence,
                  max(policy.persistence - 1, self.lookahead) + 1)
        n_decidable = int(np.searchsorted(armed, n - pad, side="right"))
        table = None
        if n_decidable and np.isfinite(x).all():
            meds, scales, window_meds = _gating_table(
                x, armed[:n_decidable], policy)
            bands = policy.deviation_sigmas * (MAD_TO_SIGMA * scales + 1e-9)
            table = (meds, bands, window_meds)
        for j, candidate in enumerate(armed):
            candidate = int(candidate)
            if candidate < self._scan_t:
                continue  # skipped by an earlier confirmed window
            if j >= n_decidable:
                # Not decidable yet — retry from here on the next push.
                self._scan_t = candidate
                return None
            if table is None:
                # Non-finite samples: the NaN-padding trick inside the
                # gating table needs finite data, so run the reference
                # per-candidate rule (NaN statistics never confirm).
                declared = confirm_candidate(
                    x, s, candidate, policy, lookahead=self.lookahead)
            else:
                deviation = table[2][j] - table[0][j]
                if abs(deviation) <= table[1][j]:
                    declared = None
                else:
                    detected_at = candidate + max(policy.persistence - 1,
                                                  self.lookahead)
                    start = estimate_change_start(
                        x, min(candidate + policy.persistence - 1,
                               detected_at),
                        baseline=candidate,
                        threshold_sigmas=policy.deviation_sigmas)
                    declared = DetectedChange(
                        index=detected_at,
                        start_index=start,
                        score=float(s[candidate:detected_at + 1].max()),
                        kind=classify_change(x, start, detected_at),
                        direction=1 if deviation > 0 else -1)
            if declared is None:
                self._scan_t = candidate + 1
                continue
            self._scan_t = declared.index + 1
            if declared.start_index >= self.change_index - 1:
                self.declared = declared
                return declared
        return None
