"""Cross-detector pooled scoring for the live service loop.

Per-fragment scoring pays the full fixed cost of one
:meth:`repro.core.ika.IkaSST.scores` call — Hankel views, einsum
dispatch, a LAPACK ``eigh`` — per tracker per tick.  At fleet scale a
tick advances hundreds of trackers by the same bin, so those calls are
the same computation repeated with different data.  The
:class:`DetectorPool` exploits that: it collects every
:class:`~repro.live.detector.IncrementalDetector` with a pending score
segment, groups the segments by length (trackers admitted at the same
tick stay in lock-step, so typically one group dominates), stacks each
group into a ``(n_detectors, segment)`` matrix and scores it with a
single :meth:`~repro.core.ika.IkaSST.scores_batch` call.

Parity: ``scores_batch`` is bitwise the per-series scorer (pinned in
``tests/core/test_ika_batch.py``), each detector's write-back and scan
are the very code the per-detector path runs, and the scheduler invokes
the pool after the tick's drain and before any deadline close — so a
pooled replay publishes the same verdict set as a per-detector one, and
both match the offline engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..types import DetectedChange
from .detector import IncrementalDetector

__all__ = ["DetectorPool", "POOLED_BATCHES_METRIC", "POOLED_SERIES_METRIC"]

POOLED_BATCHES_METRIC = "repro_live_pooled_batches_total"
POOLED_SERIES_METRIC = "repro_live_pooled_series_total"


class DetectorPool:
    """Scores many incremental detectors' pending segments per call."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.batches = 0
        self.series = 0

    def score_pending(
        self, detectors: Sequence[IncrementalDetector],
    ) -> List[Tuple[int, DetectedChange]]:
        """One stacked scoring pass over every pending segment.

        Returns ``(index, declaration)`` pairs — indices into
        ``detectors`` — for every detector whose freshly scored range
        produced a declaration, in input order within each length group.
        """
        pending: List[Tuple[int, int, int]] = []
        for index, detector in enumerate(detectors):
            bounds = detector.pending_bounds()
            if bounds is not None:
                pending.append((index, bounds[0], bounds[1]))
        if not pending:
            return []
        groups: dict = {}
        for index, t_lo, t_hi in pending:
            # Stackable = same scorer parameters AND same segment width;
            # a service normally has one config, so one bucket per width.
            detector = detectors[index]
            key = (detector.config.sst, t_hi - t_lo + 2 * detector.span)
            groups.setdefault(key, []).append((index, t_lo, t_hi))
        declared: List[Tuple[int, DetectedChange]] = []
        for members in groups.values():
            stack = self._stack(detectors, members)
            scorer = detectors[members[0][0]].scorer
            rows = scorer.scores_batch(
                stack, lengths=[stack.shape[1]] * len(members))
            self.batches += 1
            self.series += len(members)
            self.metrics.counter(
                POOLED_BATCHES_METRIC,
                help="Stacked scoring calls issued by the pool.").inc()
            self.metrics.counter(
                POOLED_SERIES_METRIC,
                help="Detector segments scored through the pool.",
            ).inc(len(members))
            for (index, _t_lo, _t_hi), row in zip(members, rows):
                detector = detectors[index]
                detector.apply_scores(row)
                declaration = detector.scan()
                if declaration is not None:
                    declared.append((index, declaration))
        return declared

    @staticmethod
    def _stack(detectors: Sequence[IncrementalDetector],
               members: List[Tuple[int, int, int]]) -> np.ndarray:
        """Materialise one group's ``(n, segment)`` score input.

        Trackers admitted at the same tick share an arena and advance in
        lock-step, so the common case is every member wanting the same
        ``[lo:hi]`` column range of the same arena: one row-gather copies
        the whole stack without a per-detector Python loop.  Mixed
        groups (private arenas, staggered admission) fall back to the
        original per-segment stack — the floats are identical either
        way, the arena path just copies them once.
        """
        first = detectors[members[0][0]]
        arena, span = first.arena, first.span
        lo = members[0][1] - span
        hi = members[0][2] + span
        if all(d.arena is arena and t_lo - d.span == lo
               and t_hi + d.span == hi
               for i, t_lo, t_hi in members
               for d in (detectors[i],)):
            return arena.gather_norm(
                [detectors[i]._row for i, _, _ in members], lo, hi)
        return np.ascontiguousarray(np.stack(
            [detectors[i]._norm[t_lo - detectors[i].span:
                                t_hi + detectors[i].span]
             for i, t_lo, t_hi in members]))
