"""Bounded per-KPI ingest queues with explicit load shedding.

The metric store pushes fragments synchronously; the live service never
processes them inline.  Each admitted change owns one
:class:`IngestQueues` holding a bounded deque per subscribed KPI: the
subscription callback *offers* fragments here and the event-time
scheduler *drains* them under its per-tick budget.  When a queue is
full the configured policy sheds a fragment — stale first by default —
and a counter records every shed, so overload degrades the answers
(gaps, late emissions) instead of growing memory without bound.

Draining is round-robin over the sorted key order.  The sort (and the
string projection the rotation cursor bisects) is cached and only
recomputed when the key set changes — at fleet scale the same few
hundred keys are drained every tick, and re-sorting plus re-stringifying
them each drain was a measurable slice of the tick.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..telemetry.kpi import KpiKey
from ..telemetry.timeseries import TimeSeries
from .config import DROP_NEWEST, DROP_OLDEST

__all__ = ["IngestQueues"]

FRAGMENTS_METRIC = "repro_live_fragments_total"
SHED_FRAGMENTS_METRIC = "repro_live_shed_fragments_total"


class IngestQueues:
    """Bounded fragment queues for one change's subscribed KPIs."""

    def __init__(self, capacity: int, policy: str = DROP_OLDEST,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.capacity = capacity
        self.policy = policy
        self.metrics = metrics or MetricsRegistry()
        self._queues: Dict[KpiKey, Deque[TimeSeries]] = {}
        #: The key the previous drain served last.  Fairness rotation
        #: resumes *after* this key; remembering the key (not its index)
        #: keeps the rotation correct when the key set changes between
        #: drains, which would silently re-aim a stored index.
        self._last_served: Optional[KpiKey] = None
        #: Cached ``(sorted keys, their str projections)``; rebuilt when
        #: the key count changes (keys are only ever added one at a time
        #: or cleared wholesale, so a size check detects every change).
        self._sorted_keys: List[KpiKey] = []
        self._sorted_strs: List[str] = []
        self.depth = 0
        self.peak_depth = 0
        self.shed = 0

    # -- producer side --------------------------------------------------------

    def offer(self, key: KpiKey, fragment: TimeSeries) -> bool:
        """Enqueue ``fragment``; returns False when it was shed.

        A full queue sheds according to the policy: ``drop_oldest``
        evicts the stalest queued fragment to make room (the arriving
        fragment is kept — freshness wins, at the cost of a gap the
        tracker will notice); ``drop_newest`` sheds the arrival.
        """
        self.metrics.counter(
            FRAGMENTS_METRIC, help="Fragments offered to ingest queues."
        ).inc()
        return self._offer(key, fragment)

    def offer_batch(self, items: List[Tuple[KpiKey, TimeSeries]]) -> int:
        """Enqueue one push batch; returns how many were accepted.

        One counter bump for the whole batch, one ``_offer`` per item —
        the fused ingest plane's producer side (semantically a loop of
        :meth:`offer`).
        """
        if items:
            self.metrics.counter(
                FRAGMENTS_METRIC, help="Fragments offered to ingest queues."
            ).inc(len(items))
        return sum(1 for key, fragment in items
                   if self._offer(key, fragment))

    def _offer(self, key: KpiKey, fragment: TimeSeries) -> bool:
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        if len(queue) >= self.capacity:
            if self.policy == DROP_NEWEST:
                self._count_shed(self.policy)
                return False
            queue.popleft()
            self.depth -= 1
            self._count_shed(self.policy)
        queue.append(fragment)
        self.depth += 1
        if self.depth > self.peak_depth:
            self.peak_depth = self.depth
        return True

    def _count_shed(self, policy: str, n: int = 1) -> None:
        self.shed += n
        self.metrics.counter(
            SHED_FRAGMENTS_METRIC,
            help="Fragments shed by queue bounds or change close.",
        ).inc(n, policy=policy)

    # -- consumer side --------------------------------------------------------

    def _rotation(self) -> List[KpiKey]:
        """The sorted key order, rotated to resume after the last-served
        key (bisect also lands correctly when that key has since
        disappeared or new keys shifted the order)."""
        if len(self._sorted_keys) != len(self._queues):
            self._sorted_keys = sorted(self._queues, key=str)
            self._sorted_strs = [str(k) for k in self._sorted_keys]
        keys = self._sorted_keys
        if not keys:
            return keys
        start = 0
        if self._last_served is not None:
            start = bisect_right(self._sorted_strs,
                                 str(self._last_served)) % len(keys)
        return keys[start:] + keys[:start]

    def drain(self, budget: int = 0
              ) -> Iterator[Tuple[KpiKey, TimeSeries]]:
        """Pop fragments round-robin across keys, oldest first.

        Yields at most ``budget`` fragments (0 = everything queued when
        the drain started).  Round-robin keeps one noisy KPI from
        starving the rest under a tight budget, and successive budgeted
        drains resume after the last key served — without that rotation
        a budget below the key count would starve the tail of the sorted
        key order forever.  Order is deterministic for a given history.
        """
        remaining = budget if budget > 0 else self.depth
        order = self._rotation()
        if not order:
            return
        while remaining > 0 and self.depth > 0:
            progressed = False
            for key in order:
                queue = self._queues.get(key)
                if not queue:
                    continue
                self._last_served = key
                yield key, queue.popleft()
                self.depth -= 1
                progressed = True
                remaining -= 1
                if remaining <= 0:
                    break
            if not progressed:
                break

    def drain_batch(self, budget: int = 0
                    ) -> List[Tuple[KpiKey, TimeSeries]]:
        """:meth:`drain` materialised — same fragments, same order.

        The fused ingest path wants the whole tick's batch at once (to
        heal, stage and scatter it in bulk) rather than a generator it
        would immediately exhaust; the rotation cursor advances exactly
        as the generator's would.
        """
        return list(self.drain(budget=budget))

    def discard(self) -> int:
        """Drop everything still queued (change close); returns count."""
        dropped = self.depth
        if dropped:
            self._count_shed("close", dropped)
        self._queues.clear()
        self.depth = 0
        return dropped
