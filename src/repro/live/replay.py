"""Replay a synthetic fleet scenario through the live pipeline.

The replay driver is the zero-to-aha proof of the live subsystem: it
takes the same :class:`~repro.engine.fleet.FleetScenarioSpec` the
offline ``repro assess-fleet`` command assesses, streams every fleet
KPI into a :class:`~repro.telemetry.store.MetricStore` bin by bin in
accelerated virtual time (:class:`~repro.simulation.clock`), drives the
:class:`~repro.live.service.LiveAssessmentService` one tick per flush,
and — optionally — runs the offline engine on the identical scenario to
verify the **parity contract**: live and offline must produce identical
``(change, entity_type, entity, metric, verdict, declaration_bin)``
sets.

Two knobs make parity hold by construction and are therefore set here,
not in :class:`~repro.live.config.LiveConfig` defaults:

* ``assessment_window_seconds`` becomes the scenario's post-change
  window length, so the live deadline closes exactly where the offline
  window ends;
* the history provider is the *source's* clean historical rows — the
  store's own recent past contains the impacts earlier replayed changes
  injected, which the offline engine never sees.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..changes.log import ChangeLog
from ..engine.engine import AssessmentEngine
from ..engine.fleet import FleetScenarioSpec, SyntheticFleetSource
from ..engine.planner import ENTITY_METRICS
from ..exceptions import CheckpointError
from ..faults import FaultPlan, FaultyHistoryProvider, FaultyMetricStore
from ..obs.context import ObsContext
from ..simulation.clock import SimulationClock
from ..telemetry.kpi import KpiKey
from ..telemetry.store import MetricStore
from ..telemetry.timeseries import MINUTE, TimeSeries
from .bus import LiveVerdict
from .checkpoint import Checkpointer, load_checkpoint, restore_service
from .config import LiveConfig
from .scheduler import TICK_STAGE_SECONDS_METRIC
from .service import LiveAssessmentService

__all__ = ["LiveReplayReport", "parity_live_config", "replay_scenario",
           "offline_verdict_records", "fleet_kpi_keys"]

REPLAY_SPAN = "live_replay"

ParityRecord = Tuple[str, str, str, str, str, Optional[int]]


def parity_live_config(spec: FleetScenarioSpec, funnel_config=None,
                       **overrides) -> LiveConfig:
    """The :class:`LiveConfig` under which live == offline on ``spec``."""
    base = dict(
        assessment_window_seconds=(
            (spec.window_bins - spec.change_offset) * MINUTE),
        baseline_bins=spec.change_offset,
        max_control_units=spec.max_control_units,
        history_days=spec.history_days,
    )
    if funnel_config is not None:
        base["funnel"] = funnel_config
    base.update(overrides)
    return LiveConfig(**base)


def fleet_kpi_keys(source: SyntheticFleetSource) -> List[KpiKey]:
    """Every KPI the scenario's fleet emits, in a stable order."""
    keys: List[KpiKey] = []
    for service_name in source.fleet.service_names:
        for metric in ENTITY_METRICS["service"]:
            keys.append(KpiKey("service", service_name, metric))
        for hostname in source.fleet.service(service_name).hostnames:
            for metric in ENTITY_METRICS["server"]:
                keys.append(KpiKey("server", hostname, metric))
            for metric in ENTITY_METRICS["instance"]:
                keys.append(KpiKey(
                    "instance", "%s@%s" % (service_name, hostname), metric))
    return keys


def offline_verdict_records(source: SyntheticFleetSource,
                            funnel_config=None) -> List[ParityRecord]:
    """The offline engine's answers, shaped for the parity comparison."""
    engine = AssessmentEngine(detectors=("funnel",),
                              funnel_config=funnel_config)
    _, jobs, results = engine.assess_fleet_detailed(source)
    records = []
    for job, result in zip(jobs, results):
        verdict = (result.verdict.value if result.verdict is not None
                   else "no_change")
        records.append((job.change_id, job.entity_type, job.entity,
                        job.metric, verdict, result.outcome.detection_index))
    return sorted(records, key=_record_key)


def _record_key(record: ParityRecord) -> tuple:
    return tuple("" if part is None else str(part) for part in record)


@dataclass
class LiveReplayReport:
    """What one replay produced, measured, and (optionally) verified."""

    verdicts: List[LiveVerdict] = field(default_factory=list)
    ticks: int = 0
    fragments_streamed: int = 0
    wall_seconds: float = 0.0
    service_report: dict = field(default_factory=dict)
    #: live-vs-offline comparison, present when ``check_offline`` ran.
    parity: Optional[dict] = None
    #: per-declared-verdict ``declaration_bin - change_index``.
    detection_lag_bins: List[int] = field(default_factory=list)
    #: per-verdict seconds between deployment and verdict emission.
    emission_lag_seconds: List[int] = field(default_factory=list)
    #: descriptor of the injected fault plan, when one was active.
    fault_plan: Optional[dict] = None
    #: True when ``kill_after_ticks`` stopped the replay mid-stream.
    killed: bool = False
    #: True when the replay continued from a ``--resume-from`` checkpoint.
    resumed: bool = False
    #: checkpoints written during this run.
    checkpoints_written: int = 0

    @property
    def parity_ok(self) -> Optional[bool]:
        return None if self.parity is None else self.parity["ok"]

    @property
    def fragments_per_second(self) -> Optional[float]:
        if self.wall_seconds <= 0:
            return None
        return self.fragments_streamed / self.wall_seconds

    def live_records(self) -> List[ParityRecord]:
        return sorted((v.parity_tuple() for v in self.verdicts),
                      key=_record_key)

    def as_dict(self) -> dict:
        """The JSON document ``repro live-replay`` prints."""
        doc = {
            "verdicts": len(self.verdicts),
            "ticks": self.ticks,
            "fragments_streamed": self.fragments_streamed,
            "wall_seconds": self.wall_seconds,
            "fragments_per_second": self.fragments_per_second,
            "service": self.service_report,
            "detection_lag_bins": list(self.detection_lag_bins),
            "emission_lag_seconds": list(self.emission_lag_seconds),
            "killed": self.killed,
            "resumed": self.resumed,
            "checkpoints_written": self.checkpoints_written,
        }
        if self.fault_plan is not None:
            doc["fault_plan"] = self.fault_plan
        if self.parity is not None:
            doc["parity"] = {
                "ok": self.parity["ok"],
                "live_records": self.parity["live_count"],
                "offline_records": self.parity["offline_count"],
                "live_only": [list(r) for r in self.parity["live_only"]],
                "offline_only": [list(r)
                                 for r in self.parity["offline_only"]],
            }
        return doc


def replay_scenario(spec: Optional[FleetScenarioSpec] = None,
                    live_config: Optional[LiveConfig] = None,
                    flush_bins: int = 1,
                    check_offline: bool = False,
                    obs: Optional[ObsContext] = None,
                    sink=None, priority=None,
                    fault_plan: Optional[FaultPlan] = None,
                    checkpoint_path: Optional[str] = None,
                    checkpoint_every: int = 25,
                    resume_from: Optional[str] = None,
                    kill_after_ticks: Optional[int] = None,
                    health=None,
                    keys: Optional[List[KpiKey]] = None,
                    change_ids=None,
                    tracker_filter=None,
                    tick_callback=None,
                    checkpoint_extra: Optional[dict] = None,
                    shard_id: Optional[int] = None) -> LiveReplayReport:
    """Stream ``spec`` through the live pipeline in virtual time.

    Args:
        spec: the scenario (defaults mirror ``repro assess-fleet``).
        live_config: pipeline knobs; defaults to
            :func:`parity_live_config` — pass an explicit config (small
            queues, drain budgets) to exercise overload behaviour.
        flush_bins: bins per streamed fragment — agents flushing less
            often than the collection interval.
        check_offline: also run the offline engine and fill ``parity``.
        obs: observability context; the whole replay runs under one
            ``live_replay`` span with one ``live_change`` span per
            closed change, and all live counters/gauges land in the
            context's registry.
        sink: optional verdict-bus subscriber (e.g. a
            :class:`~repro.live.bus.JsonlVerdictSink`).
        priority: optional admission-priority override.
        fault_plan: optional :class:`~repro.faults.FaultPlan` — the
            store (and, with history faults, the history provider) is
            wrapped in the fault injectors, and pending delayed
            fragments are flushed before shutdown so bounded plans keep
            the parity contract decidable.
        checkpoint_path: write a session checkpoint here every
            ``checkpoint_every`` ticks (atomic JSONL).
        resume_from: restore from this checkpoint instead of starting
            cold: the pre-checkpoint stream is fast-forwarded through a
            fresh store (no subscribers, so the stateless fault plan
            reproduces the exact in-flight state) and the service state
            is restored on top, then the replay continues.
        kill_after_ticks: stop mid-stream after this many ticks without
            shutting the service down — the crash half of the
            kill-and-resume test.
        health: optional :class:`~repro.obs.health.HealthMonitor` — one
            heartbeat per tick, finalized at shutdown (a killed run
            leaves the heartbeat stream truncated, like a real crash).
        keys: stream only these KPIs instead of the whole fleet's — a
            cluster shard streams its hash-ring slice plus the control
            keys its changes need.  The tick cadence is unchanged, so
            shard replays stay tick-aligned with the full one.
        change_ids: record only these changes into the change log (a
            shard assesses the changes whose impact set it owns).
        tracker_filter: optional ``(entity_type, entity) -> bool`` gate
            on tracker creation, forwarded to the watcher.
        tick_callback: called as ``tick_callback(tick, now)`` after
            every completed tick — the shard worker's heartbeat hook.
        checkpoint_extra: extra identity fields stamped into (and
            validated against) the checkpoint meta, e.g. the shard id.
        shard_id: stamps the service's reports/heartbeats (cluster).
    """
    if flush_bins < 1:
        raise ValueError("flush_bins must be >= 1")
    source = SyntheticFleetSource(spec)
    spec = source.spec
    config = live_config or parity_live_config(spec)

    log = ChangeLog()
    routed = None if change_ids is None else set(change_ids)
    for change in source.changes:
        if routed is not None and change.change_id not in routed:
            continue
        log.record(change)

    faulty = fault_plan is not None
    store = MetricStore(bin_seconds=MINUTE)
    history = source.history
    if faulty:
        store = FaultyMetricStore(store, fault_plan)
        if fault_plan.has_history_faults():
            history = FaultyHistoryProvider(source.history, fault_plan)

    keys = list(keys) if keys is not None else fleet_kpi_keys(source)
    arrays = {key: source.observed_series(key.entity_type, key.entity,
                                          key.metric) for key in keys}
    at_time: Dict[str, int] = {c.change_id: c.at_time
                               for c in source.changes}
    stream_bins = spec.n_changes * spec.window_bins
    plan_doc = fault_plan.describe() if faulty else None
    static_extra = {"spec": asdict(spec), "flush_bins": flush_bins,
                    "fault_plan": plan_doc}
    if checkpoint_extra:
        static_extra.update(checkpoint_extra)

    report = LiveReplayReport()
    report.fault_plan = plan_doc
    clock = SimulationClock(start=spec.lead_bins * MINUTE)

    start_offset = 0
    checkpoint_doc = None
    if resume_from is not None:
        checkpoint_doc = load_checkpoint(resume_from)
        extra = checkpoint_doc["meta"].get("extra", {})
        for name in static_extra:
            if extra.get(name) != static_extra[name]:
                raise CheckpointError(
                    "checkpoint %s was written under a different %s"
                    % (resume_from, name))
        start_offset = int(extra.get("offset", 0))
        report.resumed = True

    checkpointer = None
    if checkpoint_path is not None:
        checkpointer = Checkpointer(checkpoint_path, checkpoint_every)
        checkpointer.extra = dict(static_extra, offset=start_offset)

    def stream_chunk(offset: int, chunk: int) -> None:
        absolute_bin = spec.lead_bins + offset
        start_time = absolute_bin * MINUTE
        store.append_batch([
            (key, TimeSeries(start_time, MINUTE,
                             arrays[key][absolute_bin:absolute_bin + chunk]))
            for key in keys])

    # Fast-forward to the checkpoint: replay the pre-checkpoint stream
    # into the fresh (fault-wrapped) store before any subscriber exists.
    # The deterministic plan makes the same appends pend/release the same
    # way, so the store *and* the injector's in-flight state match the
    # killed run's exactly; the service session state is restored on top.
    offset = 0
    while offset < start_offset:
        chunk = min(flush_bins, start_offset - offset)
        stream_chunk(offset, chunk)
        now = clock.advance_minutes(chunk)
        if faulty:
            store.advance(now)
        offset += chunk

    service = LiveAssessmentService(
        store, log, source.fleet, config=config, obs=obs,
        history_provider=history, priority=priority,
        checkpointer=checkpointer, health=health,
        shard_id=shard_id, tracker_filter=tracker_filter)
    if faulty:
        store.bind_metrics(service.metrics)
        if isinstance(history, FaultyHistoryProvider):
            history.metrics = service.metrics
    if checkpoint_doc is not None:
        restore_service(service, checkpoint_doc)
    if sink is not None:
        service.bus.subscribe(sink)

    observed = obs is not None and obs.enabled
    root = obs.tracer.span(REPLAY_SPAN) if observed else nullcontext()

    started = time.perf_counter()
    stream_seconds = 0.0
    with root:
        while offset < stream_bins:
            chunk = min(flush_bins, stream_bins - offset)
            chunk_started = time.perf_counter()
            stream_chunk(offset, chunk)
            stream_seconds += time.perf_counter() - chunk_started
            report.fragments_streamed += len(keys)
            now = clock.advance_minutes(chunk)
            if faulty:
                store.advance(now)
            offset += chunk
            if checkpointer is not None:
                checkpointer.extra["offset"] = offset
            service.on_tick(now)
            report.ticks += 1
            if tick_callback is not None:
                tick_callback(report.ticks, now)
            if (kill_after_ticks is not None
                    and report.ticks >= kill_after_ticks
                    and offset < stream_bins):
                report.killed = True
                break
        if not report.killed:
            if faulty:
                store.flush_all()
            service.shutdown(clock.now)
    report.wall_seconds = time.perf_counter() - started
    # The append side of the ingest plane, alongside the scheduler's
    # per-tick poll/drain/pool/close stages in the same counter.
    service.metrics.counter(
        TICK_STAGE_SECONDS_METRIC,
        help="Wall seconds spent per tick stage.",
    ).inc(stream_seconds, stage="stream")
    if checkpointer is not None:
        report.checkpoints_written = checkpointer.written

    report.verdicts = list(service.bus.verdicts)
    report.service_report = service.report()
    for verdict in report.verdicts:
        report.emission_lag_seconds.append(
            verdict.emitted_at - at_time[verdict.change_id])
        if verdict.declaration_bin is not None:
            report.detection_lag_bins.append(
                verdict.declaration_bin - spec.change_offset)

    if check_offline and not report.killed:
        live = report.live_records()
        offline = offline_verdict_records(source, funnel_config=config.funnel)
        live_set, offline_set = set(live), set(offline)
        report.parity = {
            "ok": live_set == offline_set,
            "live_count": len(live),
            "offline_count": len(offline),
            "live_only": sorted(live_set - offline_set, key=_record_key),
            "offline_only": sorted(offline_set - live_set, key=_record_key),
        }
    return report
