"""The event-time scheduler: poll, drain, close — on every tick.

One :meth:`EventTimeScheduler.tick` runs the live pipeline's control
loop for one virtual instant ``now``:

1. **poll** — the watcher admits changes whose deployment time passed;
2. **drain** — queued fragments flow into the assessor under the global
   per-tick budget (``max_fragments_per_tick``), oldest change first so
   the session nearest its deadline gets served before fresher ones;
3. **pool-score** (``pooled_scoring`` only) — every tracker's pending
   score segment, across all sessions, goes through one stacked
   :class:`~repro.live.pool.DetectorPool` pass instead of the
   per-fragment calls the drain deferred;
4. **close** — every session whose deadline passed is settled: its
   detectors flush, open items emit ``no_change``, the subscription is
   cancelled.

Between steps the scheduler maintains the pipeline's event-time health
gauges: per-change *watermarks* (the oldest event time any subscribed
KPI is processed through), total and peak queue depth, active changes
and store subscriptions.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..obs.metrics import MetricsRegistry
from ..telemetry.store import MetricStore
from .assessor import ChangeSession, LiveAssessor
from .config import LiveConfig
from .watcher import ChangeWatcher

__all__ = ["EventTimeScheduler", "TICK_STAGE_SECONDS_METRIC"]

#: Wall seconds per tick stage (labels: stage=poll|drain|pool|close; the
#: replay driver adds stage=stream for its append side).  ``repro obs
#: report`` renders these as the ingest-plane timing breakdown.
TICK_STAGE_SECONDS_METRIC = "repro_live_tick_stage_seconds_total"

QUEUE_DEPTH_GAUGE = "repro_live_queue_depth"
PEAK_QUEUE_DEPTH_GAUGE = "repro_live_peak_queue_depth"
WATERMARK_LAG_GAUGE = "repro_live_watermark_lag_seconds"
ACTIVE_CHANGES_GAUGE = "repro_live_active_changes"
ACTIVE_SUBSCRIPTIONS_GAUGE = "repro_live_active_subscriptions"


class EventTimeScheduler:
    """Drives watcher, queues and assessor in virtual time."""

    def __init__(self, watcher: ChangeWatcher, assessor: LiveAssessor,
                 store: MetricStore, config: LiveConfig,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.watcher = watcher
        self.assessor = assessor
        self.store = store
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.peak_queue_depth = 0
        self.closed_count = 0
        self.tick_count = 0
        #: optional :class:`~repro.live.checkpoint.Checkpointer`; when
        #: attached, a snapshot is taken at the end of qualifying ticks.
        self.checkpointer = None
        #: optional :class:`~repro.obs.health.HealthMonitor`; when
        #: attached, one heartbeat record is emitted per tick.
        self.health = None

    def tick(self, now: int) -> List[ChangeSession]:
        """Run one control-loop pass; returns the sessions closed."""
        clock = time.perf_counter
        started = clock() if self.health is not None else 0.0
        t_0 = clock()
        self.watcher.poll(now)
        t_poll = clock()
        self._note_depth()  # ingest since the last tick
        self._drain(now)
        t_drain = clock()
        if self.config.pooled_scoring:
            self.assessor.pool_score(self._sessions_by_age(), now)
        t_pool = clock()
        closed = self._close_due(now)
        t_close = clock()
        stage_seconds = self.metrics.counter(
            TICK_STAGE_SECONDS_METRIC,
            help="Wall seconds spent per tick stage.")
        stage_seconds.inc(t_poll - t_0, stage="poll")
        stage_seconds.inc(t_drain - t_poll, stage="drain")
        stage_seconds.inc(t_pool - t_drain, stage="pool")
        stage_seconds.inc(t_close - t_pool, stage="close")
        self._update_gauges(now)
        self.tick_count += 1
        if self.checkpointer is not None:
            self.checkpointer.on_tick(now, self.tick_count)
        if self.health is not None:
            self.health.on_tick(now, self.tick_count,
                                time.perf_counter() - started)
        return closed

    # -- draining --------------------------------------------------------------

    def _sessions_by_age(self) -> List[ChangeSession]:
        return sorted(self.watcher.sessions.values(),
                      key=lambda s: (s.change.at_time, s.change_id))

    def _drain(self, now: int) -> None:
        budget = self.config.max_fragments_per_tick
        remaining = budget if budget > 0 else 0
        fused = self.config.fused_ingest
        for session in self._sessions_by_age():
            if budget > 0 and remaining <= 0:
                break
            if fused:
                # Same fragments in the same order — materialised so the
                # assessor can heal, stage and scatter the whole batch.
                batch = session.queues.drain_batch(budget=remaining)
                self.assessor.on_fragment_batch(session, batch, now)
                drained = len(batch)
            else:
                drained = 0
                for key, fragment in session.queues.drain(budget=remaining):
                    self.assessor.on_fragment(session, key, fragment, now)
                    drained += 1
            if budget > 0:
                remaining -= drained

    # -- deadlines -------------------------------------------------------------

    def _close_due(self, now: int) -> List[ChangeSession]:
        closed = []
        grace = self.config.close_grace_seconds
        for session in self._sessions_by_age():
            if session.deadline + grace > now:
                continue
            self.assessor.reconcile_session(session, now)
            self.assessor.close_session(session, now)
            self.watcher.finish(session)
            closed.append(session)
        self.closed_count += len(closed)
        return closed

    # -- health ----------------------------------------------------------------

    def queue_depth(self) -> int:
        return sum(s.queues.depth for s in self.watcher.sessions.values())

    def watermark_lag(self, now: int) -> int:
        """Worst event-time lag across active sessions, in seconds."""
        lag = 0
        for session in self.watcher.sessions.values():
            watermark = session.watermark
            if watermark is not None:
                lag = max(lag, now - watermark)
        return lag

    def _note_depth(self) -> None:
        self.peak_queue_depth = max(self.peak_queue_depth,
                                    self.queue_depth())

    def _update_gauges(self, now: int) -> None:
        self._note_depth()
        self.metrics.gauge(
            QUEUE_DEPTH_GAUGE, help="Fragments queued across sessions."
        ).set(self.queue_depth())
        self.metrics.gauge(
            PEAK_QUEUE_DEPTH_GAUGE, help="Peak total queue depth."
        ).set(self.peak_queue_depth)
        self.metrics.gauge(
            WATERMARK_LAG_GAUGE,
            help="Worst per-change event-time lag.").set(
            self.watermark_lag(now))
        self.metrics.gauge(
            ACTIVE_CHANGES_GAUGE, help="Changes currently under assessment."
        ).set(len(self.watcher.sessions))
        self.metrics.gauge(
            ACTIVE_SUBSCRIPTIONS_GAUGE,
            help="Live subscriptions on the metric store.").set(
            self.store.subscription_count())
