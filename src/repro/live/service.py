"""The live assessment service facade.

:class:`LiveAssessmentService` wires the subsystem together around one
metric store, change log and fleet: verdict bus → assessor → watcher →
event-time scheduler, all sharing one metrics registry (the observability
context's, when given, so live counters and gauges land in the same run
artifact as everything else).  Drive it with :meth:`on_tick` from
whatever advances time — the replay driver's simulation clock, or a real
ingestion loop.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..changes.log import ChangeLog
from ..obs.context import ObsContext
from ..obs.metrics import MetricsRegistry
from ..telemetry.store import MetricStore
from ..topology.entities import Fleet
from .assessor import ChangeSession, LiveAssessor
from .bus import VerdictBus
from .config import LiveConfig
from .scheduler import EventTimeScheduler
from .watcher import ChangeWatcher, StoreHistoryProvider

__all__ = ["LiveAssessmentService"]

CHANGE_SPAN = "live_change"


class LiveAssessmentService:
    """One live pipeline over a store, a change log and a fleet."""

    def __init__(self, store: MetricStore, log: ChangeLog, fleet: Fleet,
                 config: Optional[LiveConfig] = None,
                 obs: Optional[ObsContext] = None,
                 history_provider=None, priority=None,
                 checkpointer=None, health=None,
                 shard_id: Optional[int] = None,
                 tracker_filter=None) -> None:
        self.config = config or LiveConfig()
        self.obs = obs
        self.store = store
        #: set when this service is one shard of a :mod:`repro.cluster`
        #: run — stamped into :meth:`report` and every health heartbeat
        #: so merged operator views stay namespaced per shard instead of
        #: silently summing per-process gauges.
        self.shard_id = shard_id
        if obs is not None and obs.enabled:
            self.metrics = obs.metrics
        else:
            self.metrics = MetricsRegistry()
        self.bus = VerdictBus(self.metrics)
        if history_provider is None:
            history_provider = StoreHistoryProvider(store, self.config)
        self.assessor = LiveAssessor(self.config, self.bus, self.metrics,
                                     history_provider=history_provider,
                                     store=store)
        self.watcher = ChangeWatcher(log, fleet, store, self.assessor,
                                     self.config, self.metrics,
                                     priority=priority,
                                     tracker_filter=tracker_filter)
        self.scheduler = EventTimeScheduler(self.watcher, self.assessor,
                                            store, self.config, self.metrics)
        self.closed: List[ChangeSession] = []
        #: sessions a restored checkpoint had already closed — counted in
        #: :meth:`report` so a resumed run's summary matches end to end.
        self.restored_closed = 0
        #: optional :class:`~repro.obs.health.HealthMonitor`; attached
        #: before the checkpointer so a restored run heartbeats too.
        self.health = health
        if health is not None:
            health.attach(self)
        if checkpointer is not None:
            checkpointer.attach(self)

    # -- driving ---------------------------------------------------------------

    def on_tick(self, now: int) -> List[ChangeSession]:
        """Advance the pipeline to virtual time ``now``."""
        closed = self.scheduler.tick(now)
        for session in closed:
            self._record_change_span(session)
        self.closed.extend(closed)
        return closed

    def shutdown(self, now: int) -> List[ChangeSession]:
        """Force-close every session still open (end of stream)."""
        closed = []
        for session in list(self.watcher.sessions.values()):
            if self.config.fused_ingest:
                self.assessor.on_fragment_batch(
                    session, session.queues.drain_batch(), now)
            else:
                for key, fragment in session.queues.drain():
                    self.assessor.on_fragment(session, key, fragment, now)
            self.assessor.reconcile_session(session, now)
            self.assessor.close_session(session, now)
            self.watcher.finish(session)
            self._record_change_span(session)
            closed.append(session)
        self.closed.extend(closed)
        if self.health is not None:
            self.health.finalize(now)
        return closed

    def _record_change_span(self, session: ChangeSession) -> None:
        if self.obs is None or not self.obs.enabled:
            return
        self.obs.tracer.record(
            CHANGE_SPAN,
            time.perf_counter() - session.started_perf,
            change_id=session.change_id,
            service=session.change.service,
            trackers=len(session.trackers),
            verdicts=session.verdicts,
            shed_fragments=session.queues.shed,
        )

    # -- reporting -------------------------------------------------------------

    def report(self) -> dict:
        """Operator summary: activity, verdicts, shedding, gauges."""
        counters = self.metrics.snapshot()["counters"]
        arena = self.assessor.arena
        doc = {
            "active_changes": len(self.watcher.sessions),
            "closed_changes": len(self.closed) + self.restored_closed,
            "verdicts": len(self.bus),
            "arena": {"rows": arena.rows, "active_rows": arena.active_rows,
                      "capacity_bins": arena.capacity},
            "shed_change_ids": list(self.watcher.shed_change_ids),
            "queue_depth": self.scheduler.queue_depth(),
            "peak_queue_depth": self.scheduler.peak_queue_depth,
            "counters": {name: sum(entry["value"]
                                   for entry in entries["values"])
                         for name, entries in counters.items()},
        }
        if self.shard_id is not None:
            doc["shard_id"] = self.shard_id
        if self.health is not None:
            doc["health"] = self.health.summary()
        return doc
