"""The change watcher: from change-log entries to live sessions.

:class:`ChangeWatcher` tails a :class:`~repro.changes.log.ChangeLog` in
event time.  When a change's deployment timestamp passes, it resolves
the impact set (:func:`~repro.topology.impact.identify_impact_set`),
builds one :class:`~repro.live.assessor.ChangeSession` with a tracker
per monitored (entity, KPI) — exactly the job set the offline planner
emits — plus buffers for the peer-control series, backfills the
pre-change baseline from the :class:`~repro.telemetry.store.MetricStore`
and opens one push subscription routing every future fragment into the
session's bounded queues.

Admission control caps concurrently assessed changes: at
``max_active_changes`` a new change is admitted only if its priority
(by default, blast radius — the number of treated servers) beats the
lowest-priority active change, which is then evicted; otherwise the new
change is shed whole.  Either way a counter records it and the change id
lands on :attr:`ChangeWatcher.shed_change_ids`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

import numpy as np

from ..changes.change import SoftwareChange
from ..changes.log import ChangeLog
from ..engine.planner import ENTITY_METRICS
from ..exceptions import TelemetryError
from ..obs.metrics import MetricsRegistry
from ..telemetry.kpi import KpiKey
from ..telemetry.store import MetricStore
from ..telemetry.timeseries import DAY, TimeSeries
from ..topology.entities import Fleet
from ..topology.impact import ImpactSet, identify_impact_set
from .assessor import ChangeSession, KpiTracker, LiveAssessor, _SeriesBuffer
from .config import LiveConfig
from .queues import IngestQueues

__all__ = ["ChangeWatcher", "StoreHistoryProvider", "default_priority"]

ADMITTED_METRIC = "repro_live_changes_admitted_total"
SHED_CHANGES_METRIC = "repro_live_shed_changes_total"

PriorityFn = Callable[[SoftwareChange, ImpactSet], float]


def default_priority(change: SoftwareChange, impact: ImpactSet) -> float:
    """Blast radius: changes touching more servers matter more."""
    return float(len(impact.tservers))


class StoreHistoryProvider:
    """Historical-control rows read back from the metric store.

    Mirrors the offline source's historical control: the same clock
    window on each of the previous ``history_days`` days.  Returns
    ``None`` when the store lacks full coverage (young deployments),
    which routes the attribution to the no-control verdict — the
    real-deployment default.  The replay driver swaps in a source-backed
    provider instead, because the store's recent past contains the very
    impacts earlier changes injected.
    """

    def __init__(self, store: MetricStore, config: LiveConfig) -> None:
        self.store = store
        self.config = config

    def __call__(self, change: SoftwareChange, entity_type: str, entity: str,
                 metric: str) -> Optional[np.ndarray]:
        if self.config.history_days < 1:
            return None
        binsec = self.store.bin_seconds
        window_start = change.at_time - self.config.baseline_bins * binsec
        length = (self.config.baseline_bins * binsec
                  + self.config.assessment_window_seconds)
        bins = length // binsec
        series = self.store.maybe_series(KpiKey(entity_type, entity, metric))
        if series is None:
            return None
        rows = []
        for day in range(1, self.config.history_days + 1):
            lo = window_start - day * DAY
            try:
                fragment = series.slice_time(lo, lo + length)
            except TelemetryError:
                return None
            if len(fragment) != bins:
                return None
            rows.append(fragment.values)
        return np.vstack(rows)


class ChangeWatcher:
    """Tails the change log; owns the set of in-flight sessions."""

    def __init__(self, log: ChangeLog, fleet: Fleet, store: MetricStore,
                 assessor: LiveAssessor, config: LiveConfig,
                 metrics: Optional[MetricsRegistry] = None,
                 priority: Optional[PriorityFn] = None,
                 tracker_filter: Optional[
                     Callable[[str, str], bool]] = None) -> None:
        self.log = log
        self.fleet = fleet
        self.store = store
        self.assessor = assessor
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.priority = priority or default_priority
        #: optional ``(entity_type, entity) -> bool`` ownership gate.  A
        #: cluster shard assesses a change but builds trackers only for
        #: the monitored entities it owns (every other owning shard
        #: builds the rest); control buffers always stay complete so
        #: each shard's DiD panels match the single-process ones.
        self.tracker_filter = tracker_filter
        self.sessions: "dict[str, ChangeSession]" = {}
        self.shed_change_ids: List[str] = []
        self._seen: Set[str] = set()

    # -- polling ---------------------------------------------------------------

    def poll(self, now: int) -> List[ChangeSession]:
        """Admit every unseen change whose deployment time has passed."""
        admitted = []
        for change in self.log:
            if change.at_time > now:
                break  # the log iterates in at_time order
            if change.change_id in self._seen:
                continue
            self._seen.add(change.change_id)
            session = self._admit(change, now)
            if session is not None:
                admitted.append(session)
        return admitted

    # -- admission -------------------------------------------------------------

    def _admit(self, change: SoftwareChange,
               now: int) -> Optional[ChangeSession]:
        impact = identify_impact_set(self.fleet, change.service,
                                     change.hostnames)
        priority = self.priority(change, impact)
        if (self.config.max_active_changes
                and len(self.sessions) >= self.config.max_active_changes):
            lowest = min(self.sessions.values(),
                         key=lambda s: (s.priority, -s.change.at_time,
                                        s.change_id))
            if priority <= lowest.priority:
                self._count_shed(change, "rejected")
                return None
            self._evict(lowest)

        queues = IngestQueues(self.config.queue_capacity,
                              self.config.drop_policy, self.metrics)
        deadline = change.at_time + self.config.assessment_window_seconds
        session = ChangeSession(change, impact, priority, deadline, queues)

        binsec = self.store.bin_seconds
        window_start = change.at_time - self.config.baseline_bins * binsec
        backfills = []

        # Control buffers first, so a backfilled treated series that
        # declares immediately finds its peer panel already populated.
        if impact.dark_launched:
            for entity_type, peers in (
                    ("server", impact.control_hostnames),
                    ("instance", tuple(i.name for i in impact.cinstances))):
                peers = peers[:self.config.max_control_units]
                for metric in ENTITY_METRICS.get(entity_type, ()):
                    group = [KpiKey(entity_type, peer, metric)
                             for peer in peers]
                    if not group:
                        continue
                    session.control_groups[(entity_type, metric)] = group
                    for key in group:
                        fragment = self._backfill(key, window_start, now)
                        start = (fragment.start if fragment is not None
                                 else now)
                        session.control_buffers[key] = _SeriesBuffer(start)
                        if fragment is not None and len(fragment):
                            backfills.append((key, fragment))

        for entity_type, entity in impact.monitored_entities():
            if self.tracker_filter is not None and \
                    not self.tracker_filter(entity_type, entity):
                continue
            for metric in ENTITY_METRICS.get(entity_type, ()):
                key = KpiKey(entity_type, entity, metric)
                fragment = self._backfill(key, window_start, now)
                if fragment is not None and len(fragment):
                    start = fragment.start
                    change_index = max(
                        0, -((start - change.at_time) // binsec))
                    backfills.append((key, fragment))
                else:
                    start = now
                    change_index = 0
                session.trackers[key] = KpiTracker(
                    key, change_index, start, self.config,
                    arena=self.assessor.arena)

        for key, fragment in backfills:
            self.assessor.on_fragment(session, key, fragment, now)

        session.subscription = self.store.subscribe(
            session.subscribed_keys(),
            lambda key, fragment, _q=session.queues: _q.offer(key, fragment),
            batch_callback=(
                (lambda items, _q=session.queues: _q.offer_batch(items))
                if self.config.fused_ingest else None))
        self.sessions[change.change_id] = session
        self.metrics.counter(
            ADMITTED_METRIC, help="Changes admitted to live assessment."
        ).inc()
        return session

    def _backfill(self, key: KpiKey, window_start: int,
                  now: int) -> Optional[TimeSeries]:
        series = self.store.maybe_series(key)
        if series is None:
            return None
        binsec = self.store.bin_seconds
        # Clamp-and-align both bounds onto the stored series' grid.
        lo = max(series.start, window_start)
        lo = series.start + ((lo - series.start + binsec - 1)
                             // binsec) * binsec
        hi = series.start + max(0, (now - series.start) // binsec) * binsec
        if hi <= lo:
            return None
        return series.slice_time(lo, hi)

    # -- shedding / teardown ---------------------------------------------------

    def _count_shed(self, change: SoftwareChange, policy: str) -> None:
        self.shed_change_ids.append(change.change_id)
        self.metrics.counter(
            SHED_CHANGES_METRIC,
            help="Whole changes shed by admission control.",
        ).inc(policy=policy)

    def _evict(self, session: ChangeSession) -> None:
        self.finish(session)
        self._count_shed(session.change, "evicted")

    def finish(self, session: ChangeSession) -> None:
        """Tear a session down: unsubscribe, drop queued fragments."""
        if session.subscription is not None:
            session.subscription.cancel()
            session.subscription = None
        session.queues.discard()
        # Free the session's arena rows for future admissions; each
        # detector keeps a private copy so post-close reads still work.
        for tracker in session.trackers.values():
            tracker.detector.detach()
        self.sessions.pop(session.change_id, None)
