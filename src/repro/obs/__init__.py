"""End-to-end observability for the assessment engine.

Four pieces, designed to compose:

* :mod:`repro.obs.tracing` — spans with monotonic timings, explicit
  context propagation and picklable records that re-parent across the
  process-pool boundary;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with Prometheus text exposition and mergeable JSON
  snapshots;
* :mod:`repro.obs.artifacts` — per-run ``events.jsonl`` + ``run.json``
  written under ``--obs-dir``, making runs diffable and replayable;
* :mod:`repro.obs.profile` — the stage profiler behind
  ``repro obs report``: self-vs-child time per stage path, per-detector
  latency, slowest jobs, and flamegraph ``folded`` export;
* :mod:`repro.obs.health` — live-service health telemetry: the per-tick
  heartbeat stream, declarative SLO tracking with multi-window burn
  alerts, and the FUNNEL-on-FUNNEL self-assessment loop behind
  ``repro obs health-report``.

The engine threads one :class:`ObsContext` per run through planner,
executor and reporters; ``repro assess-fleet --obs-dir <d>`` records a
run and ``repro obs report <d>`` profiles it.  See
``docs/observability.md``.
"""

from .artifacts import (RunArtifacts, git_revision, load_run,
                        write_run_artifacts)
from .context import ObsContext, WorkerTelemetry
from .health import (DEFAULT_SELF_KPIS, DEFAULT_SLOS, VERDICT_LAG_BUCKETS,
                     VERDICT_LAG_METRIC, HealthConfig, HealthMonitor,
                     HeartbeatWriter, SelfAssessor, Slo, SloTracker,
                     build_health_report, load_heartbeat,
                     render_health_report)
from .metrics import (BYTE_BUCKETS, LATENCY_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry)
from .profile import (PathStats, StageProfile, build_profile, folded_stacks,
                      render_table)
from .tracing import (RemoteContext, Span, SpanRecord, Tracer, new_span_id,
                      new_trace_id)

__all__ = [
    "BYTE_BUCKETS", "Counter", "DEFAULT_SELF_KPIS", "DEFAULT_SLOS",
    "Gauge", "HealthConfig", "HealthMonitor", "HeartbeatWriter",
    "Histogram", "LATENCY_BUCKETS", "MetricsRegistry", "ObsContext",
    "PathStats", "RemoteContext", "RunArtifacts", "SelfAssessor", "Slo",
    "SloTracker", "Span", "SpanRecord", "StageProfile", "Tracer",
    "VERDICT_LAG_BUCKETS", "VERDICT_LAG_METRIC", "WorkerTelemetry",
    "build_health_report", "build_profile", "folded_stacks",
    "git_revision", "load_heartbeat", "load_run", "new_span_id",
    "new_trace_id", "render_health_report", "render_table",
    "write_run_artifacts",
]
