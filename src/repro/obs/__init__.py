"""End-to-end observability for the assessment engine.

Four pieces, designed to compose:

* :mod:`repro.obs.tracing` — spans with monotonic timings, explicit
  context propagation and picklable records that re-parent across the
  process-pool boundary;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with Prometheus text exposition and mergeable JSON
  snapshots;
* :mod:`repro.obs.artifacts` — per-run ``events.jsonl`` + ``run.json``
  written under ``--obs-dir``, making runs diffable and replayable;
* :mod:`repro.obs.profile` — the stage profiler behind
  ``repro obs report``: self-vs-child time per stage path, per-detector
  latency, slowest jobs, and flamegraph ``folded`` export.

The engine threads one :class:`ObsContext` per run through planner,
executor and reporters; ``repro assess-fleet --obs-dir <d>`` records a
run and ``repro obs report <d>`` profiles it.  See
``docs/observability.md``.
"""

from .artifacts import (RunArtifacts, git_revision, load_run,
                        write_run_artifacts)
from .context import ObsContext, WorkerTelemetry
from .metrics import (BYTE_BUCKETS, LATENCY_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry)
from .profile import (PathStats, StageProfile, build_profile, folded_stacks,
                      render_table)
from .tracing import (RemoteContext, Span, SpanRecord, Tracer, new_span_id,
                      new_trace_id)

__all__ = [
    "BYTE_BUCKETS", "Counter", "Gauge", "Histogram", "LATENCY_BUCKETS",
    "MetricsRegistry", "ObsContext", "PathStats", "RemoteContext",
    "RunArtifacts", "Span", "SpanRecord", "StageProfile", "Tracer",
    "WorkerTelemetry", "build_profile", "folded_stacks", "git_revision",
    "load_run", "new_span_id", "new_trace_id", "render_table",
    "write_run_artifacts",
]
