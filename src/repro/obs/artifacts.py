"""Run artifacts: a JSONL event log plus a ``run.json`` manifest.

Every observed engine invocation can leave a self-describing directory
behind (``repro assess-fleet --obs-dir <d>`` wires this up; library
callers use :func:`write_run_artifacts` directly):

* ``events.jsonl`` — one JSON object per line.  Line kinds:
  ``run_start`` (run id, wall clock, git revision, tool version),
  ``span`` (one :class:`~repro.obs.tracing.SpanRecord`, see its
  ``as_dict``), ``metrics`` (the full registry snapshot), and
  ``run_end`` (span count, duration).  Unknown kinds must be skipped by
  readers, so the schema can grow.
* ``run.json`` — the manifest: configuration, seeds, git revision,
  wall-clock per stage, metric snapshot and span count.  Two manifests
  diff cleanly, which is the point: a run is reproducible from its
  config/seeds and comparable against any other run.

:func:`load_run` reads a directory back into a :class:`RunArtifacts`
for ``repro obs report``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import List, Optional

from .context import ObsContext
from .tracing import SpanRecord

__all__ = ["git_revision", "write_run_artifacts", "load_run",
           "RunArtifacts", "EVENTS_FILE", "MANIFEST_FILE"]

EVENTS_FILE = "events.jsonl"
MANIFEST_FILE = "run.json"


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _tool_version() -> str:
    from repro import __version__
    return __version__


def write_run_artifacts(obs_dir: str, obs: ObsContext,
                        config: Optional[dict] = None,
                        seeds: Optional[dict] = None,
                        stages: Optional[dict] = None,
                        run_id: Optional[str] = None,
                        unix_time: Optional[float] = None) -> dict:
    """Write ``events.jsonl`` + ``run.json`` for one observed run.

    Args:
        obs_dir: target directory, created if missing.
        obs: the run's observability context (spans + metrics).
        config: the caller's JSON-safe run configuration.
        seeds: the random seeds the run derives from.
        stages: wall-clock per stage, e.g. an
            :class:`~repro.engine.instrument.Instrumentation`
            snapshot's ``stages`` mapping.
        run_id: override the run id (defaults to the trace id).
        unix_time: override the manifest timestamp (test hook).

    Returns a summary dict with the written paths and counts.
    """
    os.makedirs(obs_dir, exist_ok=True)
    run_id = run_id or obs.tracer.trace_id
    started = obs.started_unix if unix_time is None else unix_time
    revision = git_revision()
    spans = obs.spans()
    metrics = obs.metrics.snapshot()

    events_path = os.path.join(obs_dir, EVENTS_FILE)
    with open(events_path, "w", encoding="utf-8") as fh:
        def emit(doc: dict) -> None:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")

        emit({"kind": "run_start", "run_id": run_id,
              "unix_time": round(started, 3), "git_rev": revision,
              "repro_version": _tool_version()})
        for span in spans:
            doc = span.as_dict()
            doc["kind"] = "span"
            emit(doc)
        emit({"kind": "metrics", "metrics": metrics})
        wall = (time.time() - started) if unix_time is None else 0.0
        emit({"kind": "run_end", "run_id": run_id,
              "span_count": len(spans),
              "wall_seconds": round(max(0.0, wall), 3)})

    manifest = {
        "run_id": run_id,
        "trace_id": obs.tracer.trace_id,
        "unix_time": round(started, 3),
        "git_rev": revision,
        "repro_version": _tool_version(),
        "config": config or {},
        "seeds": seeds or {},
        "stages": stages or {},
        "span_count": len(spans),
        "metrics": metrics,
    }
    manifest_path = os.path.join(obs_dir, MANIFEST_FILE)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    return {"obs_dir": obs_dir, "events": events_path,
            "manifest": manifest_path, "span_count": len(spans)}


@dataclass
class RunArtifacts:
    """A recorded run read back from its ``--obs-dir``."""

    manifest: dict = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    #: events.jsonl lines that failed to parse (truncated writes).
    corrupt_lines: int = 0

    @property
    def run_id(self) -> str:
        run_id = self.manifest.get("run_id")
        return str(run_id) if run_id else "unknown"


def load_run(obs_dir: str) -> RunArtifacts:
    """Read a run directory back (manifest optional, events required).

    Resilient to the artifacts a crashed or empty run leaves behind: a
    truncated final line, a ``metrics: null`` record, or an events file
    with no spans at all — corrupt lines are counted and skipped, and
    every section degrades to its empty shape instead of raising.
    """
    events_path = os.path.join(obs_dir, EVENTS_FILE)
    if not os.path.exists(events_path):
        raise FileNotFoundError(
            "no %s in %r — not an --obs-dir run directory"
            % (EVENTS_FILE, obs_dir))
    spans: List[SpanRecord] = []
    metrics: dict = {}
    header: dict = {}
    corrupt = 0
    with open(events_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if not isinstance(doc, dict):
                corrupt += 1
                continue
            kind = doc.get("kind")
            if kind == "span":
                spans.append(SpanRecord.from_dict(doc))
            elif kind == "metrics":
                metrics = doc.get("metrics") or {}
            elif kind == "run_start":
                header = doc

    manifest_path = os.path.join(obs_dir, MANIFEST_FILE)
    manifest: dict = {}
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    else:
        manifest = {key: header.get(key) for key in
                    ("run_id", "unix_time", "git_rev", "repro_version")}
    return RunArtifacts(manifest=manifest, spans=spans, metrics=metrics,
                        corrupt_lines=corrupt)
