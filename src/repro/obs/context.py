"""The per-run observability context and the worker telemetry channel.

An :class:`ObsContext` owns one run's tracer, metrics registry and
event log.  The engine threads it explicitly — constructor argument,
never a global — through planner, executor and reporters.

Crossing the process pool: module-level state (hooks, registries) does
not exist in pool workers, so telemetry recorded there must travel back
with the results.  The executor ships a :class:`RemoteContext` out with
each batch; the worker records into a throwaway context and returns a
:class:`WorkerTelemetry` — pickled span records plus a metrics snapshot
— which :meth:`ObsContext.absorb` re-parents and merges.  The serial
path uses the identical channel, which is what makes serial and pooled
runs structurally indistinguishable to observers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .metrics import MetricsRegistry
from .tracing import RemoteContext, SpanRecord, Tracer

__all__ = ["ObsContext", "WorkerTelemetry"]

SpanObserver = Callable[[SpanRecord], None]


@dataclass(frozen=True)
class WorkerTelemetry:
    """One batch's worth of worker-side telemetry, shipped with results."""

    spans: Tuple[SpanRecord, ...]
    metrics: dict

    @property
    def span_count(self) -> int:
        return len(self.spans)


class ObsContext:
    """Tracer + metrics + span observers for one engine run.

    ``enabled=False`` builds an inert context: every recording surface
    still exists (callers never branch), but the executor checks
    :attr:`enabled` once per run and skips the telemetry channel, so a
    disabled context costs nothing on the hot path.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.started_unix = time.time()
        self._observers: List[SpanObserver] = []

    # -- observers -----------------------------------------------------------

    def on_span(self, observer: SpanObserver) -> SpanObserver:
        """Register ``observer`` to receive every adopted/finished span."""
        self._observers.append(observer)
        return observer

    def _notify(self, records: Tuple[SpanRecord, ...]) -> None:
        if not self._observers:
            return
        for record in records:
            for observer in tuple(self._observers):
                observer(record)

    # -- the worker channel --------------------------------------------------

    def remote_context(self) -> RemoteContext:
        """Context for parenting worker spans under the current span."""
        return self.tracer.remote_context()

    def absorb(self, telemetry: Optional[WorkerTelemetry]) -> None:
        """Merge one batch's worker telemetry into the run's view."""
        if telemetry is None:
            return
        self.tracer.adopt(telemetry.spans)
        self.metrics.merge(telemetry.metrics)
        self._notify(telemetry.spans)

    # -- export --------------------------------------------------------------

    @property
    def span_count(self) -> int:
        return len(self.tracer.finished)

    def spans(self) -> Tuple[SpanRecord, ...]:
        return tuple(self.tracer.finished)

    def snapshot(self) -> dict:
        """JSON-safe summary: metric snapshot plus trace shape."""
        return {
            "trace_id": self.tracer.trace_id,
            "span_count": self.span_count,
            "metrics": self.metrics.snapshot(),
        }
