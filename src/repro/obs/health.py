"""Live-service health telemetry: heartbeat, SLOs, self-assessment.

The live assessor judges other people's software changes; this module
watches the assessor itself.  Three composable pieces, all off by
default and none of them on the verdict path (with health enabled the
verdict JSONL stays byte-identical to a health-off run):

* **Heartbeat stream** — a :class:`HealthMonitor` attached to a
  :class:`~repro.live.service.LiveAssessmentService` emits one
  structured JSONL record per scheduler tick (virtual time, per-change
  watermark lag, queue depth and sheds, pool fill ratio, verdict-lag
  histogram deltas, degraded/retry counters) through a
  :class:`HeartbeatWriter` — a bounded, non-blocking buffer that drops
  its oldest record (and counts the drop) rather than ever stalling the
  tick on a slow disk.
* **SLO tracking** — declarative :class:`Slo` objectives over heartbeat
  signals, evaluated by an :class:`SloTracker` with classic
  multi-window burn-rate alerting: an alert fires only when *both* a
  fast window (catches sharp regressions quickly) and a slow window
  (filters one-tick blips) exceed their bad-fraction thresholds, and a
  ``resolved`` record is emitted when the burn subsides.
* **Self-assessment** — FUNNEL scoring its host: a
  :class:`SelfAssessor` feeds the assessor's own per-tick KPIs through
  one :class:`~repro.live.detector.IncrementalDetector` per signal, so
  a mid-run fault or config regression shows up as a detected change on
  the service's *own* telemetry.  The default KPI set is restricted to
  signals that are constant in a healthy replay (ingest rate, watermark
  lag, queue depth, sheds); wall-clock tick duration is recorded on the
  heartbeat but excluded from detection, because timer noise would
  trigger false declarations on a fault-free run.

``repro obs health-report <heartbeat.jsonl>`` renders SLO attainment,
burn alerts, lag percentiles over time and self-assessment verdicts
from a recorded stream (:func:`load_heartbeat`,
:func:`build_health_report`, :func:`render_health_report`).
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from .metrics import MetricsRegistry

__all__ = [
    "HEARTBEAT_KIND", "ALERT_KIND", "DETECTION_KIND", "SUMMARY_KIND",
    "HEARTBEAT_DROPPED_METRIC", "VERDICT_LAG_METRIC", "VERDICT_LAG_BUCKETS",
    "DEFAULT_SLOS", "DEFAULT_SELF_KPIS",
    "HeartbeatWriter", "Slo", "SloTracker", "SelfAssessor",
    "HealthConfig", "HealthMonitor",
    "load_heartbeat", "build_health_report", "render_health_report",
]

#: Heartbeat-stream record kinds (one JSON object per line).
HEARTBEAT_KIND = "heartbeat"
ALERT_KIND = "slo_alert"
DETECTION_KIND = "self_detection"
SUMMARY_KIND = "health_summary"

HEARTBEAT_DROPPED_METRIC = "repro_health_heartbeat_dropped_total"

#: Deployment-to-verdict latency histogram, observed by the live
#: assessor on every emission (virtual seconds).  Buckets span five
#: minutes to a day; the live default assessment window is one hour.
VERDICT_LAG_METRIC = "repro_live_verdict_lag_seconds"
VERDICT_LAG_BUCKETS: Tuple[float, ...] = (
    300.0, 600.0, 1200.0, 2400.0, 3600.0, 7200.0,
    14400.0, 28800.0, 86400.0)


# -- the bounded heartbeat writer ---------------------------------------------

class HeartbeatWriter:
    """Bounded, non-blocking JSONL writer for health records.

    :meth:`offer` never touches the filesystem: records accumulate in a
    bounded in-memory ring and reach disk only on :meth:`flush` (the
    monitor flushes every few ticks) or :meth:`close`.  When the ring is
    full the *oldest* buffered record is dropped and counted — a stalled
    disk degrades the telemetry, never the assessment loop.
    """

    def __init__(self, path: str, capacity: int = 512,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.path = path
        self.capacity = max(1, capacity)
        self.metrics = metrics
        self.written = 0
        self.dropped = 0
        self._buffer: Deque[dict] = deque()
        self._fh = None

    def offer(self, doc: dict) -> bool:
        """Buffer one record; returns False when an old one was shed."""
        shed = len(self._buffer) >= self.capacity
        if shed:
            self._buffer.popleft()
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.counter(
                    HEARTBEAT_DROPPED_METRIC,
                    help="Heartbeat records shed by the bounded writer.",
                ).inc()
        self._buffer.append(doc)
        return not shed

    def _open(self):
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
        return self._fh

    def flush(self) -> int:
        """Write every buffered record out; returns how many."""
        if not self._buffer:
            return 0
        fh = self._open()
        n = 0
        while self._buffer:
            fh.write(json.dumps(self._buffer.popleft(), sort_keys=True)
                     + "\n")
            n += 1
        fh.flush()
        self.written += n
        return n

    def close(self) -> None:
        """Flush and close; the file exists even for an empty stream."""
        self._open()
        self.flush()
        self._fh.close()
        self._fh = None


# -- declarative SLOs ---------------------------------------------------------

@dataclass(frozen=True)
class Slo:
    """One objective over a heartbeat signal: ``signal op threshold``.

    A tick is *good* when the signal satisfies the comparison (or is
    not measurable that tick — absence of data is not a violation).
    """

    name: str
    signal: str
    op: str = "<="
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError("Slo op must be '<=' or '>=', got %r"
                             % (self.op,))

    def good(self, value) -> bool:
        if value is None:
            return True
        value = float(value)
        if self.op == "<=":
            return value <= self.threshold
        return value >= self.threshold

    def describe(self) -> str:
        return "%s %s %g" % (self.signal, self.op, self.threshold)


#: Objectives every live replay can be held to out of the box.
DEFAULT_SLOS: Tuple[Slo, ...] = (
    Slo("verdict-lag-p99", "verdict_lag_p99_bins", "<=", 180.0),
    Slo("watermark-lag", "watermark_lag_bins", "<=", 30.0),
    Slo("shed-ratio", "shed_ratio", "<=", 0.05),
    Slo("queue-depth", "queue_depth", "<=", 4096.0),
)


class SloTracker:
    """Sliding-window SLO attainment with multi-window burn alerts.

    Each tick contributes one good/bad bit per objective to a fast and
    a slow sliding window.  An alert *fires* when the fast window is
    full and both windows' bad fractions exceed their burn thresholds
    — the standard multi-window burn-rate rule: the fast window gives
    low detection latency, the slow window keeps a single bad tick from
    paging.  A ``resolved`` event is emitted when the condition clears.
    """

    def __init__(self, slos: Tuple[Slo, ...] = DEFAULT_SLOS,
                 fast_window: int = 12, slow_window: int = 60,
                 fast_burn: float = 0.5, slow_burn: float = 0.2) -> None:
        self.slos = tuple(slos)
        self.fast_window = max(1, fast_window)
        self.slow_window = max(self.fast_window, slow_window)
        self.fast_burn = fast_burn
        self.slow_burn = slow_burn
        self._fast: Dict[str, Deque[int]] = {
            slo.name: deque(maxlen=self.fast_window) for slo in self.slos}
        self._slow: Dict[str, Deque[int]] = {
            slo.name: deque(maxlen=self.slow_window) for slo in self.slos}
        self._good: Dict[str, int] = {slo.name: 0 for slo in self.slos}
        self._bad: Dict[str, int] = {slo.name: 0 for slo in self.slos}
        self._firing: Dict[str, bool] = {slo.name: False
                                         for slo in self.slos}
        self._fired: Dict[str, int] = {slo.name: 0 for slo in self.slos}

    def update(self, tick: int, values: dict) -> List[dict]:
        """Score one tick's signals; returns alert state transitions."""
        events: List[dict] = []
        for slo in self.slos:
            value = values.get(slo.signal)
            bad = 0 if slo.good(value) else 1
            fast = self._fast[slo.name]
            slow = self._slow[slo.name]
            fast.append(bad)
            slow.append(bad)
            if bad:
                self._bad[slo.name] += 1
            else:
                self._good[slo.name] += 1
            fast_frac = sum(fast) / len(fast)
            slow_frac = sum(slow) / len(slow)
            firing = (len(fast) == self.fast_window
                      and fast_frac >= self.fast_burn
                      and slow_frac >= self.slow_burn)
            if firing != self._firing[slo.name]:
                self._firing[slo.name] = firing
                if firing:
                    self._fired[slo.name] += 1
                events.append({
                    "kind": ALERT_KIND,
                    "tick": tick,
                    "slo": slo.name,
                    "objective": slo.describe(),
                    "state": "firing" if firing else "resolved",
                    "value": value,
                    "fast_bad_fraction": round(fast_frac, 4),
                    "slow_bad_fraction": round(slow_frac, 4),
                })
        return events

    def attainment(self) -> dict:
        """Per-objective good/bad tick counts and attainment fraction."""
        out = {}
        for slo in self.slos:
            good = self._good[slo.name]
            bad = self._bad[slo.name]
            total = good + bad
            out[slo.name] = {
                "objective": slo.describe(),
                "good_ticks": good,
                "bad_ticks": bad,
                "attainment": (round(good / total, 4) if total else None),
                "alerts_fired": self._fired[slo.name],
                "firing": self._firing[slo.name],
            }
        return out


# -- FUNNEL on FUNNEL ---------------------------------------------------------

#: Operational KPIs a healthy virtual-time replay holds constant, which
#: is what makes a zero-false-positive self-assessment possible: the
#: robust baseline has zero spread, so *any* operational deviation (an
#: agent outage, a scheduler stall, a shedding storm) is declared, while
#: a fault-free run declares nothing.  Wall-clock signals
#: (``tick_seconds``) are deliberately absent — timer noise is not an
#: incident.
DEFAULT_SELF_KPIS: Tuple[str, ...] = (
    "ingest_fragments", "watermark_lag_bins", "queue_depth",
    "shed_fragments")


class SelfAssessor:
    """The assessor's own KPIs pushed through incremental FUNNEL.

    One :class:`~repro.live.detector.IncrementalDetector` per KPI, one
    sample per scheduler tick.  ``baseline_ticks`` plays the role of
    the change index: the first that many ticks form the robust
    normalisation baseline, and only deviations starting after it are
    reportable — exactly the offline declaration filter.  A smaller
    ``omega`` than the KPI default keeps the detection lag short (the
    scorer needs ``2*omega - 1`` ticks of forward context).
    """

    def __init__(self, kpis: Tuple[str, ...] = DEFAULT_SELF_KPIS,
                 baseline_ticks: int = 60, omega: int = 5,
                 score_chunk: int = 4) -> None:
        # Imported here, not at module level: repro.live imports this
        # module for the verdict-lag metric constants.
        from ..core.funnel import FunnelConfig
        from ..core.rsst import ImprovedSSTParams
        from ..live.detector import IncrementalDetector

        self.baseline_ticks = max(1, baseline_ticks)
        config = FunnelConfig(sst=ImprovedSSTParams(omega=omega))
        self._detectors = {
            kpi: IncrementalDetector(self.baseline_ticks, config,
                                     score_chunk_bins=max(1, score_chunk))
            for kpi in kpis}
        self.detections: List[dict] = []

    def _record(self, kpi: str, declared, tick: int) -> dict:
        return {
            "kind": DETECTION_KIND,
            "kpi": kpi,
            "tick": tick,
            "declared_tick": declared.index,
            "start_tick": declared.start_index,
            "direction": declared.direction,
            "score": round(float(declared.score), 4),
        }

    def observe(self, tick: int, values: dict) -> List[dict]:
        """Feed one tick's KPI values; returns any fresh detections."""
        found: List[dict] = []
        for kpi, detector in self._detectors.items():
            if detector.declared is not None:
                continue
            value = float(values.get(kpi) or 0.0)
            declared = detector.extend(np.asarray([value]))
            if declared is not None:
                found.append(self._record(kpi, declared, tick))
        self.detections.extend(found)
        return found

    def finalize(self, tick: int) -> List[dict]:
        """Flush every detector (end of stream); returns late finds."""
        found: List[dict] = []
        for kpi, detector in self._detectors.items():
            if detector.declared is None:
                declared = detector.flush()
                if declared is not None:
                    found.append(self._record(kpi, declared, tick))
        self.detections.extend(found)
        return found


# -- configuration ------------------------------------------------------------

@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the health telemetry loop (heartbeat, SLOs, self-scan).

    Attributes:
        heartbeat_path: JSONL file the heartbeat stream is written to;
            ``None`` keeps every record in memory only (summary still
            works — useful for tests and benches).
        buffer_records: the :class:`HeartbeatWriter` ring bound.
        flush_every_ticks: ticks between opportunistic writer flushes.
        slos: the declarative objectives to track.
        fast_window / slow_window: burn-rate window lengths, in ticks.
        fast_burn / slow_burn: bad-fraction thresholds per window.
        self_assess: run the FUNNEL-on-FUNNEL loop.
        self_kpis: heartbeat fields fed to the self detectors.
        self_baseline_ticks: normalisation baseline per self detector.
        self_omega: SST window of the self detectors (small = fast).
        self_score_chunk: ticks batched per self scoring call.
    """

    heartbeat_path: Optional[str] = None
    buffer_records: int = 512
    flush_every_ticks: int = 32
    slos: Tuple[Slo, ...] = DEFAULT_SLOS
    fast_window: int = 12
    slow_window: int = 60
    fast_burn: float = 0.5
    slow_burn: float = 0.2
    self_assess: bool = True
    self_kpis: Tuple[str, ...] = DEFAULT_SELF_KPIS
    self_baseline_ticks: int = 60
    self_omega: int = 5
    self_score_chunk: int = 4


# -- the monitor --------------------------------------------------------------

class HealthMonitor:
    """Per-tick health telemetry for one live assessment service.

    Attach to a :class:`~repro.live.service.LiveAssessmentService`
    (its constructor does it when given ``health=``); the event-time
    scheduler then calls :meth:`on_tick` at the end of every tick with
    the tick's wall-clock duration.  Everything here *reads* pipeline
    state — counters, gauges, session watermarks — and writes only to
    its own heartbeat stream, which is what keeps verdict output
    byte-identical with health on or off.
    """

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config or HealthConfig()
        self.writer = (HeartbeatWriter(self.config.heartbeat_path,
                                       self.config.buffer_records)
                       if self.config.heartbeat_path else None)
        self.slo_tracker = SloTracker(
            self.config.slos, fast_window=self.config.fast_window,
            slow_window=self.config.slow_window,
            fast_burn=self.config.fast_burn,
            slow_burn=self.config.slow_burn)
        self.self_assessor = (SelfAssessor(
            self.config.self_kpis,
            baseline_ticks=self.config.self_baseline_ticks,
            omega=self.config.self_omega,
            score_chunk=self.config.self_score_chunk)
            if self.config.self_assess else None)
        self.service = None
        self.metrics: Optional[MetricsRegistry] = None
        self.ticks = 0
        self.alerts: List[dict] = []
        self.heartbeats: List[dict] = []
        self.finalized = False
        self._counter_names: Dict[str, str] = {}
        self._last: Dict[str, float] = {}
        self._last_lag_counts: List[int] = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, service) -> None:
        """Bind to ``service`` and hook the scheduler's tick loop."""
        from ..live.assessor import (DEGRADED_VERDICTS_METRIC,
                                     DUPLICATE_FRAGMENTS_METRIC,
                                     FETCH_FAILURES_METRIC, GAP_BINS_METRIC,
                                     REPAIRED_BINS_METRIC)
        from ..live.queues import FRAGMENTS_METRIC, SHED_FRAGMENTS_METRIC

        self.service = service
        self.metrics = service.metrics
        if self.writer is not None:
            self.writer.metrics = self.metrics
        self._counter_names = {
            "offered_fragments": FRAGMENTS_METRIC,
            "shed_fragments": SHED_FRAGMENTS_METRIC,
            "gap_bins": GAP_BINS_METRIC,
            "repaired_bins": REPAIRED_BINS_METRIC,
            "duplicate_fragments": DUPLICATE_FRAGMENTS_METRIC,
            "fetch_failures": FETCH_FAILURES_METRIC,
            "degraded_verdicts": DEGRADED_VERDICTS_METRIC,
        }
        service.scheduler.health = self

    # -- deltas ---------------------------------------------------------------

    def _total(self, name: str) -> float:
        metric = self.metrics.get(name)
        return float(metric.total()) if metric is not None else 0.0

    def _delta(self, field_name: str, value: float) -> float:
        previous = self._last.get(field_name, 0.0)
        self._last[field_name] = value
        return value - previous

    def _verdict_lag(self, bin_seconds: int) -> dict:
        """Histogram deltas + a cumulative p99, in bins."""
        hist = self.metrics.get(VERDICT_LAG_METRIC)
        counts: List[int] = []
        if hist is not None:
            row = hist.counts.get(())
            if row:
                counts = list(row)
        previous = self._last_lag_counts
        delta = [n - (previous[i] if i < len(previous) else 0)
                 for i, n in enumerate(counts)]
        self._last_lag_counts = counts
        p99 = hist.percentile(99) if hist is not None else None
        return {
            "count": int(sum(delta)),
            "bucket_delta": delta,
            "p99_bins": (round(p99 / bin_seconds, 2)
                         if p99 is not None else None),
        }

    # -- the tick hook --------------------------------------------------------

    def on_tick(self, now: int, tick: int,
                tick_seconds: float = 0.0) -> dict:
        """Record one heartbeat; returns the record (tests peek at it)."""
        service = self.service
        scheduler = service.scheduler
        bin_seconds = max(1, service.store.bin_seconds)
        self.ticks += 1

        watermark_lags: Dict[str, int] = {}
        for change_id in sorted(scheduler.watcher.sessions):
            session = scheduler.watcher.sessions[change_id]
            watermark = session.watermark
            if watermark is not None:
                watermark_lags[change_id] = max(0, now - watermark) \
                    // bin_seconds

        pool = service.assessor.pool
        pool_batches = self._delta(
            "pool_batches", float(pool.batches) if pool else 0.0)
        pool_series = self._delta(
            "pool_series", float(pool.series) if pool else 0.0)

        offered = self._delta("offered_fragments", self._total(
            self._counter_names["offered_fragments"]))
        shed = self._delta("shed_fragments", self._total(
            self._counter_names["shed_fragments"]))
        by_reason = dict(service.bus.published_by_reason)
        verdicts_by_reason = {
            reason: int(self._delta("verdicts_" + reason,
                                    float(count)))
            for reason, count in sorted(by_reason.items())}
        lag = self._verdict_lag(bin_seconds)

        record = {
            "kind": HEARTBEAT_KIND,
            "tick": tick,
            "now": now,
            "tick_seconds": round(tick_seconds, 6),
            "active_changes": len(scheduler.watcher.sessions),
            "queue_depth": scheduler.queue_depth(),
            "peak_queue_depth": scheduler.peak_queue_depth,
            "session_peak_queue_depth": max(
                (s.queues.peak_depth
                 for s in scheduler.watcher.sessions.values()),
                default=0),
            "watermark_lag_bins": max(watermark_lags.values(), default=0),
            "watermark_lags": watermark_lags,
            "ingest_fragments": int(self._delta(
                "ingest_fragments", float(
                    service.store.appended_fragments))),
            "ingest_bins": int(self._delta(
                "ingest_bins", float(service.store.appended_bins))),
            "offered_fragments": int(offered),
            "shed_fragments": int(shed),
            "shed_ratio": round(shed / offered, 4) if offered else 0.0,
            "verdicts": sum(verdicts_by_reason.values()),
            "verdicts_by_reason": verdicts_by_reason,
            "degraded_verdicts": int(self._delta(
                "degraded_verdicts", self._total(
                    self._counter_names["degraded_verdicts"]))),
            "fetch_failures": int(self._delta(
                "fetch_failures", self._total(
                    self._counter_names["fetch_failures"]))),
            "gap_bins": int(self._delta("gap_bins", self._total(
                self._counter_names["gap_bins"]))),
            "repaired_bins": int(self._delta(
                "repaired_bins", self._total(
                    self._counter_names["repaired_bins"]))),
            "duplicate_fragments": int(self._delta(
                "duplicate_fragments", self._total(
                    self._counter_names["duplicate_fragments"]))),
            "pool_batches": int(pool_batches),
            "pool_series": int(pool_series),
            "pool_fill": (round(pool_series / pool_batches, 2)
                          if pool_batches else None),
            "verdict_lag": lag,
            "verdict_lag_p99_bins": lag["p99_bins"],
        }
        if getattr(service, "shard_id", None) is not None:
            # Cluster shard: namespace the stream so merged views never
            # mistake one shard's gauges for the whole fleet's.
            record["shard"] = service.shard_id

        events = self.slo_tracker.update(tick, record)
        self.alerts.extend(events)
        detections = (self.self_assessor.observe(tick, record)
                      if self.self_assessor is not None else [])

        self.heartbeats.append(record)
        if self.writer is not None:
            self.writer.offer(record)
            for doc in events + detections:
                self.writer.offer(doc)
            if self.ticks % max(1, self.config.flush_every_ticks) == 0:
                self.writer.flush()
        return record

    # -- shutdown -------------------------------------------------------------

    def finalize(self, now: Optional[int] = None) -> dict:
        """End of stream: flush self detectors, summarise, close file."""
        if self.finalized:
            return self.summary()
        self.finalized = True
        if self.self_assessor is not None:
            late = self.self_assessor.finalize(self.ticks)
            if self.writer is not None:
                for doc in late:
                    self.writer.offer(doc)
        summary = self.summary()
        if self.writer is not None:
            self.writer.offer(dict(summary, kind=SUMMARY_KIND))
            self.writer.close()
        return summary

    def summary(self) -> dict:
        """Operator summary, embedded in the service ``report()``."""
        detections = (list(self.self_assessor.detections)
                      if self.self_assessor is not None else [])
        shard = getattr(self.service, "shard_id", None)
        return {
            **({"shard": shard} if shard is not None else {}),
            "ticks": self.ticks,
            "slos": self.slo_tracker.attainment(),
            "alerts_fired": sum(1 for a in self.alerts
                                if a["state"] == "firing"),
            "self_detections": [
                {k: v for k, v in d.items() if k != "kind"}
                for d in detections],
            "heartbeat_path": self.config.heartbeat_path,
            "heartbeat_written": (self.writer.written
                                  if self.writer else 0),
            "heartbeat_dropped": (self.writer.dropped
                                  if self.writer else 0),
        }


# -- reading a heartbeat stream back ------------------------------------------

def load_heartbeat(path: str) -> List[dict]:
    """Read a heartbeat JSONL file; corrupt lines are skipped, not fatal
    (a killed run leaves a truncated final line behind)."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict):
                records.append(doc)
    return records


def _sample_over_time(heartbeats: List[dict], points: int = 12
                      ) -> List[dict]:
    """Evenly sampled lag trajectory for the percentiles-over-time view."""
    if not heartbeats:
        return []
    count = min(points, len(heartbeats))
    indices = sorted({round(i * (len(heartbeats) - 1) / max(1, count - 1))
                      for i in range(count)})
    out = []
    for i in indices:
        beat = heartbeats[i]
        out.append({
            "tick": beat.get("tick"),
            "verdict_lag_p99_bins": beat.get("verdict_lag_p99_bins"),
            "watermark_lag_bins": beat.get("watermark_lag_bins"),
            "queue_depth": beat.get("queue_depth"),
        })
    return out


def build_health_report(records: List[dict]) -> dict:
    """The dashboard-ready JSON document behind ``obs health-report``.

    Prefers the stream's own ``health_summary`` record (written at
    finalize); a stream from a killed run lacks one, so SLO attainment
    is then recomputed from the heartbeats under the default objectives.
    """
    heartbeats = [r for r in records if r.get("kind") == HEARTBEAT_KIND]
    alerts = [r for r in records if r.get("kind") == ALERT_KIND]
    detections = [r for r in records if r.get("kind") == DETECTION_KIND]
    summary = None
    for record in records:
        if record.get("kind") == SUMMARY_KIND:
            summary = record

    if summary is not None:
        slos = summary.get("slos", {})
        self_detections = summary.get("self_detections", [])
    else:
        tracker = SloTracker()
        for beat in heartbeats:
            tracker.update(beat.get("tick", 0), beat)
        slos = tracker.attainment()
        self_detections = [{k: v for k, v in d.items() if k != "kind"}
                           for d in detections]

    totals = {
        "verdicts": sum(b.get("verdicts", 0) for b in heartbeats),
        "shed_fragments": sum(b.get("shed_fragments", 0)
                              for b in heartbeats),
        "ingest_fragments": sum(b.get("ingest_fragments", 0)
                                for b in heartbeats),
        "degraded_verdicts": sum(b.get("degraded_verdicts", 0)
                                 for b in heartbeats),
    }
    p99s = [b["verdict_lag_p99_bins"] for b in heartbeats
            if b.get("verdict_lag_p99_bins") is not None]
    return {
        "ticks": len(heartbeats),
        "final_summary_present": summary is not None,
        "slos": slos,
        "alerts": alerts,
        "alerts_fired": sum(1 for a in alerts
                            if a.get("state") == "firing"),
        "self_detections": self_detections,
        "lag_over_time": _sample_over_time(heartbeats),
        "verdict_lag_p99_bins_final": (p99s[-1] if p99s else None),
        "totals": totals,
        "heartbeat_dropped": (summary or {}).get("heartbeat_dropped", 0),
    }


def render_health_report(report: dict) -> str:
    """ASCII rendering of :func:`build_health_report`."""
    lines = []
    lines.append("Live-service health (%d heartbeats%s)"
                 % (report["ticks"],
                    "" if report["final_summary_present"]
                    else ", no final summary — truncated run?"))
    lines.append("")
    lines.append("SLO attainment")
    slos = report.get("slos", {})
    if slos:
        for name in sorted(slos):
            doc = slos[name]
            attainment = doc.get("attainment")
            lines.append(
                "  %-18s %-32s %8s  (%d bad ticks, %d alerts%s)"
                % (name, doc.get("objective", ""),
                   ("%.2f%%" % (100 * attainment)
                    if attainment is not None else "n/a"),
                   doc.get("bad_ticks", 0), doc.get("alerts_fired", 0),
                   ", FIRING" if doc.get("firing") else ""))
    else:
        lines.append("  (none tracked)")
    lines.append("")
    lines.append("Burn alerts: %d fired" % report["alerts_fired"])
    for alert in report.get("alerts", []):
        lines.append("  tick %-6s %-10s %-18s fast=%s slow=%s"
                     % (alert.get("tick"), alert.get("state"),
                        alert.get("slo"),
                        alert.get("fast_bad_fraction"),
                        alert.get("slow_bad_fraction")))
    lines.append("")
    lines.append("Verdict lag p99 over time (bins)")
    for point in report.get("lag_over_time", []):
        lines.append("  tick %-6s p99=%-8s watermark=%-4s depth=%s"
                     % (point.get("tick"),
                        point.get("verdict_lag_p99_bins"),
                        point.get("watermark_lag_bins"),
                        point.get("queue_depth")))
    lines.append("")
    detections = report.get("self_detections", [])
    lines.append("Self-assessment: %d detection%s"
                 % (len(detections),
                    "" if len(detections) == 1 else "s"))
    for doc in detections:
        lines.append(
            "  %-22s declared at tick %-5s (start %s, direction %+d)"
            % (doc.get("kpi"), doc.get("declared_tick"),
               doc.get("start_tick"), doc.get("direction", 0)))
    if report.get("heartbeat_dropped"):
        lines.append("")
        lines.append("WARNING: %d heartbeat records shed by the bounded "
                     "writer" % report["heartbeat_dropped"])
    return "\n".join(lines) + "\n"
