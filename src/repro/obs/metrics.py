"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The registry backs the engine's runtime metrics — jobs assessed per
detector, per-stage latency histograms, fetched bytes, baseline-cache
hits — with two export surfaces:

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict, written into run
  artifacts and merged across process-pool workers
  (:meth:`MetricsRegistry.merge` adds counter values and histogram
  buckets, so per-worker registries fold losslessly into the parent's);
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``text/plain; version=0.0.4``): deterministic ordering, cumulative
  ``le`` buckets, ``_sum``/``_count`` series.

Everything is plain dicts keyed by sorted label tuples; there is no
locking because each process (and each engine run) owns its registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS", "BYTE_BUCKETS"]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): ~0.1 ms to 10 s, log-ish spacing.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default size buckets (bytes): 256 B to 16 MiB, powers of four.
BYTE_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _format_series(name: str, key: LabelKey, value: float,
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if pairs:
        inner = ",".join('%s="%s"' % (k, v.replace("\\", r"\\")
                                      .replace('"', r'\"'))
                         for k, v in pairs)
        return "%s{%s} %s" % (name, inner, _format_value(value))
    return "%s %s" % (name, _format_value(value))


class Counter:
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: Dict[LabelKey, float] = {}

    def inc(self, n: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0) + n

    def value(self, **labels: str) -> float:
        return self.values.get(_label_key(labels), 0)

    def total(self) -> float:
        return sum(self.values.values())


class Gauge:
    """A point-in-time value (queue depth, in-flight batches)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self.values[_label_key(labels)] = value

    def inc(self, n: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0) + n

    def dec(self, n: float = 1, **labels: str) -> None:
        self.inc(-n, **labels)

    def value(self, **labels: str) -> float:
        return self.values.get(_label_key(labels), 0)


class Histogram:
    """Fixed-bucket histogram with per-label-set cumulative exposition.

    ``buckets`` are upper bounds, strictly increasing; an implicit
    ``+Inf`` bucket always exists.  Internally counts are stored
    per-bucket (non-cumulative) so merging worker snapshots is a plain
    element-wise add; exposition cumulates on the way out, as the
    Prometheus format requires.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ValueError(
                "histogram buckets must be non-empty and strictly "
                "increasing: %r" % (buckets,))
        self.name = name
        self.help = help
        self.buckets = bounds
        #: label key -> [per-bucket counts..., overflow count]
        self.counts: Dict[LabelKey, List[int]] = {}
        self.sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        row = self.counts.get(key)
        if row is None:
            row = [0] * (len(self.buckets) + 1)
            self.counts[key] = row
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        row[index] += 1
        self.sums[key] = self.sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        row = self.counts.get(_label_key(labels))
        return sum(row) if row else 0

    def total_count(self) -> int:
        return sum(sum(row) for row in self.counts.values())

    def percentile(self, q: float, **labels: str) -> Optional[float]:
        """Estimate the ``q``-th percentile from the bucket counts.

        Linear interpolation within the bucket holding the target rank:
        observations inside a bucket are assumed uniform between the
        previous bound and the bucket's own upper bound (the first
        bucket interpolates from ``min(0, buckets[0])``).  The estimate
        is exact at bucket boundaries and never worse than one bucket
        width off; overflow observations clamp to the top finite bound,
        which *understates* the tail — pick buckets that cover it.
        Returns ``None`` when nothing was observed for the label set.
        """
        row = self.counts.get(_label_key(labels))
        total = sum(row) if row else 0
        if not total:
            return None
        rank = (q / 100.0) * total
        cumulative = 0.0
        lower = min(0.0, self.buckets[0])
        for bound, n in zip(self.buckets, row):
            if n and cumulative + n >= rank:
                fraction = min(1.0, max(0.0, (rank - cumulative) / n))
                return lower + (bound - lower) * fraction
            cumulative += n
            lower = bound
        return self.buckets[-1]


class MetricsRegistry:
    """Named metrics for one run (or one worker's share of one run)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, **kwargs) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError("metric %r already registered as %s"
                             % (name, metric.kind))
        return metric

    def get(self, name: str) -> Optional[object]:
        """Peek at a metric without creating it (``None`` if absent)."""
        return self._metrics.get(name)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric, labels flattened to dicts."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = {
                    "help": metric.help,
                    "values": [{"labels": dict(key), "value": value}
                               for key, value
                               in sorted(metric.values.items())],
                }
            elif isinstance(metric, Gauge):
                out["gauges"][name] = {
                    "help": metric.help,
                    "values": [{"labels": dict(key), "value": value}
                               for key, value
                               in sorted(metric.values.items())],
                }
            else:
                out["histograms"][name] = {
                    "help": metric.help,
                    "buckets": list(metric.buckets),
                    "values": [{"labels": dict(key),
                                "counts": list(metric.counts[key]),
                                "sum": metric.sums.get(key, 0.0),
                                "count": sum(metric.counts[key])}
                               for key in sorted(metric.counts)],
                }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry: counters and histogram buckets add, gauges keep the
        maximum observed value."""
        for name, doc in snapshot.get("counters", {}).items():
            counter = self.counter(name, help=doc.get("help", ""))
            for entry in doc["values"]:
                counter.inc(entry["value"], **entry["labels"])
        for name, doc in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, help=doc.get("help", ""))
            for entry in doc["values"]:
                key = _label_key(entry["labels"])
                gauge.values[key] = max(gauge.values.get(key,
                                                         float("-inf")),
                                        entry["value"])
        for name, doc in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, help=doc.get("help", ""),
                                  buckets=doc["buckets"])
            if list(hist.buckets) != [float(b) for b in doc["buckets"]]:
                raise ValueError(
                    "histogram %r bucket mismatch on merge" % name)
            for entry in doc["values"]:
                key = _label_key(entry["labels"])
                row = hist.counts.get(key)
                if row is None:
                    row = [0] * (len(hist.buckets) + 1)
                    hist.counts[key] = row
                for i, n in enumerate(entry["counts"]):
                    row[i] += n
                hist.sums[key] = hist.sums.get(key, 0.0) + entry["sum"]

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every metric, sorted by name."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append("# HELP %s %s" % (name, metric.help))
            lines.append("# TYPE %s %s" % (name, metric.kind))
            if isinstance(metric, (Counter, Gauge)):
                for key in sorted(metric.values):
                    lines.append(_format_series(name, key,
                                                metric.values[key]))
            else:
                for key in sorted(metric.counts):
                    cumulative = 0
                    for bound, n in zip(metric.buckets,
                                        metric.counts[key]):
                        cumulative += n
                        lines.append(_format_series(
                            name + "_bucket", key, cumulative,
                            extra=("le", _format_value(bound))))
                    cumulative += metric.counts[key][-1]
                    lines.append(_format_series(
                        name + "_bucket", key, cumulative,
                        extra=("le", "+Inf")))
                    lines.append(_format_series(
                        name + "_sum", key, metric.sums.get(key, 0.0)))
                    lines.append(_format_series(
                        name + "_count", key, cumulative))
        return "\n".join(lines) + ("\n" if lines else "")
