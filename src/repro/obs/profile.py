"""The stage profiler: span trees -> breakdown tables and folded stacks.

Consumes :class:`~repro.obs.tracing.SpanRecord` rows — live from an
:class:`~repro.obs.context.ObsContext` or loaded back from run
artifacts — and aggregates them by *path* (the chain of span names from
the root, e.g. ``execute > batch > job > detect``).  Per path it
reports calls, total wall-clock, and **self** time (total minus the
time covered by child spans), which is what separates "the executor is
slow" from "the detectors it runs are slow".

Also derives the per-detector view (detect/attribute latency split by
the ``detector`` span attribute), the top-N slowest job spans, and a
``folded`` flamegraph export — one ``path;leaf count`` line per stack,
the format ``flamegraph.pl`` and speedscope ingest directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .tracing import SpanRecord

__all__ = ["PathStats", "StageProfile", "build_profile", "render_table",
           "folded_stacks"]


@dataclass
class PathStats:
    """Aggregate timing for every span sharing one root-to-name path."""

    path: Tuple[str, ...]
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    def as_dict(self) -> dict:
        return {"path": list(self.path), "calls": self.calls,
                "total_s": round(self.total_s, 6),
                "self_s": round(self.self_s, 6)}


@dataclass
class StageProfile:
    """The full profile of one run's span set."""

    paths: List[PathStats] = field(default_factory=list)
    detectors: Dict[str, dict] = field(default_factory=dict)
    slowest_jobs: List[dict] = field(default_factory=list)
    span_count: int = 0

    def path(self, *names: str) -> Optional[PathStats]:
        for stats in self.paths:
            if stats.path == names:
                return stats
        return None


def _children_index(spans: Sequence[SpanRecord]
                    ) -> Dict[Optional[str], List[SpanRecord]]:
    by_parent: Dict[Optional[str], List[SpanRecord]] = {}
    known = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in known else None
        by_parent.setdefault(parent, []).append(span)
    return by_parent


def build_profile(spans: Sequence[SpanRecord],
                  top_jobs: int = 10) -> StageProfile:
    """Aggregate a span set into a :class:`StageProfile`.

    Orphan spans (parent never exported — e.g. a truncated artifact
    log) are treated as roots rather than dropped, so a partial log
    still profiles.
    """
    profile = StageProfile(span_count=len(spans))
    by_parent = _children_index(spans)
    stats_by_path: Dict[Tuple[str, ...], PathStats] = {}

    def visit(span: SpanRecord, prefix: Tuple[str, ...]) -> None:
        path = prefix + (span.name,)
        stats = stats_by_path.get(path)
        if stats is None:
            stats = stats_by_path[path] = PathStats(path=path)
            profile.paths.append(stats)
        children = by_parent.get(span.span_id, ())
        child_time = sum(c.duration_s for c in children)
        stats.calls += 1
        stats.total_s += span.duration_s
        stats.self_s += max(0.0, span.duration_s - child_time)
        for child in children:
            visit(child, path)

    for root in by_parent.get(None, ()):
        visit(root, ())

    _profile_detectors(spans, profile)
    _profile_slowest(spans, profile, top_jobs)
    return profile


def _profile_detectors(spans: Sequence[SpanRecord],
                       profile: StageProfile) -> None:
    for span in spans:
        detector = span.attr("detector")
        if detector is None:
            continue
        row = profile.detectors.setdefault(str(detector), {
            "jobs": 0, "job_s": 0.0, "stages": {}})
        if span.name == "job":
            row["jobs"] += 1
            row["job_s"] += span.duration_s
        else:
            stage = row["stages"].setdefault(span.name,
                                             {"calls": 0, "total_s": 0.0})
            stage["calls"] += 1
            stage["total_s"] += span.duration_s


def _profile_slowest(spans: Sequence[SpanRecord], profile: StageProfile,
                     top_jobs: int) -> None:
    jobs = [s for s in spans if s.name == "job"]
    jobs.sort(key=lambda s: (-s.duration_s, s.span_id))
    profile.slowest_jobs = [
        {
            "job_id": span.attr("job_id"),
            "detector": span.attr("detector"),
            "entity": span.attr("entity") or "",
            "metric": span.attr("metric") or "",
            "seconds": round(span.duration_s, 6),
        }
        for span in jobs[:top_jobs]
    ]


# -- rendering ---------------------------------------------------------------

def _fmt_seconds(value: float) -> str:
    return "%10.4f" % value


def render_table(profile: StageProfile) -> str:
    """The ``repro obs report`` ASCII breakdown."""
    lines: List[str] = []
    lines.append("Stage breakdown (%d spans)" % profile.span_count)
    lines.append("%-34s %7s %10s %10s" % ("stage", "calls", "total_s",
                                          "self_s"))
    ordered = _tree_order(profile.paths)
    for stats in ordered:
        label = "  " * stats.depth + stats.name
        lines.append("%-34s %7d %s %s" % (
            label[:34], stats.calls, _fmt_seconds(stats.total_s),
            _fmt_seconds(stats.self_s)))

    if profile.detectors:
        lines.append("")
        lines.append("Per-detector")
        lines.append("%-14s %7s %10s %10s %10s" % (
            "detector", "jobs", "job_s", "detect_s", "attrib_s"))
        for name in sorted(profile.detectors):
            row = profile.detectors[name]
            detect = row["stages"].get("detect", {}).get("total_s", 0.0)
            attribute = row["stages"].get("attribute",
                                          {}).get("total_s", 0.0)
            lines.append("%-14s %7d %s %s %s" % (
                name, row["jobs"], _fmt_seconds(row["job_s"]),
                _fmt_seconds(detect), _fmt_seconds(attribute)))

    if profile.slowest_jobs:
        lines.append("")
        lines.append("Slowest jobs")
        lines.append("%8s %-14s %-22s %-24s %10s" % (
            "job_id", "detector", "entity", "metric", "seconds"))
        for row in profile.slowest_jobs:
            lines.append("%8s %-14s %-22s %-24s %10.4f" % (
                row["job_id"], row["detector"], row["entity"][:22],
                row["metric"][:24], row["seconds"]))
    return "\n".join(lines) + "\n"


def _tree_order(paths: List[PathStats]) -> List[PathStats]:
    """Depth-first order, siblings sorted by total time descending."""
    by_prefix: Dict[Tuple[str, ...], List[PathStats]] = {}
    for stats in paths:
        by_prefix.setdefault(stats.path[:-1], []).append(stats)
    ordered: List[PathStats] = []

    def emit(prefix: Tuple[str, ...]) -> None:
        for stats in sorted(by_prefix.get(prefix, ()),
                            key=lambda s: (-s.total_s, s.path)):
            ordered.append(stats)
            emit(stats.path)

    emit(())
    return ordered


def folded_stacks(profile: StageProfile,
                  scale: float = 1_000_000.0) -> List[str]:
    """Flamegraph ``folded`` lines: ``a;b;c <self-time>`` per path.

    Self time is scaled to integer microseconds by default; zero-weight
    paths are kept (weight 0 lines are legal and preserve structure).
    """
    lines = []
    for stats in sorted(profile.paths, key=lambda s: s.path):
        lines.append("%s %d" % (";".join(stats.path),
                                int(round(stats.self_s * scale))))
    return lines
