"""Structured tracing: spans with monotonic timings and explicit context.

A :class:`Span` covers one timed operation (an engine stage, one batch,
one job).  Spans form a tree through parent ids; the tree for one run
shares a ``trace_id``.  Finished spans are frozen into picklable
:class:`SpanRecord` rows, which is how telemetry crosses the process
pool boundary: a worker builds its own :class:`Tracer` around a
:class:`RemoteContext` (the parent span's identity, shipped with the
batch), records spans locally, and the parent process *adopts* the
serialized records — they arrive already parented under the submitting
span, so the assembled tree looks exactly as if the work had run inline.

Durations come from ``time.perf_counter`` (monotonic); the wall-clock
``start_unix`` is carried only so artifact logs can be ordered across
processes.
"""

from __future__ import annotations

import os
import struct
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["SpanRecord", "Span", "RemoteContext", "Tracer",
           "new_trace_id", "new_span_id"]

_ID_COUNTER = [0]


def _rand_hex(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return _rand_hex(8)


def new_span_id() -> str:
    """A fresh 12-hex-digit span id, unique across processes.

    Combines the pid (so two pool workers can never collide) with a
    process-local counter and two random bytes.
    """
    _ID_COUNTER[0] += 1
    return struct.pack(">HI", os.getpid() & 0xFFFF,
                       _ID_COUNTER[0] & 0xFFFFFFFF).hex() + _rand_hex(2)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span — frozen, picklable, JSON-safe.

    ``attrs`` is a sorted tuple of ``(key, value)`` pairs with
    JSON-scalar values only.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_unix: float
    duration_s: float
    attrs: Tuple[Tuple[str, object], ...] = ()

    def attr(self, key: str, default: object = None) -> object:
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": round(self.start_unix, 6),
            "duration_s": round(self.duration_s, 9),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SpanRecord":
        return cls(
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            parent_id=doc.get("parent_id"),
            name=doc["name"],
            start_unix=float(doc.get("start_unix", 0.0)),
            duration_s=float(doc["duration_s"]),
            attrs=tuple(sorted(doc.get("attrs", {}).items())),
        )


@dataclass(frozen=True)
class RemoteContext:
    """A parent span's identity, shipped across the process boundary.

    A worker-side tracer built from a remote context parents its
    top-level spans under ``parent_id`` within ``trace_id``, so the
    records it exports slot straight into the parent process's tree.
    """

    trace_id: str
    parent_id: Optional[str] = None


@dataclass
class Span:
    """A live (not yet finished) span.  Use via :meth:`Tracer.span`."""

    tracer: "Tracer"
    span_id: str
    parent_id: Optional[str]
    name: str
    start_unix: float = field(default=0.0)
    _started: float = field(default=0.0)
    _attrs: Dict[str, object] = field(default_factory=dict)

    def set_attr(self, key: str, value: object) -> None:
        self._attrs[key] = value

    def _finish(self) -> SpanRecord:
        return SpanRecord(
            trace_id=self.tracer.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_unix=self.start_unix,
            duration_s=time.perf_counter() - self._started,
            attrs=tuple(sorted(self._attrs.items())),
        )


class Tracer:
    """Builds one process's portion of a run's span tree.

    The tracer keeps an explicit stack of active spans — no thread
    locals, no globals — so context propagation is always visible in
    the code that does it.  ``remote`` supplies the cross-process
    parent; :meth:`export` hands the finished records to whoever owns
    the root tracer, and :meth:`adopt` merges records exported
    elsewhere.
    """

    def __init__(self, remote: Optional[RemoteContext] = None) -> None:
        if remote is not None:
            self.trace_id = remote.trace_id
            self._remote_parent = remote.parent_id
        else:
            self.trace_id = new_trace_id()
            self._remote_parent = None
        self._stack: List[Span] = []
        self.finished: List[SpanRecord] = []

    # -- recording -----------------------------------------------------------

    @property
    def current_span_id(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        return self._remote_parent

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child span of the current one, closing it on exit."""
        live = Span(tracer=self, span_id=new_span_id(),
                    parent_id=self.current_span_id, name=name,
                    start_unix=time.time(), _started=time.perf_counter(),
                    _attrs=dict(attrs))
        self._stack.append(live)
        try:
            yield live
        finally:
            self._stack.pop()
            self.finished.append(live._finish())

    def record(self, name: str, duration_s: float,
               parent_id: Optional[str] = None,
               start_unix: Optional[float] = None,
               **attrs: object) -> SpanRecord:
        """Append an already-measured span (e.g. a detector's timing).

        Defaults the parent to the current active span; pass
        ``parent_id`` to attach under a specific one.
        """
        rec = SpanRecord(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=parent_id if parent_id is not None
            else self.current_span_id,
            name=name,
            start_unix=time.time() if start_unix is None else start_unix,
            duration_s=duration_s,
            attrs=tuple(sorted(attrs.items())),
        )
        self.finished.append(rec)
        return rec

    # -- cross-process assembly ----------------------------------------------

    def export(self) -> Tuple[SpanRecord, ...]:
        """The finished records, for shipping back to the root tracer."""
        return tuple(self.finished)

    def adopt(self, records: Iterable[SpanRecord]) -> int:
        """Merge records exported by another (worker) tracer.

        Records parented via a :class:`RemoteContext` already point at
        this tracer's spans; foreign trace ids are rewritten so the
        assembled tree stays one trace.  Returns the number adopted.
        """
        count = 0
        for rec in records:
            if rec.trace_id != self.trace_id:
                rec = SpanRecord(
                    trace_id=self.trace_id, span_id=rec.span_id,
                    parent_id=rec.parent_id, name=rec.name,
                    start_unix=rec.start_unix, duration_s=rec.duration_s,
                    attrs=rec.attrs)
            self.finished.append(rec)
            count += 1
        return count

    def remote_context(self) -> RemoteContext:
        """The context a worker needs to parent its spans under us."""
        return RemoteContext(trace_id=self.trace_id,
                             parent_id=self.current_span_id)
