"""End-to-end simulations: scenarios, the deployment week, case studies."""

from .cases import (AdvertisingCaseResult, RedisCaseResult,
                    advertising_case, redis_case)
from .clock import SimulationClock
from .deployment import (DeploymentReport, DeploymentSpec, simulate_week)
from .scenario import ChangeAssessment, KpiBehaviour, ServiceScenario

__all__ = ["AdvertisingCaseResult", "RedisCaseResult", "advertising_case",
           "redis_case", "SimulationClock", "DeploymentReport",
           "DeploymentSpec", "simulate_week", "ChangeAssessment",
           "KpiBehaviour", "ServiceScenario"]
