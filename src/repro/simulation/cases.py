"""The two operational case studies — paper section 5, Figs. 6 and 7.

**Redis load balancing (section 5.1, Fig. 6).**  A configuration change
in the Redis query service rebalanced traffic from the saturated
class A servers to the underused class B servers: FUNNEL determined that
16 of the 118 KPIs in the impact set changed — NIC throughput shifted
*down* on class A and *up* on class B — validating the expected outcome
despite NIC throughput's strong natural variability.

**Advertising anti-cheat incident (section 5.2, Fig. 7).**  A software
upgrade broke the anti-cheating JSON check on iPhone browsers, so every
iPhone click was classified as a cheat: the (strongly seasonal)
effective-click count dropped sharply at the upgrade and recovered
1.5 hours later when the operations team fixed it.  FUNNEL detected the
change within ~10 minutes; manual assessment had taken 1.5 hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.funnel import Funnel, FunnelConfig
from ..synthetic.effects import LevelShift, TransientDip
from ..synthetic.patterns import SeasonalPattern, VariablePattern
from ..telemetry.timeseries import DAY, MINUTE
from ..types import Assessment

__all__ = ["RedisCaseResult", "redis_case", "AdvertisingCaseResult",
           "advertising_case"]


@dataclass(frozen=True)
class RedisCaseResult:
    """Everything the Fig. 6 bench needs."""

    class_a_example: np.ndarray
    class_b_example: np.ndarray
    change_index: int
    flagged: Tuple[str, ...]
    directions: Dict[str, int]
    total_kpis: int

    @property
    def flagged_count(self) -> int:
        return len(self.flagged)


def redis_case(n_class_a: int = 8, n_class_b: int = 8,
               n_unaffected_kpis: int = 102, pre_minutes: int = 240,
               post_minutes: int = 240, shift_fraction: float = 0.35,
               seed: int = 42,
               funnel_config: Optional[FunnelConfig] = None) -> RedisCaseResult:
    """Reproduce the Redis load-balancing case (Fig. 6).

    Builds an impact set of ``n_class_a + n_class_b + n_unaffected``
    KPIs (118 with the defaults, matching the paper).  The configuration
    change moves ``shift_fraction`` of class A's NIC throughput over to
    class B at ``pre_minutes``; the change is applied to the whole
    service at once, so FUNNEL uses the 30-day historical control.
    """
    rng = np.random.default_rng(seed)
    funnel = Funnel(funnel_config)
    n_bins = pre_minutes + post_minutes
    change_index = pre_minutes
    start = 100 * DAY + 10 * 3600            # mid-morning, a weekday

    flagged: List[str] = []
    directions: Dict[str, int] = {}
    example_a: Optional[np.ndarray] = None
    example_b: Optional[np.ndarray] = None

    def history_for(pattern, extra_effects=()):
        rows = []
        for day in range(1, 31):
            ts = (start - day * DAY
                  + np.arange(n_bins, dtype=np.int64) * MINUTE)
            rows.append(pattern.sample(ts, rng))
        return np.vstack(rows)

    timestamps = start + np.arange(n_bins, dtype=np.int64) * MINUTE

    def assess_server(name: str, busy: bool, shift: float) -> None:
        nonlocal example_a, example_b
        level = 90.0 if busy else 30.0        # class A NICs run near capacity
        pattern = VariablePattern(level=level, lognormal_sigma=0.12,
                                  spike_rate=0.01, spike_magnitude=0.8)
        series = pattern.sample(timestamps, rng)
        if shift:
            series = LevelShift(start=change_index,
                                magnitude=shift).apply(series)
        history = history_for(pattern)
        result = funnel.assess(series, change_index, history=history)
        if result.positive:
            flagged.append(name)
            directions[name] = result.change.direction
        if busy and example_a is None and shift:
            example_a = series
        if not busy and example_b is None and shift:
            example_b = series

    shift_amount = shift_fraction * 90.0
    for i in range(n_class_a):
        assess_server("redis-a-%02d:nic_throughput" % i, busy=True,
                      shift=-shift_amount)
    for i in range(n_class_b):
        assess_server("redis-b-%02d:nic_throughput" % i, busy=False,
                      shift=+shift_amount)

    # The remaining KPIs of the impact set (CPU, memory, latency of the
    # query instances...) are unaffected by the rebalancing.
    for i in range(n_unaffected_kpis):
        pattern = VariablePattern(
            level=float(rng.uniform(20.0, 80.0)),
            lognormal_sigma=0.15, spike_rate=0.01, spike_magnitude=1.0,
        )
        series = pattern.sample(timestamps, rng)
        history = history_for(pattern)
        result = funnel.assess(series, change_index, history=history)
        if result.positive:
            flagged.append("redis-other-%03d" % i)
            directions["redis-other-%03d" % i] = result.change.direction

    return RedisCaseResult(
        class_a_example=example_a,
        class_b_example=example_b,
        change_index=change_index,
        flagged=tuple(flagged),
        directions=directions,
        total_kpis=n_class_a + n_class_b + n_unaffected_kpis,
    )


@dataclass(frozen=True)
class AdvertisingCaseResult:
    """Everything the Fig. 7 bench needs."""

    clicks: np.ndarray
    change_index: int
    recovery_index: int
    assessment: Assessment
    detection_delay_minutes: Optional[int]
    manual_delay_minutes: int = 90

    @property
    def detected_within_10_minutes(self) -> bool:
        return (self.detection_delay_minutes is not None
                and self.detection_delay_minutes <= 10)


def advertising_case(days_of_context: int = 6, drop_fraction: float = 0.6,
                     outage_minutes: int = 90, seed: int = 7,
                     funnel_config: Optional[FunnelConfig] = None
                     ) -> AdvertisingCaseResult:
    """Reproduce the advertising anti-cheat incident (Fig. 7).

    Generates ``days_of_context`` days of the strongly seasonal
    effective-clicks KPI, drops it by ``drop_fraction`` at a mid-day
    software upgrade, recovers it ``outage_minutes`` later (the manual
    fix), and runs FUNNEL with the 30-day historical control.
    """
    rng = np.random.default_rng(seed)
    if funnel_config is None:
        # Advertising is a change-sensitive service: the paper's
        # quick-mitigation configuration (section 3.2.3) uses omega = 5,
        # which is what lets FUNNEL beat the 10-minute mark here.
        from ..core.rsst import ImprovedSSTParams
        funnel_config = FunnelConfig(sst=ImprovedSSTParams(omega=5))
    funnel = Funnel(funnel_config)
    pattern = SeasonalPattern(
        base=1000.0, daily_amplitude=0.65, noise_sigma=18.0,
        weekend_factor=0.9,
        daily_events=((11 * 3600, 13 * 3600, 0.25),),
    )

    upgrade_day_start = 200 * DAY
    upgrade_second = 14 * 3600 + 23 * MINUTE         # 14:23, near peak
    series_start = upgrade_day_start - (days_of_context - 1) * DAY
    total_bins = days_of_context * DAY // MINUTE
    timestamps = series_start + np.arange(total_bins, dtype=np.int64) * MINUTE
    clicks = pattern.sample(timestamps, rng)

    change_index = (upgrade_day_start + upgrade_second - series_start) \
        // MINUTE
    drop = drop_fraction * pattern.profile(
        [upgrade_day_start + upgrade_second])[0]
    clicks = TransientDip(start=change_index, magnitude=drop,
                          duration=outage_minutes).apply(clicks)

    history = np.vstack([
        pattern.sample(
            np.asarray(timestamps[change_index - 120:change_index + 120])
            - day * DAY, rng)
        for day in range(1, 31)
    ])
    window = clicks[change_index - 120:change_index + 120]
    assessment = funnel.assess(window, 120, history=history)

    delay = None
    if assessment.change is not None:
        delay = assessment.change.index - 120

    return AdvertisingCaseResult(
        clicks=clicks,
        change_index=change_index,
        recovery_index=change_index + outage_minutes,
        assessment=assessment,
        detection_delay_minutes=delay,
    )
