"""A simulation clock quantised to collection bins.

All simulation time is integer seconds from an arbitrary epoch; the
clock advances in whole collection intervals (1 minute by default,
matching the paper's data collection interval) and hands out the bin
boundaries the agents and the deployment simulation synchronise on.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..telemetry.timeseries import DAY, MINUTE

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonic bin-aligned clock.

    Example:
        >>> clock = SimulationClock(start=0)
        >>> clock.tick()
        60
        >>> clock.now
        60
        >>> clock.advance_minutes(10)
        660
    """

    def __init__(self, start: int = 0, bin_seconds: int = MINUTE) -> None:
        if bin_seconds <= 0:
            raise ParameterError("bin_seconds must be positive")
        if start % bin_seconds:
            raise ParameterError(
                "start %d is not aligned to %d-second bins"
                % (start, bin_seconds)
            )
        self._now = start
        self.bin_seconds = bin_seconds

    @property
    def now(self) -> int:
        return self._now

    @property
    def day_second(self) -> int:
        """Seconds since local midnight (drives seasonal phase)."""
        return self._now % DAY

    def tick(self) -> int:
        """Advance one collection bin; returns the new time."""
        self._now += self.bin_seconds
        return self._now

    def advance_minutes(self, minutes: int) -> int:
        if minutes < 0:
            raise ParameterError("cannot advance a negative duration")
        self._now += minutes * MINUTE
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Jump forward to a bin-aligned timestamp."""
        if timestamp < self._now:
            raise ParameterError(
                "cannot move the clock backwards (%d < %d)"
                % (timestamp, self._now)
            )
        if (timestamp - self._now) % self.bin_seconds:
            raise ParameterError(
                "target %d is not bin-aligned from %d" % (timestamp, self._now)
            )
        self._now = timestamp
        return self._now
