"""One-week online deployment simulation — paper section 5 and Table 3.

The deployed FUNNEL prototype watched a few dozen services: 24119
software changes per day, 268 of which had real impact, 2.26 million
KPIs monitored, ~10 thousand KPI changes detected per day, and a 98.21%
precision over the week (the operations team verified only the
*detections* — labelling every KPI was prohibitive, so recall was not
measured; we keep the same protocol but, having exact ground truth, also
report the recall the paper could not).

The simulation reuses the corpus generator's per-item machinery: each
simulated change owns a batch of monitored KPIs with the section 4.1
type mix; impactful changes inject genuine effects on a subset of their
KPIs.  The ``scale`` knob shrinks the day to keep the bench tractable —
rates (precision, detections per KPI) are scale-free.

Assessment runs through the batched engine (:mod:`repro.engine`): each
day's KPI stream is planned into assessment jobs and executed in
chunks, serially by default or across process workers — the counters
are bit-identical either way.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.funnel import FunnelConfig
from ..engine import (EngineConfig, Instrumentation, ObsContext,
                      execute_jobs, job_from_item, spec_for_method)
from ..exceptions import ParameterError
from ..synthetic.dataset import CorpusSpec, EvaluationCorpus

__all__ = ["DeploymentSpec", "DeploymentDay", "DeploymentReport",
           "simulate_week"]

#: Paper Table 3 daily statistics, used as the scale-1.0 targets.
PAPER_DAILY_CHANGES = 24119
PAPER_DAILY_IMPACTFUL = 268
PAPER_DAILY_KPIS = 2_256_390


@dataclass(frozen=True)
class DeploymentSpec:
    """Parameters of the simulated deployment week.

    ``scale`` multiplies the paper's daily volumes; the default keeps a
    single day at ~a hundred changes so the whole week runs in minutes.
    """

    scale: float = 0.004
    days: int = 7
    impact_rate: float = PAPER_DAILY_IMPACTFUL / PAPER_DAILY_CHANGES
    kpis_per_change: float = PAPER_DAILY_KPIS / PAPER_DAILY_CHANGES
    impacted_kpi_fraction: float = 0.12
    seed: int = 5

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ParameterError("scale must be in (0, 1]")
        if self.days < 1:
            raise ParameterError("days must be >= 1")
        if not 0.0 < self.impact_rate < 1.0:
            raise ParameterError("impact_rate must be in (0, 1)")

    @property
    def changes_per_day(self) -> int:
        return max(10, int(round(PAPER_DAILY_CHANGES * self.scale)))


@dataclass
class DeploymentDay:
    """Counters for one simulated day (one Table 3 row)."""

    day: int
    changes: int = 0
    impactful_changes: int = 0
    kpis: int = 0
    detections: int = 0
    true_detections: int = 0
    missed_impacted_kpis: int = 0

    @property
    def precision(self) -> float:
        if self.detections == 0:
            return float("nan")
        return self.true_detections / self.detections

    @property
    def recall(self) -> float:
        total_true = self.true_detections + self.missed_impacted_kpis
        if total_true == 0:
            return float("nan")
        return self.true_detections / total_true


@dataclass
class DeploymentReport:
    """Aggregated week: the Table 3 numbers plus the recall the paper
    could not measure."""

    days: List[DeploymentDay] = field(default_factory=list)

    def _total(self, attr: str) -> int:
        return sum(getattr(d, attr) for d in self.days)

    @property
    def daily_changes(self) -> float:
        return self._total("changes") / max(len(self.days), 1)

    @property
    def daily_impactful(self) -> float:
        return self._total("impactful_changes") / max(len(self.days), 1)

    @property
    def daily_kpis(self) -> float:
        return self._total("kpis") / max(len(self.days), 1)

    @property
    def daily_detections(self) -> float:
        return self._total("detections") / max(len(self.days), 1)

    @property
    def precision(self) -> float:
        detections = self._total("detections")
        if detections == 0:
            return float("nan")
        return self._total("true_detections") / detections

    @property
    def recall(self) -> float:
        total_true = (self._total("true_detections")
                      + self._total("missed_impacted_kpis"))
        if total_true == 0:
            return float("nan")
        return self._total("true_detections") / total_true

    def as_table3_row(self) -> Dict[str, float]:
        return {
            "software_changes_per_day": self.daily_changes,
            "impactful_changes_per_day": self.daily_impactful,
            "kpis_per_day": self.daily_kpis,
            "kpi_changes_per_day": self.daily_detections,
            "precision": self.precision,
            "recall": self.recall,
        }


def _day_corpus(spec: DeploymentSpec, day: int) -> EvaluationCorpus:
    """A corpus whose composition mirrors one deployment day.

    The section 4.1 generator already produces the right item mix; the
    deployment day differs only in class balance — the vast majority of
    changes (and their KPIs) carry no effect — which we obtain by
    shrinking the positive count through the corpus scale and treating
    the 'clean factor' as 1 (no x86 synthesis here: every item is real).
    """
    n_kpis = int(spec.changes_per_day * spec.kpis_per_change)
    corpus_scale = min(1.0, n_kpis / 9982.0)
    impactful = max(1, int(round(spec.changes_per_day * spec.impact_rate)))
    return EvaluationCorpus(CorpusSpec(
        scale=corpus_scale,
        n_changes=max(2, impactful),
        seed=spec.seed + 1013 * day,
    ))


def simulate_week(spec: Optional[DeploymentSpec] = None,
                  funnel_config: Optional[FunnelConfig] = None,
                  progress=None, workers: int = 0, batch_size: int = 16,
                  instrumentation: Optional[Instrumentation] = None,
                  obs: Optional[ObsContext] = None) -> DeploymentReport:
    """Run FUNNEL online over a simulated deployment week.

    Each day's KPI stream goes through the batched assessment engine;
    ``workers`` > 0 fans the day out over a process pool with counters
    bit-identical to the serial default.  ``instrumentation`` receives
    the engine's per-stage timings across the whole week; ``obs``
    (an :class:`~repro.obs.ObsContext`) additionally collects the
    week's spans and metrics — one ``day`` span per simulated day with
    the engine's execute/batch/job tree underneath.
    """
    spec = spec or DeploymentSpec()
    detector = spec_for_method("funnel", funnel_config=funnel_config)
    config = EngineConfig(workers=workers, batch_size=batch_size)
    chunk_size = config.batch_size * max(config.workers, 1) * 4
    report = DeploymentReport()
    observed = obs is not None and obs.enabled

    for day in range(spec.days):
        counters = DeploymentDay(day=day)
        counters.changes = spec.changes_per_day
        corpus = _day_corpus(spec, day)
        seen_changes = set()

        def flush(items) -> None:
            jobs = [job_from_item(item, detector) for item in items]
            results = execute_jobs(jobs, config=config,
                                   instrumentation=instrumentation,
                                   obs=obs)
            for item, result in zip(items, results):
                if result.positive:
                    counters.detections += 1
                    if item.truth.positive:
                        counters.true_detections += 1
                elif item.truth.positive:
                    counters.missed_impacted_kpis += 1

        day_span = (obs.tracer.span("day", day=day) if observed
                    else nullcontext())
        with day_span:
            chunk = []
            for item in corpus:
                counters.kpis += 1
                if item.truth.positive:
                    seen_changes.add((item.half, item.change_id))
                chunk.append(item)
                if len(chunk) >= chunk_size:
                    flush(chunk)
                    chunk = []
            if chunk:
                flush(chunk)
        counters.impactful_changes = len(seen_changes)
        report.days.append(counters)
        if progress is not None:
            progress(day, counters)
    return report
