"""End-to-end service scenario: fleet + telemetry + changes + FUNNEL.

This is the integration substrate the examples and the deployment
simulation build on.  A :class:`ServiceScenario`

* owns a :class:`~repro.topology.entities.Fleet` and a
  :class:`~repro.telemetry.store.MetricStore`;
* attaches KPI behaviours (a pattern per (service, metric)) and
  materialises correlated per-unit series into the store;
* deploys software changes through a rollout policy, recording them in
  the :class:`~repro.changes.log.ChangeLog` and applying their injected
  effects to the treated units' series; and
* assesses any recorded change with FUNNEL over its identified impact
  set, returning one :class:`~repro.types.Assessment` per monitored KPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..changes.change import SoftwareChange
from ..changes.log import ChangeLog
from ..changes.rollout import RolloutPolicy, plan_rollout
from ..core.funnel import Funnel, FunnelConfig
from ..exceptions import ParameterError, TelemetryError
from ..synthetic.effects import Effect, apply_effects
from ..synthetic.patterns import Pattern
from ..telemetry.kpi import KpiCatalog, KpiKey, KpiSpec, standard_server_kpis
from ..telemetry.store import MetricStore
from ..telemetry.timeseries import MINUTE, TimeSeries
from ..topology.entities import Fleet
from ..topology.impact import ImpactSet, identify_impact_set
from ..types import Assessment, ChangeKind, KpiCharacter, LaunchMode

__all__ = ["KpiBehaviour", "ChangeAssessment", "ServiceScenario"]


@dataclass
class KpiBehaviour:
    """How one (service, metric) behaves across the service's units."""

    metric: str
    pattern: Pattern
    level: str = "server"
    idiosyncratic_sigma: float = 1.0
    unit_offset_sigma: float = 0.5


@dataclass(frozen=True)
class ChangeAssessment:
    """FUNNEL's output for one software change over its impact set."""

    change: SoftwareChange
    impact_set: ImpactSet
    results: Tuple[Tuple[KpiKey, Assessment], ...]

    @property
    def flagged(self) -> List[KpiKey]:
        """KPIs whose change FUNNEL attributed to the software change."""
        return [key for key, result in self.results if result.positive]

    @property
    def kpi_count(self) -> int:
        return len(self.results)


class ServiceScenario:
    """A miniature Internet service under FUNNEL's watch.

    Example:
        >>> scenario = ServiceScenario(seed=1)
        >>> _ = scenario.add_service("shop.cart", n_servers=6)
        >>> scenario.run(minutes=240)
        >>> change = scenario.deploy_change(
        ...     "shop.cart", ChangeKind.CONFIG_CHANGE,
        ...     effect_sigmas=6.0, metric="memory_utilization")
        >>> scenario.run(minutes=120)
        >>> assessment = scenario.assess(change)
        >>> len(assessment.flagged) > 0
        True
    """

    def __init__(self, start_time: int = 0, bin_seconds: int = MINUTE,
                 seed: int = 0, funnel_config: Optional[FunnelConfig] = None,
                 history_days: int = 0) -> None:
        self.fleet = Fleet()
        self.store = MetricStore(bin_seconds)
        self.catalog = standard_server_kpis(KpiCatalog())
        self.change_log = ChangeLog()
        self.funnel = Funnel(funnel_config)
        self.bin_seconds = bin_seconds
        self.start_time = start_time
        self.now = start_time
        self.history_days = history_days
        self._rng = np.random.default_rng(seed)
        self._behaviours: Dict[str, List[KpiBehaviour]] = {}
        self._unit_offsets: Dict[Tuple[str, str, str], float] = {}
        self._pending_effects: Dict[KpiKey, List[Effect]] = {}
        self._host_counter = 0

    # -- construction ------------------------------------------------------------

    def add_service(self, name: str, n_servers: int,
                    behaviours: Sequence[KpiBehaviour] = (),
                    hostnames: Optional[Sequence[str]] = None) -> List[str]:
        """Register a service with ``n_servers`` dedicated servers.

        Default behaviours (when none are given) are the two standard
        server KPIs of the paper's evaluation: a stationary memory
        utilisation and a variable CPU context switch count.
        """
        if hostnames is None:
            hostnames = []
            for _ in range(n_servers):
                self._host_counter += 1
                hostnames.append("host-%04d" % self._host_counter)
        self.fleet.add_service(name, hostnames)
        if not behaviours:
            behaviours = self._default_behaviours()
        self._behaviours[name] = list(behaviours)
        for behaviour in behaviours:
            if behaviour.metric not in self.catalog:
                self.catalog.register(KpiSpec(
                    name=behaviour.metric, level=behaviour.level,
                    character=getattr(behaviour.pattern, "character",
                                      KpiCharacter.STATIONARY),
                ))
        return list(hostnames)

    def _default_behaviours(self) -> List[KpiBehaviour]:
        from ..synthetic.patterns import StationaryPattern, VariablePattern
        return [
            KpiBehaviour(
                metric="memory_utilization",
                pattern=StationaryPattern(
                    level=float(self._rng.uniform(40.0, 70.0)),
                    noise_sigma=0.8,
                ),
                idiosyncratic_sigma=0.5,
            ),
            KpiBehaviour(
                metric="cpu_context_switch_count",
                pattern=VariablePattern(
                    level=float(self._rng.uniform(30.0, 120.0)),
                ),
                idiosyncratic_sigma=0.0,
            ),
        ]

    # -- time & telemetry ------------------------------------------------------------

    def run(self, minutes: int) -> None:
        """Generate and store ``minutes`` of measurements for every KPI."""
        if minutes <= 0:
            raise ParameterError("minutes must be positive")
        from_time = self.now
        n_bins = minutes
        timestamps = from_time + np.arange(n_bins, dtype=np.int64) \
            * self.bin_seconds
        for service, behaviours in self._behaviours.items():
            hostnames = self.fleet.service(service).hostnames
            for behaviour in behaviours:
                shared = behaviour.pattern.sample(timestamps, self._rng)
                for host in hostnames:
                    key = self._key_for(service, host, behaviour)
                    offset = self._offset_for(service, host, behaviour)
                    noise = self._rng.normal(
                        0.0, behaviour.idiosyncratic_sigma, size=n_bins)
                    values = shared + offset + noise
                    effects = self._pending_effects.get(key, ())
                    if effects:
                        local = [self._rebase_effect(e, from_time)
                                 for e in effects]
                        values = apply_effects(values,
                                               [e for e in local
                                                if e is not None])
                    self.store.append(key, TimeSeries(
                        start=from_time, bin_seconds=self.bin_seconds,
                        values=values,
                    ))
        self.now = from_time + n_bins * self.bin_seconds

    def _rebase_effect(self, effect: Effect, from_time: int):
        """Translate an absolute-time effect into fragment-local bins."""
        local_start = (effect.start - from_time) // self.bin_seconds
        if local_start < 0:
            local_start = 0
        import dataclasses
        try:
            return dataclasses.replace(effect, start=int(local_start))
        except TypeError:
            return None

    def _key_for(self, service: str, host: str,
                 behaviour: KpiBehaviour) -> KpiKey:
        if behaviour.level == "server":
            return KpiKey("server", host, behaviour.metric)
        return KpiKey("instance", "%s@%s" % (service, host),
                      behaviour.metric)

    def _offset_for(self, service: str, host: str,
                    behaviour: KpiBehaviour) -> float:
        key = (service, host, behaviour.metric)
        if key not in self._unit_offsets:
            self._unit_offsets[key] = float(
                self._rng.normal(0.0, behaviour.unit_offset_sigma))
        return self._unit_offsets[key]

    # -- changes ------------------------------------------------------------

    def deploy_change(self, service: str, kind: ChangeKind,
                      policy: Optional[RolloutPolicy] = None,
                      effect_sigmas: float = 0.0,
                      metric: Optional[str] = None,
                      effects: Optional[Dict[str, Sequence[Effect]]] = None,
                      description: str = "") -> SoftwareChange:
        """Deploy a change now; optionally inject its KPI impact.

        Args:
            service: the changed service.
            kind: upgrade or configuration change.
            policy: rollout policy (dark launch on 25% by default).
            effect_sigmas: when non-zero, inject a level shift of this
                many pattern-sigmas on ``metric`` for every treated unit
                starting now (a simple common case).
            metric: the metric ``effect_sigmas`` applies to.
            effects: full control — metric name -> effects (with
                ``start`` in absolute simulation seconds) applied to
                treated units' future measurements.
        """
        hostnames = self.fleet.service(service).hostnames
        if policy is None:
            policy = RolloutPolicy(seed=int(self._rng.integers(0, 2 ** 31)))
            if len(hostnames) < 2:
                policy = RolloutPolicy(mode=LaunchMode.FULL)
        plan = plan_rollout(hostnames, policy)
        change = plan.to_change(service, kind, at_time=self.now,
                                description=description)
        self.change_log.record(change)

        to_apply: Dict[str, List[Effect]] = {}
        if effect_sigmas and metric:
            behaviour = self._behaviour(service, metric)
            from ..synthetic.effects import LevelShift
            magnitude = effect_sigmas * behaviour.pattern.typical_scale()
            to_apply.setdefault(metric, []).append(
                LevelShift(start=self.now, magnitude=magnitude))
        for name, effect_list in (effects or {}).items():
            to_apply.setdefault(name, []).extend(effect_list)

        for name, effect_list in to_apply.items():
            behaviour = self._behaviour(service, name)
            for host in plan.treated:
                key = self._key_for(service, host, behaviour)
                self._pending_effects.setdefault(key, []).extend(effect_list)
        return change

    def _behaviour(self, service: str, metric: str) -> KpiBehaviour:
        for behaviour in self._behaviours.get(service, ()):
            if behaviour.metric == metric:
                return behaviour
        raise TelemetryError(
            "service %r has no behaviour for metric %r" % (service, metric)
        )

    # -- assessment ------------------------------------------------------------

    def assess(self, change: SoftwareChange,
               pre_minutes: int = 60) -> ChangeAssessment:
        """Run FUNNEL over the change's impact set using stored data."""
        impact = identify_impact_set(self.fleet, change.service,
                                     change.hostnames)
        from_time = max(self.start_time,
                        change.at_time - pre_minutes * self.bin_seconds)
        to_time = self.now
        change_index = (change.at_time - from_time) // self.bin_seconds

        results: List[Tuple[KpiKey, Assessment]] = []
        for behaviour in self._behaviours[change.service]:
            control_keys = [
                self._key_for(change.service, s.hostname, behaviour)
                for s in impact.cservers
            ]
            control = None
            if control_keys:
                control = self.store.window_matrix(control_keys, from_time,
                                                   to_time)
            for server in impact.tservers:
                key = self._key_for(change.service, server.hostname,
                                    behaviour)
                treated = self.store.window_matrix([key], from_time, to_time)
                result = self.funnel.assess(
                    treated, change_index, control=control,
                )
                results.append((key, result))

        # Affected services: no cservers/cinstances exist (section
        # 3.2.4), so their aggregate service KPIs are assessed against
        # the historical control where enough history was simulated.
        for affected in sorted(impact.affected_services):
            for behaviour in self._behaviours.get(affected, ()):
                unit_keys = [
                    self._key_for(affected, host, behaviour)
                    for host in self.fleet.service(affected).hostnames
                ]
                matrix = self.store.window_matrix(unit_keys, from_time,
                                                  to_time)
                aggregate = matrix.mean(axis=0)
                history = self._history_matrix(unit_keys, from_time,
                                               to_time)
                key = KpiKey("service", affected, behaviour.metric)
                result = self.funnel.assess(
                    aggregate, change_index, history=history,
                )
                results.append((key, result))
        return ChangeAssessment(
            change=change, impact_set=impact, results=tuple(results),
        )

    def _history_matrix(self, unit_keys: Sequence[KpiKey], from_time: int,
                        to_time: int) -> Optional[np.ndarray]:
        """Same clock window on previous days, aggregated across units.

        Returns ``None`` when the simulation has not run long enough to
        cover a single full historical day (FUNNEL then reports without
        exclusion, as in deployment before history accumulates).
        """
        from ..telemetry.timeseries import DAY
        rows = []
        for day in range(1, self.history_days + 1 if self.history_days
                         else 31):
            lo = from_time - day * DAY
            hi = to_time - day * DAY
            if lo < self.start_time:
                break
            matrix = self.store.window_matrix(unit_keys, lo, hi)
            rows.append(matrix.mean(axis=0))
        if not rows:
            return None
        return np.vstack(rows)
