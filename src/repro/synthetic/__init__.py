"""Synthetic KPI traces, injected changes, and the evaluation corpus."""

from .contamination import ContaminationConfig, contaminate_baseline
from .dataset import CorpusSpec, EvaluationCorpus, EvaluationItem, ItemTruth
from .fleetgen import (ChangeWorkloadSpec, FleetSpec,
                       generate_change_workload, generate_fleet)
from .effects import (LevelShift, NoiseBurst, Ramp, Spike, TransientDip,
                      apply_effects)
from .patterns import (SeasonalPattern, StationaryPattern, VariablePattern,
                       pattern_for_character)
from .workload import GroupTraceConfig, GroupTraces, generate_group

__all__ = ["ContaminationConfig", "contaminate_baseline",
           "CorpusSpec", "EvaluationCorpus", "EvaluationItem", "ItemTruth",
           "LevelShift", "NoiseBurst", "Ramp", "Spike", "TransientDip",
           "apply_effects",
           "SeasonalPattern", "StationaryPattern", "VariablePattern",
           "pattern_for_character",
           "GroupTraceConfig", "GroupTraces", "generate_group",
           "ChangeWorkloadSpec", "FleetSpec", "generate_change_workload",
           "generate_fleet"]
