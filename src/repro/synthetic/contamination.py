"""Baseline contamination — paper sections 1 and 3.2.

"The baseline used to compare the performance after software changes may
be contaminated by the impact of previous software changes and/or other
factors."  This module injects that contamination into training/baseline
segments: residual level offsets from earlier changes, leftover spikes
from incidents, and partial-day outages in historical controls.  FUNNEL
counters contamination with a long (30-day) baseline and the averaging
over many control KPIs; the ablation benches use these injectors to
show what happens without those counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ParameterError
from .effects import Spike, apply_effects

__all__ = ["ContaminationConfig", "contaminate_baseline",
           "contaminate_history_panel"]


@dataclass(frozen=True)
class ContaminationConfig:
    """How dirty a baseline should be.

    Attributes:
        residual_shift_sigma: scale of a leftover level offset from a
            previous software change (in KPI units), applied to a random
            prefix of the baseline.
        spike_count: number of leftover incident spikes.
        spike_sigma: spike magnitude scale.
        outage_fraction: probability that any historical day contains a
            partial outage (a dropped-to-near-zero stretch).
    """

    residual_shift_sigma: float = 0.0
    spike_count: int = 0
    spike_sigma: float = 0.0
    outage_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("residual_shift_sigma", "spike_sigma",
                     "outage_fraction"):
            if getattr(self, name) < 0:
                raise ParameterError("%s must be >= 0" % name)
        if self.spike_count < 0:
            raise ParameterError("spike_count must be >= 0")
        if self.outage_fraction > 1:
            raise ParameterError("outage_fraction must be <= 1")

    @property
    def any(self) -> bool:
        return (self.residual_shift_sigma > 0 or self.spike_count > 0
                or self.outage_fraction > 0)


def contaminate_baseline(values: Sequence[float],
                         config: ContaminationConfig,
                         rng: np.random.Generator) -> np.ndarray:
    """Return a contaminated copy of a baseline segment."""
    out = np.array(values, dtype=np.float64, copy=True)
    n = out.size
    if n == 0 or not config.any:
        return out
    effects: list = []
    if config.residual_shift_sigma > 0:
        # A previous change whose level offset ended somewhere inside the
        # baseline: shift the prefix.
        boundary = int(rng.integers(1, max(2, n // 2)))
        offset = rng.normal(0.0, config.residual_shift_sigma)
        prefix = out[:boundary] + offset
        out = np.concatenate([prefix, out[boundary:]])
    for _ in range(config.spike_count):
        at = int(rng.integers(0, n))
        magnitude = rng.normal(0.0, config.spike_sigma)
        effects.append(Spike(start=at, magnitude=magnitude))
    return apply_effects(out, effects)


def contaminate_history_panel(panel: np.ndarray,
                              config: ContaminationConfig,
                              rng: np.random.Generator) -> np.ndarray:
    """Contaminate a ``(days, bins)`` historical-control panel.

    Each day independently suffers an outage with probability
    ``outage_fraction``: a random stretch of the day is dragged towards
    zero, modelling the breakdowns and attacks that pollute history.
    """
    out = np.array(panel, dtype=np.float64, copy=True)
    if out.ndim != 2:
        raise ParameterError("panel must be 2-D, got shape %s" % (out.shape,))
    days, bins = out.shape
    for day in range(days):
        if rng.random() < config.outage_fraction:
            lo = int(rng.integers(0, bins))
            hi = int(rng.integers(lo + 1, bins + 1))
            out[day, lo:hi] *= rng.uniform(0.0, 0.2)
    return out
