"""The labelled evaluation corpus — paper section 4.1, reproduced in shape.

The paper's ground truth: 19 services over 2 days, 6277 software changes,
of which 144 were evaluated — 72 that induced KPI changes and 72 that did
not; 9982 (change, entity, KPI) *items* over 931 servers; 968 items
labelled as having software-change-induced KPI changes; 108 changes Dark
Launched, 36 Full Launched; per-type item counts derived from the
paper's numbers (see DESIGN.md):

=============  ==================  =============  ======
KPI type       change-inducing 72  clean 72       total
=============  ==================  =============  ======
seasonal       378                 327            705
stationary     2147                1486           3633
variable       3177                2467           5644
total          5702                4280           9982
=============  ==================  =============  ======

Every item is generated from a per-item seed, so the corpus is fully
reproducible and can be streamed (at full scale the series data would
occupy hundreds of MB if materialised at once).

Each item carries exactly what each method is allowed to see:

* the treated series (1 unit for server/instance items, the aggregated
  tinstances for service items) over 1 h before + 1 h after the change;
* the peer control matrix (cservers/cinstances) for dark-launched,
  non-affected-service items;
* the 30-day historical panel (same clock window on previous days) for
  full launches and affected services;
* the ground-truth label: whether a software-change-induced KPI change
  exists, its start bin and its kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..telemetry.timeseries import DAY, MINUTE
from ..types import KpiCharacter, LaunchMode
from .contamination import ContaminationConfig, contaminate_history_panel
from .effects import Effect, LevelShift, Ramp
from .patterns import (Pattern, SeasonalPattern, StationaryPattern,
                       VariablePattern)
from .workload import GroupTraceConfig, generate_group

__all__ = ["ItemTruth", "EvaluationItem", "CorpusSpec", "EvaluationCorpus"]


@dataclass(frozen=True)
class ItemTruth:
    """Ground truth for one item (the operations team's manual label)."""

    positive: bool
    start_index: Optional[int] = None
    kind: str = ""

    def __post_init__(self) -> None:
        if self.positive and self.start_index is None:
            raise ParameterError("positive items need a start index")


@dataclass(frozen=True)
class EvaluationItem:
    """One (software change, entity, KPI) evaluation unit.

    ``half`` is ``"inducing"`` for items belonging to the 72 changes that
    induced KPI changes and ``"clean"`` otherwise — the Table 1 synthesis
    scales the clean half's confusion counts by 86 (= 6194/72).
    """

    item_id: int
    change_id: int
    half: str
    character: KpiCharacter
    entity_type: str
    metric: str
    launch_mode: LaunchMode
    affected_service: bool
    change_index: int
    treated: np.ndarray
    control: Optional[np.ndarray]
    history: Optional[np.ndarray]
    truth: ItemTruth

    @property
    def treated_aggregate(self) -> np.ndarray:
        return self.treated.mean(axis=0)

    @property
    def uses_history_control(self) -> bool:
        return self.control is None


# Derived per-type counts (see module docstring and DESIGN.md).
_INDUCING_COUNTS = {
    KpiCharacter.SEASONAL: 378,
    KpiCharacter.STATIONARY: 2147,
    KpiCharacter.VARIABLE: 3177,
}
_CLEAN_COUNTS = {
    KpiCharacter.SEASONAL: 327,
    KpiCharacter.STATIONARY: 1486,
    KpiCharacter.VARIABLE: 2467,
}
_POSITIVE_TOTAL = 968

_METRICS = {
    KpiCharacter.SEASONAL: ("page_view_count", "service"),
    KpiCharacter.STATIONARY: ("memory_utilization", "server"),
    KpiCharacter.VARIABLE: ("cpu_context_switch_count", "server"),
}


@dataclass(frozen=True)
class CorpusSpec:
    """Size and difficulty knobs for the generated corpus.

    ``scale`` shrinks every section-4.1 count proportionally (``1.0``
    reproduces the full 9982-item corpus; tests use 0.02-0.05).

    Difficulty parameters control how hard the detection problem is:

    Attributes:
        scale: corpus size multiplier.
        n_changes: evaluated software changes per half at scale 1.0.
        dark_fraction: fraction of changes Dark Launched (108/144).
        affected_fraction: fraction of service items that belong to
            affected services (history-controlled even under dark
            launching).
        pre_bins / post_bins: assessment horizon around the change
            (1 h + 1 h at 1-minute bins).
        history_days: historical-control depth (30).
        effect_sigmas: (min, max) injected-impact magnitude in units of
            the pattern's typical scale.
        ramp_fraction: fraction of positive impacts that are ramps
            rather than level shifts.
        other_factor_rate: probability that a negative item carries an
            other-factor event (hits treated AND control).
        seed: corpus master seed.
    """

    scale: float = 1.0
    n_changes: int = 72
    dark_fraction: float = 0.75
    affected_fraction: float = 0.15
    pre_bins: int = 60
    post_bins: int = 60
    history_days: int = 30
    effect_sigmas: Tuple[float, float] = (4.0, 9.0)
    ramp_fraction: float = 0.3
    ramp_duration: int = 20
    other_factor_rate: float = 0.05
    contamination: ContaminationConfig = field(
        default_factory=ContaminationConfig)
    seed: int = 20151201       # CoNEXT'15 conference date

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ParameterError("scale must be in (0, 1]")
        if self.pre_bins < 40 or self.post_bins < 40:
            raise ParameterError(
                "pre/post horizons must each cover at least 40 bins for "
                "the widest detector window"
            )
        if not 0.0 <= self.other_factor_rate <= 1.0:
            raise ParameterError("other_factor_rate must be in [0, 1]")
        if self.effect_sigmas[0] <= 0 or \
                self.effect_sigmas[1] < self.effect_sigmas[0]:
            raise ParameterError("effect_sigmas must be 0 < lo <= hi")

    @property
    def n_bins(self) -> int:
        return self.pre_bins + self.post_bins

    @property
    def change_index(self) -> int:
        return self.pre_bins

    def counts(self, half: str) -> dict:
        base = _INDUCING_COUNTS if half == "inducing" else _CLEAN_COUNTS
        return {k: max(1, int(round(v * self.scale)))
                for k, v in base.items()}

    def positives(self) -> int:
        return max(1, int(round(_POSITIVE_TOTAL * self.scale)))


class EvaluationCorpus:
    """Streamed generator of :class:`EvaluationItem` per a :class:`CorpusSpec`.

    Example:
        >>> corpus = EvaluationCorpus(CorpusSpec(scale=0.01))
        >>> items = list(corpus)
        >>> sum(item.truth.positive for item in items) > 0
        True
    """

    def __init__(self, spec: Optional[CorpusSpec] = None) -> None:
        self.spec = spec or CorpusSpec()

    # -- composition ------------------------------------------------------------

    def _plan(self) -> List[dict]:
        """The per-item generation plan (cheap; no series data)."""
        spec = self.spec
        plan: List[dict] = []
        n_changes = max(2, int(round(spec.n_changes * max(spec.scale, 0.03))))

        master = np.random.default_rng(spec.seed)
        item_id = 0
        for half in ("inducing", "clean"):
            counts = self.spec.counts(half)
            half_total = sum(counts.values())
            if half == "inducing":
                n_positive = min(self.spec.positives(), half_total)
            else:
                n_positive = 0
            entries: List[dict] = []
            for character, count in sorted(counts.items(),
                                           key=lambda kv: kv[0].value):
                for _ in range(count):
                    entries.append({"character": character})
            # Deterministic positive assignment, proportional by type.
            positive_idx = set(
                master.choice(len(entries), size=n_positive, replace=False)
            ) if n_positive else set()
            # 108 of the paper's 144 changes were dark-launched; keep at
            # least one change in each mode whenever there are >= 2.
            n_dark = int(round(n_changes * spec.dark_fraction))
            if n_changes >= 2:
                n_dark = min(n_changes - 1, max(1, n_dark))
            for i, entry in enumerate(entries):
                change_ordinal = i % n_changes
                change_id = (change_ordinal if half == "inducing"
                             else n_changes + change_ordinal)
                dark = change_ordinal < n_dark
                metric, entity_type = _METRICS[entry["character"]]
                is_service = entity_type == "service"
                affected = (is_service and dark
                            and master.random() < spec.affected_fraction)
                entry.update({
                    "item_id": item_id,
                    "change_id": change_id,
                    "half": half,
                    "positive": i in positive_idx,
                    "launch_mode": (LaunchMode.DARK if dark
                                    else LaunchMode.FULL),
                    "affected_service": affected,
                    "metric": metric,
                    "entity_type": entity_type,
                    "seed": int(master.integers(0, 2 ** 63 - 1)),
                })
                item_id += 1
            plan.extend(entries)
        return plan

    def __iter__(self) -> Iterator[EvaluationItem]:
        for entry in self._plan():
            yield self._generate_item(entry)

    def __len__(self) -> int:
        return (sum(self.spec.counts("inducing").values())
                + sum(self.spec.counts("clean").values()))

    # -- per-item generation ------------------------------------------------------

    def _pattern_for(self, character: KpiCharacter,
                     rng: np.random.Generator) -> Pattern:
        if character is KpiCharacter.SEASONAL:
            # A steep smooth diurnal cycle: during the morning climb the
            # profile drifts by tens of noise-sigmas per hour.  Raw
            # detectors read that drift as a behaviour change (CUSUM
            # accumulates it; SST fires on the curvature transitions)
            # while the historical/peer DiD cancels it — the mechanism
            # behind Table 1's seasonal-KPI precision gap.
            # Steep smooth diurnal cycle plus sharp recurring intraday
            # events (scheduled jobs, prime-time surges).  Both recur
            # every day, so the historical/peer DiD cancels them while
            # raw detectors read the drift and the event edges as
            # behaviour changes — Table 1's seasonal precision gap.
            event_start = int(rng.integers(8 * 3600, 10 * 3600))
            event_length = int(rng.integers(1800, 3 * 3600))
            return SeasonalPattern(
                base=float(rng.uniform(80.0, 400.0)),
                daily_amplitude=float(rng.uniform(0.45, 0.7)),
                noise_sigma=float(rng.uniform(1.5, 4.0)),
                daily_events=(
                    (event_start, event_start + event_length,
                     float(rng.uniform(0.15, 0.4))),
                ),
                # Mild weekday/weekend difference: the 30-day historical
                # control mixes weekdays and weekends, so a strong
                # multiplicative weekly factor would mostly measure
                # calendar mismatch rather than the methods' behaviour.
                weekend_factor=float(rng.uniform(0.85, 1.0)),
            )
        if character is KpiCharacter.STATIONARY:
            return StationaryPattern(
                level=float(rng.uniform(30.0, 80.0)),
                ar_coefficient=float(rng.uniform(0.2, 0.5)),
                noise_sigma=float(rng.uniform(0.4, 1.2)),
            )
        return VariablePattern(
            level=float(rng.uniform(20.0, 200.0)),
            lognormal_sigma=float(rng.uniform(0.15, 0.35)),
            spike_rate=float(rng.uniform(0.005, 0.03)),
            spike_magnitude=float(rng.uniform(1.5, 3.0)),
        )

    def _start_time(self, character: KpiCharacter,
                    rng: np.random.Generator) -> int:
        """Pick the wall-clock start of the 2-hour assessment window.

        Seasonal items start so that the change lands shortly before one
        of the recurring intraday event edges (the hard case for raw
        detectors); other items land anywhere in the day.
        """
        spec = self.spec
        day = int(rng.integers(40, 400)) * DAY      # leave room for history
        if character is KpiCharacter.SEASONAL:
            # Land the assessment window on the steep morning climb:
            # change between 07:00 and 09:30.
            change_second = int(rng.integers(7 * 3600, 9 * 3600 + 1800))
            change_second -= change_second % MINUTE
            return day + change_second - spec.pre_bins * MINUTE
        return day + int(rng.integers(0, DAY // MINUTE)) * MINUTE

    def _treated_effects(self, entry: dict, pattern: Pattern,
                         rng: np.random.Generator) -> Tuple[Effect, ...]:
        if not entry["positive"]:
            return ()
        spec = self.spec
        if isinstance(pattern, SeasonalPattern):
            # Incidents on traffic-like KPIs move a *fraction of the
            # level* (Fig. 7: effective clicks dropped ~60%), which is
            # what stays visible against a diurnal swing of many
            # noise-sigmas per hour.
            magnitude = float(rng.uniform(0.2, 0.5)) * pattern.base
        else:
            magnitude = float(rng.uniform(*spec.effect_sigmas)) * \
                pattern.typical_scale()
        if rng.random() < 0.5:
            magnitude = -magnitude
        if rng.random() < spec.ramp_fraction:
            return (Ramp(start=spec.change_index, magnitude=magnitude,
                         duration=spec.ramp_duration),)
        return (LevelShift(start=spec.change_index, magnitude=magnitude),)

    def _shared_effects(self, entry: dict, pattern: Pattern,
                        rng: np.random.Generator) -> Tuple[Effect, ...]:
        if entry["positive"]:
            return ()
        # Other-factor events land mostly on dark-launched items (where
        # the peer control group can — and in the paper's design must —
        # cancel them); for history-controlled items only seasonality can
        # be excluded, so confounding events there are kept an order of
        # magnitude rarer, as they are in practice within the one-hour
        # assessment horizon.
        rate = self.spec.other_factor_rate
        dark = entry["launch_mode"] is LaunchMode.DARK
        if not (dark and not entry["affected_service"]):
            rate *= 0.1
        if rng.random() >= rate:
            return ()
        # An other-factor event: a level shift hitting the whole service
        # (both groups) somewhere in the post-change hour.
        scale = pattern.typical_scale()
        magnitude = float(rng.uniform(*self.spec.effect_sigmas)) * scale
        if rng.random() < 0.5:
            magnitude = -magnitude
        at = self.spec.change_index + int(
            rng.integers(0, self.spec.post_bins // 2))
        return (LevelShift(start=at, magnitude=magnitude),)

    def _history_panel(self, pattern: Pattern, start_time: int,
                       shared_effects: Tuple[Effect, ...],
                       rng: np.random.Generator) -> np.ndarray:
        """Same clock window on each of the previous ``history_days``."""
        spec = self.spec
        rows = []
        for day in range(1, spec.history_days + 1):
            ts = (start_time - day * DAY
                  + np.arange(spec.n_bins, dtype=np.int64) * MINUTE)
            rows.append(pattern.sample(ts, rng))
        panel = np.vstack(rows)
        if spec.contamination.any:
            panel = contaminate_history_panel(panel, spec.contamination, rng)
        return panel

    def _generate_item(self, entry: dict) -> EvaluationItem:
        spec = self.spec
        rng = np.random.default_rng(entry["seed"])
        character: KpiCharacter = entry["character"]
        pattern = self._pattern_for(character, rng)
        start_time = self._start_time(character, rng)
        treated_effects = self._treated_effects(entry, pattern, rng)
        shared_effects = self._shared_effects(entry, pattern, rng)

        dark = entry["launch_mode"] is LaunchMode.DARK
        use_peer_control = dark and not entry["affected_service"]
        n_treated = 1 if entry["entity_type"] == "server" else \
            int(rng.integers(2, 5))
        n_control = int(rng.integers(4, 13)) if use_peer_control else 0

        scale = max(pattern.typical_scale(), 1e-9)
        traces = generate_group(GroupTraceConfig(
            pattern=pattern,
            n_treated=n_treated,
            n_control=n_control,
            n_bins=spec.n_bins,
            start_time=start_time,
            unit_offset_sigma=0.5 * scale,
            idiosyncratic_sigma=0.6 * scale,
            treated_effects=treated_effects,
            shared_effects=shared_effects,
            hotspot_fraction=0.03,
        ), rng)

        history = None
        if not use_peer_control:
            history = self._history_panel(pattern, start_time,
                                          shared_effects, rng)

        if entry["positive"]:
            truth = ItemTruth(
                positive=True,
                start_index=spec.change_index,
                kind=("ramp" if isinstance(treated_effects[0], Ramp)
                      else "level_shift"),
            )
        else:
            truth = ItemTruth(positive=False)

        return EvaluationItem(
            item_id=entry["item_id"],
            change_id=entry["change_id"],
            half=entry["half"],
            character=character,
            entity_type=entry["entity_type"],
            metric=entry["metric"],
            launch_mode=entry["launch_mode"],
            affected_service=entry["affected_service"],
            change_index=spec.change_index,
            treated=traces.treated,
            control=traces.control if use_peer_control else None,
            history=history,
            truth=truth,
        )
