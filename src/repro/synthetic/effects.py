"""Injected behaviour changes and other-factor events.

The KPI changes FUNNEL targets (paper section 2.3, Fig. 2) are *level
shifts* and *ramp up/downs*; spikes and transient dips are the one-off
events the 7-minute persistence rule must reject.  Every effect here is
a pure function of (bin index, current values): effects compose, and the
same effect object can be applied to treated units only (a software-
change impact) or to treated and control alike (an other-factor event
such as an attack or hardware failure, section 3.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = ["Effect", "LevelShift", "Ramp", "Spike", "TransientDip",
           "NoiseBurst", "apply_effects"]


class Effect:
    """Base class: an additive/multiplicative modification of a series."""

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Return a modified copy of ``values`` (never mutates input)."""
        raise NotImplementedError

    start: int


def _check_start(start: int) -> None:
    if start < 0:
        raise ParameterError("effect start must be >= 0, got %d" % start)


@dataclass(frozen=True)
class LevelShift(Effect):
    """A sudden persistent shift: ``values[start:] += magnitude``.

    ``magnitude`` may be negative (paper Fig. 6a: a negative NIC
    throughput shift) or positive (Fig. 6b).
    """

    start: int
    magnitude: float

    def __post_init__(self) -> None:
        _check_start(self.start)

    def apply(self, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        out[self.start:] += self.magnitude
        return out


@dataclass(frozen=True)
class Ramp(Effect):
    """A gradual drift: linear from 0 to ``magnitude`` over ``duration``
    bins starting at ``start``, then held (Fig. 2's ramp up/down)."""

    start: int
    magnitude: float
    duration: int

    def __post_init__(self) -> None:
        _check_start(self.start)
        if self.duration < 1:
            raise ParameterError("ramp duration must be >= 1 bin")

    def apply(self, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        n = out.size
        if self.start >= n:
            return out
        ramp_end = min(self.start + self.duration, n)
        steps = np.arange(1, ramp_end - self.start + 1, dtype=np.float64)
        out[self.start:ramp_end] += self.magnitude * steps / self.duration
        out[ramp_end:] += self.magnitude
        return out


@dataclass(frozen=True)
class Spike(Effect):
    """A one-off excursion over ``width`` bins — *not* a KPI change."""

    start: int
    magnitude: float
    width: int = 1

    def __post_init__(self) -> None:
        _check_start(self.start)
        if self.width < 1:
            raise ParameterError("spike width must be >= 1 bin")

    def apply(self, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        out[self.start:self.start + self.width] += self.magnitude
        return out


@dataclass(frozen=True)
class TransientDip(Effect):
    """A dip that recovers: shift down at ``start``, back up after
    ``duration`` bins.  Below the persistence threshold this must be
    rejected; above it, it is a genuine (temporary) change — Fig. 7's
    incident has exactly this shape at the 1.5 h scale."""

    start: int
    magnitude: float
    duration: int

    def __post_init__(self) -> None:
        _check_start(self.start)
        if self.duration < 1:
            raise ParameterError("dip duration must be >= 1 bin")
        if self.magnitude <= 0:
            raise ParameterError("dip magnitude must be positive "
                                 "(it is subtracted)")

    def apply(self, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        out[self.start:self.start + self.duration] -= self.magnitude
        return out


@dataclass(frozen=True)
class NoiseBurst(Effect):
    """A variance increase without a level change: multiplies the
    deviations from the local median by ``factor`` for ``duration`` bins.

    Detected through the MAD term of the Eq. 11 gate — a change in scale
    is a behaviour change even when the location is steady.
    """

    start: int
    factor: float
    duration: int
    seed: int = 0

    def __post_init__(self) -> None:
        _check_start(self.start)
        if self.factor <= 1.0:
            raise ParameterError("factor must exceed 1")
        if self.duration < 1:
            raise ParameterError("burst duration must be >= 1 bin")

    def apply(self, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        lo, hi = self.start, min(self.start + self.duration, out.size)
        if lo >= out.size:
            return out
        segment = out[lo:hi]
        center = np.median(values)
        out[lo:hi] = center + (segment - center) * self.factor
        return out


def apply_effects(values: Sequence[float],
                  effects: Sequence[Effect]) -> np.ndarray:
    """Apply ``effects`` in order to a copy of ``values``."""
    out = np.array(values, dtype=np.float64, copy=True)
    for effect in effects:
        out = effect.apply(out)
    return out
