"""Fleet and change-workload generation — the section 4.1 environment.

The paper's evaluation drew from "19 moderate-sized services over a
2-day period" with 6277 software changes and 931 servers.  This module
generates that shape: a fleet with a realistic naming hierarchy (a few
product families, each with frontend/backend/cache/... tiers), servers
distributed across services, explicit cross-family relationship edges,
and a day's stream of software changes following the operational
practices the paper describes (mostly dark launches, no two concurrent
changes per service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..changes.change import SoftwareChange
from ..changes.log import ChangeLog
from ..changes.rollout import RolloutPolicy, plan_rollout
from ..exceptions import ParameterError
from ..telemetry.timeseries import DAY, MINUTE
from ..topology.entities import Fleet
from ..types import ChangeKind, LaunchMode

__all__ = ["FleetSpec", "generate_fleet", "ChangeWorkloadSpec",
           "generate_change_workload"]

_FAMILIES = ("search", "ads", "mail", "shop", "feed", "video", "map")
_TIERS = ("frontend", "backend", "cache", "index", "api", "store")


@dataclass(frozen=True)
class FleetSpec:
    """Shape of the generated fleet.

    Defaults reproduce the section 4.1 environment: 19 services over
    931 servers.
    """

    n_services: int = 19
    n_servers: int = 931
    min_servers_per_service: int = 4
    cross_family_edges: int = 6
    seed: int = 4

    def __post_init__(self) -> None:
        if self.n_services < 1:
            raise ParameterError("n_services must be >= 1")
        if self.n_servers < self.n_services * self.min_servers_per_service:
            raise ParameterError(
                "%d servers cannot give %d services at least %d each"
                % (self.n_servers, self.n_services,
                   self.min_servers_per_service)
            )


def _service_names(n: int, rng: np.random.Generator) -> List[str]:
    names: List[str] = []
    family_idx = tier_idx = 0
    while len(names) < n:
        family = _FAMILIES[family_idx % len(_FAMILIES)]
        tier = _TIERS[tier_idx % len(_TIERS)]
        name = "%s.%s" % (family, tier)
        if name not in names:
            names.append(name)
        tier_idx += 1
        if tier_idx % len(_TIERS) == 0:
            family_idx += 1
    return names[:n]


def generate_fleet(spec: Optional[FleetSpec] = None) -> Fleet:
    """Generate a fleet with the section 4.1 shape.

    Server counts per service follow a skewed (geometric-ish) split so a
    few services are large and most are moderate — matching how real
    deployments look and exercising both ends of the control-group-size
    spectrum.
    """
    spec = spec or FleetSpec()
    rng = np.random.default_rng(spec.seed)
    names = _service_names(spec.n_services, rng)

    weights = rng.pareto(2.0, size=spec.n_services) + 1.0
    weights = weights / weights.sum()
    spare = spec.n_servers - spec.n_services * spec.min_servers_per_service
    extra = np.floor(weights * spare).astype(int)
    # Distribute the rounding remainder to the largest services.
    remainder = spare - int(extra.sum())
    for i in np.argsort(-weights)[:remainder]:
        extra[i] += 1
    counts = spec.min_servers_per_service + extra

    fleet = Fleet()
    host_id = 0
    for name, count in zip(names, counts):
        hostnames = []
        prefix = name.replace(".", "-")
        for _ in range(int(count)):
            host_id += 1
            hostnames.append("%s-%04d" % (prefix, host_id))
        fleet.add_service(name, hostnames)

    # Cross-family request/response edges (e.g. search.frontend calls
    # ads.api), in addition to the naming-derived ones.
    for _ in range(spec.cross_family_edges):
        a, b = rng.choice(spec.n_services, size=2, replace=False)
        source, target = names[int(a)], names[int(b)]
        if source.split(".")[0] != target.split(".")[0]:
            fleet.add_relationship(source, target)
    return fleet


@dataclass(frozen=True)
class ChangeWorkloadSpec:
    """Shape of one day's software-change stream.

    Defaults approximate section 4.1's 6277 changes over 2 days across
    19 services (~165 changes per service-day, i.e. busy services).
    """

    changes_per_day: int = 3138
    dark_fraction: float = 0.75
    upgrade_fraction: float = 0.4
    treated_fraction: float = 0.25
    start_time: int = 0
    seed: int = 9

    def __post_init__(self) -> None:
        if self.changes_per_day < 1:
            raise ParameterError("changes_per_day must be >= 1")
        for name in ("dark_fraction", "upgrade_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ParameterError("%s must be in [0, 1]" % name)


def generate_change_workload(fleet: Fleet,
                             spec: Optional[ChangeWorkloadSpec] = None,
                             guard_seconds: int = 3600
                             ) -> Tuple[ChangeLog, List[SoftwareChange]]:
    """Generate one day of software changes against ``fleet``.

    Changes are spread uniformly over the day; per service they respect
    the no-concurrent-changes guard (a slot that would violate it is
    re-assigned to the least recently changed service).  Returns the
    populated :class:`~repro.changes.log.ChangeLog` plus the time-ordered
    change list.
    """
    spec = spec or ChangeWorkloadSpec()
    rng = np.random.default_rng(spec.seed)
    log = ChangeLog(concurrency_guard_seconds=guard_seconds)
    services = fleet.service_names
    last_change_at = {name: -guard_seconds for name in services}
    changes: List[SoftwareChange] = []

    slot_times = np.sort(rng.integers(0, DAY // MINUTE,
                                      size=spec.changes_per_day)) * MINUTE
    for at in slot_times:
        at = int(at) + spec.start_time
        candidates = [s for s in services
                      if at - last_change_at[s] >= guard_seconds]
        if not candidates:
            continue           # every service busy; skip the slot
        service = candidates[int(rng.integers(0, len(candidates)))]
        hostnames = fleet.service(service).hostnames
        dark = (rng.random() < spec.dark_fraction) and len(hostnames) >= 2
        policy = RolloutPolicy(
            mode=LaunchMode.DARK if dark else LaunchMode.FULL,
            treated_fraction=spec.treated_fraction,
            seed=int(rng.integers(0, 2 ** 31)),
        )
        plan = plan_rollout(hostnames, policy)
        kind = (ChangeKind.SOFTWARE_UPGRADE
                if rng.random() < spec.upgrade_fraction
                else ChangeKind.CONFIG_CHANGE)
        change = plan.to_change(service, kind, at_time=at)
        log.record(change)
        last_change_at[service] = at
        changes.append(change)
    return log, changes
