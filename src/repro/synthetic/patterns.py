"""Base KPI behaviour generators.

Paper section 1: "KPIs in Internet-based services are quite diverse
intrinsically, exhibiting various characteristics including strong
seasonality (e.g., Web page view count), high variability (e.g., server
CPU context switch count), and stationarity (e.g., server memory
utilization)."  One generator per archetype:

* :class:`SeasonalPattern` — a smooth diurnal profile (two harmonics,
  peaking mid-day) with a day-of-week factor and Gaussian noise;
* :class:`StationaryPattern` — an AR(1) process around a fixed level;
* :class:`VariablePattern` — heavy-tailed (log-normal) multiplicative
  noise with occasional benign spikes, like context-switch counts.

Each pattern generates the *shared* service-level component; per-unit
series add idiosyncratic noise on top (see
:func:`repro.synthetic.workload.generate_group`), giving the high
spatial correlation between same-service units that the DiD control
groups rely on (section 3.2.4, observation 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ParameterError
from ..telemetry.timeseries import DAY
from ..types import KpiCharacter

__all__ = [
    "Pattern",
    "SeasonalPattern",
    "StationaryPattern",
    "VariablePattern",
    "pattern_for_character",
]


class Pattern:
    """Base class: a pattern maps bin timestamps to KPI values."""

    character: KpiCharacter

    def sample(self, timestamps: Sequence[int],
               rng: np.random.Generator) -> np.ndarray:
        """Generate one realisation over ``timestamps`` (seconds)."""
        raise NotImplementedError

    def typical_scale(self) -> float:
        """The pattern's noise scale, used to size injected effects."""
        raise NotImplementedError


@dataclass
class SeasonalPattern(Pattern):
    """Diurnal + weekly profile with additive Gaussian noise.

    The deterministic profile is ``base * (1 + daily(t)) * weekly(t)``
    where ``daily`` blends two harmonics so traffic troughs at night and
    peaks in the afternoon, and ``weekly`` damps weekends.

    On top of the smooth profile, ``daily_events`` model the sharp
    recurring intraday transitions real traffic KPIs show (market open,
    scheduled batch jobs, prime-time surges): each ``(start_second,
    end_second, relative_magnitude)`` multiplies the profile by
    ``1 + relative_magnitude`` inside that time-of-day interval, with a
    near-instant edge.  These edges look exactly like level shifts to a
    raw change detector — they recur every day, so FUNNEL's historical
    DiD cancels them while DiD-less detectors false-positive (the
    mechanism behind Table 1's seasonal-KPI precision gap).

    Attributes:
        base: mean level.
        daily_amplitude: relative swing of the diurnal cycle (0.6 means
            peak ~1.6x and trough ~0.4x of base).
        weekend_factor: weekend level relative to weekdays.
        noise_sigma: additive Gaussian noise, in absolute units.
        daily_events: ``(start_second, end_second, magnitude)`` sharp
            recurring intraday steps.
    """

    base: float = 100.0
    daily_amplitude: float = 0.6
    weekend_factor: float = 0.7
    noise_sigma: float = 2.0
    phase_seconds: int = 0
    daily_events: tuple = ()

    character = KpiCharacter.SEASONAL

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ParameterError("base must be positive")
        if not 0.0 <= self.daily_amplitude < 1.0:
            raise ParameterError("daily_amplitude must be in [0, 1)")
        if self.noise_sigma < 0:
            raise ParameterError("noise_sigma must be >= 0")
        for event in self.daily_events:
            start_second, end_second, magnitude = event
            if not 0 <= start_second < end_second <= DAY:
                raise ParameterError(
                    "daily event %r must satisfy 0 <= start < end <= 1 day"
                    % (event,)
                )
            if magnitude <= -1.0:
                raise ParameterError(
                    "daily event magnitude must exceed -1, got %g" % magnitude
                )

    def profile(self, timestamps: Sequence[int]) -> np.ndarray:
        """The noise-free seasonal profile."""
        t = np.asarray(timestamps, dtype=np.float64) + self.phase_seconds
        day_angle = 2.0 * np.pi * (t % DAY) / DAY
        # Peak around 14:00, trough around 04:00; the second harmonic
        # sharpens the daytime plateau.
        daily = (0.75 * np.sin(day_angle - 2.0 * np.pi * 8.0 / 24.0)
                 + 0.25 * np.sin(2.0 * day_angle - 2.0 * np.pi * 5.0 / 24.0))
        day_index = (t // DAY).astype(np.int64)
        weekend = np.where(day_index % 7 >= 5, self.weekend_factor, 1.0)
        profile = self.base * (1.0 + self.daily_amplitude * daily) * weekend
        seconds_of_day = t % DAY
        for start_second, end_second, magnitude in self.daily_events:
            inside = (seconds_of_day >= start_second) & \
                (seconds_of_day < end_second)
            profile = np.where(inside, profile * (1.0 + magnitude), profile)
        return profile

    def sample(self, timestamps: Sequence[int],
               rng: np.random.Generator) -> np.ndarray:
        values = self.profile(timestamps)
        return values + rng.normal(0.0, self.noise_sigma, size=values.shape)

    def typical_scale(self) -> float:
        return self.noise_sigma


@dataclass
class StationaryPattern(Pattern):
    """AR(1) process around a level — memory utilisation and friends.

    ``x_t = level + ar_coefficient * (x_{t-1} - level) + eps_t`` with
    Gaussian innovations; the process is started from its stationary
    distribution so there is no burn-in transient.
    """

    level: float = 60.0
    ar_coefficient: float = 0.6
    noise_sigma: float = 0.8

    character = KpiCharacter.STATIONARY

    def __post_init__(self) -> None:
        if not 0.0 <= self.ar_coefficient < 1.0:
            raise ParameterError("ar_coefficient must be in [0, 1)")
        if self.noise_sigma < 0:
            raise ParameterError("noise_sigma must be >= 0")

    def sample(self, timestamps: Sequence[int],
               rng: np.random.Generator) -> np.ndarray:
        n = len(timestamps)
        phi = self.ar_coefficient
        stationary_sigma = self.noise_sigma / np.sqrt(1.0 - phi ** 2)
        out = np.empty(n, dtype=np.float64)
        deviation = rng.normal(0.0, stationary_sigma)
        innovations = rng.normal(0.0, self.noise_sigma, size=n)
        for i in range(n):
            deviation = phi * deviation + innovations[i]
            out[i] = self.level + deviation
        return out

    def typical_scale(self) -> float:
        return self.noise_sigma / np.sqrt(1.0 - self.ar_coefficient ** 2)


@dataclass
class VariablePattern(Pattern):
    """Heavy-tailed, spiky behaviour — CPU context switches, NIC bursts.

    Values are ``level * lognormal(sigma)``, plus benign spikes arriving
    as a Bernoulli process: each spike multiplies one bin by
    ``1 + spike_magnitude``.  These spikes are *normal behaviour* for
    this KPI class — precisely what fools spike-sensitive detectors on
    variable KPIs (Table 1, MRLS row).
    """

    level: float = 50.0
    lognormal_sigma: float = 0.25
    spike_rate: float = 0.01
    spike_magnitude: float = 2.0

    character = KpiCharacter.VARIABLE

    def __post_init__(self) -> None:
        if self.level <= 0:
            raise ParameterError("level must be positive")
        if self.lognormal_sigma <= 0:
            raise ParameterError("lognormal_sigma must be positive")
        if not 0.0 <= self.spike_rate < 1.0:
            raise ParameterError("spike_rate must be in [0, 1)")

    def sample(self, timestamps: Sequence[int],
               rng: np.random.Generator) -> np.ndarray:
        n = len(timestamps)
        body = self.level * rng.lognormal(
            mean=-0.5 * self.lognormal_sigma ** 2,
            sigma=self.lognormal_sigma, size=n,
        )
        spikes = rng.random(n) < self.spike_rate
        body[spikes] *= 1.0 + self.spike_magnitude * rng.random(spikes.sum())
        return body

    def typical_scale(self) -> float:
        # MAD-based scale of the log-normal body.
        return self.level * self.lognormal_sigma

    def character_name(self) -> str:
        return self.character.value


def pattern_for_character(character: KpiCharacter, scale: float = 1.0,
                          **overrides) -> Pattern:
    """A default pattern instance for a KPI archetype.

    ``scale`` multiplies the pattern's base level, letting callers vary
    magnitudes across KPIs without re-specifying every parameter.
    """
    if character is KpiCharacter.SEASONAL:
        pattern = SeasonalPattern(**overrides)
        pattern.base *= scale
        pattern.noise_sigma *= scale
        return pattern
    if character is KpiCharacter.STATIONARY:
        pattern = StationaryPattern(**overrides)
        pattern.level *= scale
        pattern.noise_sigma *= scale
        return pattern
    if character is KpiCharacter.VARIABLE:
        pattern = VariablePattern(**overrides)
        pattern.level *= scale
        return pattern
    raise ParameterError("unknown KPI character %r" % (character,))
