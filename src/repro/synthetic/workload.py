"""Correlated multi-unit KPI trace generation.

The DiD stage works because "instances and servers that belong to the
same service exhibit high-level spatial correlation or statistic
dependency ... thanks to load balancing" (paper section 3.2.4).  This
module generates exactly that structure: a *shared* service-level
realisation from a :class:`~repro.synthetic.patterns.Pattern`, plus
per-unit offsets and idiosyncratic noise, with software-change effects
applied to treated units only and other-factor events applied to all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..telemetry.timeseries import MINUTE
from .effects import Effect, apply_effects
from .patterns import Pattern

__all__ = ["GroupTraceConfig", "GroupTraces", "generate_group"]


@dataclass(frozen=True)
class GroupTraceConfig:
    """Parameters for one correlated treated/control trace set.

    Attributes:
        pattern: the shared service-level behaviour.
        n_treated / n_control: unit counts in each group.
        n_bins: series length in time-bins.
        start_time: timestamp of the first bin (drives seasonality phase).
        bin_seconds: bin width.
        unit_offset_sigma: spread of constant per-unit offsets (machines
            differ slightly in level).
        idiosyncratic_sigma: per-unit, per-bin noise on top of the shared
            component.
        treated_effects: applied to treated units only (the software
            change's impact).
        shared_effects: applied to the shared component, i.e. to both
            groups (seasonal surprises, attacks, hardware events).
        hotspot_fraction: fraction of units (in both groups) that behave
            as datacenter hotspots — extra load offset and noise
            (section 3.2.4, observation 4: <3% of servers are hotspots).
    """

    pattern: Pattern
    n_treated: int = 4
    n_control: int = 12
    n_bins: int = 180
    start_time: int = 0
    bin_seconds: int = MINUTE
    unit_offset_sigma: float = 0.5
    idiosyncratic_sigma: float = 1.0
    treated_effects: Tuple[Effect, ...] = ()
    shared_effects: Tuple[Effect, ...] = ()
    hotspot_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_treated < 1:
            raise ParameterError("n_treated must be >= 1")
        if self.n_control < 0:
            raise ParameterError("n_control must be >= 0")
        if self.n_bins < 8:
            raise ParameterError("n_bins must be >= 8")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ParameterError("hotspot_fraction must be in [0, 1]")


@dataclass(frozen=True)
class GroupTraces:
    """Generated treated/control matrices plus provenance.

    ``treated`` is ``(n_treated, n_bins)``; ``control`` is
    ``(n_control, n_bins)`` (possibly 0 rows for Full Launching).
    ``shared`` is the latent service-level component both were built
    from — available to tests that verify the correlation structure.
    """

    treated: np.ndarray
    control: np.ndarray
    shared: np.ndarray
    timestamps: np.ndarray

    @property
    def treated_mean(self) -> np.ndarray:
        return self.treated.mean(axis=0)

    @property
    def control_mean(self) -> np.ndarray:
        if self.control.shape[0] == 0:
            raise ParameterError("no control units were generated")
        return self.control.mean(axis=0)


def generate_group(config: GroupTraceConfig,
                   rng: np.random.Generator) -> GroupTraces:
    """Generate one correlated treated/control trace set."""
    timestamps = (config.start_time
                  + np.arange(config.n_bins, dtype=np.int64)
                  * config.bin_seconds)
    shared = config.pattern.sample(timestamps, rng)
    shared = apply_effects(shared, config.shared_effects)

    total_units = config.n_treated + config.n_control
    offsets = rng.normal(0.0, config.unit_offset_sigma, size=total_units)
    hotspots = rng.random(total_units) < config.hotspot_fraction

    rows: List[np.ndarray] = []
    scale = max(config.pattern.typical_scale(), 1e-9)
    for unit in range(total_units):
        noise_sigma = config.idiosyncratic_sigma
        level_offset = offsets[unit]
        if hotspots[unit]:
            level_offset += 3.0 * scale
            noise_sigma *= 2.0
        noise = rng.normal(0.0, noise_sigma, size=config.n_bins)
        rows.append(shared + level_offset + noise)

    treated = np.vstack(rows[:config.n_treated])
    if config.n_control:
        control = np.vstack(rows[config.n_treated:])
    else:
        control = np.empty((0, config.n_bins), dtype=np.float64)

    if config.treated_effects:
        treated = np.vstack([
            apply_effects(row, config.treated_effects) for row in treated
        ])
    return GroupTraces(treated=treated, control=control, shared=shared,
                       timestamps=timestamps)
