"""KPI telemetry: time series, agents, the metric store, aggregation."""

from .agent import Agent
from .aggregation import ServiceAggregator, aggregate_series
from .kpi import KpiCatalog, KpiKey, KpiSpec, standard_server_kpis
from .quality import QualityIssue, QualityReport, assess_quality
from .store import MetricStore, Subscription
from .timeseries import DAY, MINUTE, TimeSeries, bin_events

__all__ = ["Agent", "ServiceAggregator", "aggregate_series",
           "KpiCatalog", "KpiKey", "KpiSpec", "standard_server_kpis",
           "MetricStore", "Subscription",
           "QualityIssue", "QualityReport", "assess_quality",
           "DAY", "MINUTE", "TimeSeries", "bin_events"]
