"""The per-server monitoring agent.

Paper section 2.2: "The operations team deploys an agent on each server
to monitor the status of each instance and collect the KPIs of all
instances continuously ... by analyzing server log files ... the agent is
able to periodically collect server KPIs."  In this reproduction the
agent pulls per-bin samples from *collectors* (callables supplied by the
synthetic workload) and delivers them to the
:class:`~repro.telemetry.store.MetricStore` — the paper's 1-minute
collection interval with sub-second delivery.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..exceptions import TelemetryError
from .kpi import KpiKey
from .store import MetricStore
from .timeseries import MINUTE, TimeSeries

__all__ = ["Agent"]

#: A collector returns the metric value for the bin starting at ``t``.
Collector = Callable[[int], float]


class Agent:
    """Collects server and instance KPIs on one host and ships them.

    Example:
        >>> store = MetricStore()
        >>> agent = Agent("web-1", store)
        >>> key = agent.add_server_collector("memory_utilization",
        ...                                  lambda t: 42.0)
        >>> agent.collect(0)
        >>> store.series(KpiKey("server", "web-1",
        ...               "memory_utilization")).values.tolist()
        [42.0]
    """

    def __init__(self, hostname: str, store: MetricStore,
                 bin_seconds: int = MINUTE) -> None:
        if not hostname:
            raise TelemetryError("agent hostname must be non-empty")
        self.hostname = hostname
        self.store = store
        self.bin_seconds = bin_seconds
        self._collectors: Dict[KpiKey, Collector] = {}
        self._next_time: Dict[KpiKey, int] = {}

    # -- registration -----------------------------------------------------------

    def add_server_collector(self, metric: str, collector: Collector) -> KpiKey:
        key = KpiKey("server", self.hostname, metric)
        return self._register(key, collector)

    def add_instance_collector(self, service: str, metric: str,
                               collector: Collector) -> KpiKey:
        key = KpiKey("instance", "%s@%s" % (service, self.hostname), metric)
        return self._register(key, collector)

    def _register(self, key: KpiKey, collector: Collector) -> KpiKey:
        if key in self._collectors:
            raise TelemetryError("collector already registered for %s" % key)
        self._collectors[key] = collector
        return key

    @property
    def monitored(self) -> List[KpiKey]:
        return sorted(self._collectors, key=str)

    # -- collection ---------------------------------------------------------------

    def collect(self, at_time: int) -> None:
        """Sample every collector for the bin starting at ``at_time``.

        Collection rounds must advance monotonically per KPI; a repeated
        or out-of-order round is an error, mirroring the append-only
        store contract.
        """
        for key, collector in self._collectors.items():
            expected = self._next_time.get(key)
            if expected is not None and at_time != expected:
                raise TelemetryError(
                    "collection for %s at %d, expected %d"
                    % (key, at_time, expected)
                )
            value = float(collector(at_time))
            if not np.isfinite(value):
                raise TelemetryError(
                    "collector for %s returned a non-finite value" % key
                )
            fragment = TimeSeries(at_time, self.bin_seconds, [value])
            self.store.append(key, fragment)
            self._next_time[key] = at_time + self.bin_seconds

    def collect_range(self, from_time: int, rounds: int) -> None:
        """Run ``rounds`` consecutive collection rounds from ``from_time``."""
        for i in range(rounds):
            self.collect(from_time + i * self.bin_seconds)
