"""Service-KPI aggregation — paper section 2.2.

"A service KPI is an aggregation of all instance KPIs in the service."
Counts (page views, failures) aggregate by sum; intensities (response
delay, utilisation) by mean.  The aggregation rule lives on the
:class:`~repro.telemetry.kpi.KpiSpec`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import TelemetryError
from .kpi import KpiCatalog, KpiKey
from .store import MetricStore
from .timeseries import TimeSeries

__all__ = ["aggregate_series", "aggregate_service_kpi", "ServiceAggregator"]


def aggregate_series(series: Sequence[TimeSeries],
                     how: str = "mean") -> TimeSeries:
    """Pointwise sum or mean of aligned series."""
    series = list(series)
    if not series:
        raise TelemetryError("cannot aggregate zero series")
    if how not in ("mean", "sum"):
        raise TelemetryError("invalid aggregation %r" % how)
    total = series[0]
    for fragment in series[1:]:
        total = total + fragment
    if how == "mean":
        return TimeSeries(total.start, total.bin_seconds,
                          total.values / len(series))
    return total


def aggregate_service_kpi(store: MetricStore, catalog: KpiCatalog,
                          service: str, instance_names: Iterable[str],
                          metric: str, from_time: int,
                          to_time: int) -> TimeSeries:
    """Roll instance measurements up into the service KPI for a range."""
    spec = catalog.get(metric)
    fragments = [
        store.range(KpiKey("instance", name, metric), from_time, to_time)
        for name in instance_names
    ]
    return aggregate_series(fragments, how=spec.aggregation)


class ServiceAggregator:
    """Keeps a store's service KPIs in sync with its instance KPIs.

    The centralised database "stores the service KPIs aggregated based on
    the KPIs of the instances"; in this reproduction the aggregator is
    invoked by the simulation after each collection round.
    """

    def __init__(self, store: MetricStore, catalog: KpiCatalog) -> None:
        self.store = store
        self.catalog = catalog

    def publish(self, service: str, instance_names: Sequence[str],
                metric: str, from_time: int, to_time: int) -> KpiKey:
        """Aggregate a range and append it under the service's key."""
        aggregated = aggregate_service_kpi(
            self.store, self.catalog, service, instance_names, metric,
            from_time, to_time,
        )
        key = KpiKey("service", service, metric)
        self.store.append(key, aggregated)
        return key

    def mean_of(self, keys: Sequence[KpiKey], from_time: int,
                to_time: int) -> np.ndarray:
        """Mean series across KPI keys (the control-group average of
        section 3.2.4: "we use the average of all of the KPIs in the
        control group")."""
        matrix = self.store.window_matrix(keys, from_time, to_time)
        return matrix.mean(axis=0)
