"""KPI definitions and the catalog that types them.

Paper section 2.2 distinguishes three KPI levels:

* **server KPIs** — read from the OS by the per-server agent: CPU
  utilisation, CPU context switch count, memory utilisation, NIC
  throughput;
* **instance KPIs** — emitted by the service process: page view count,
  page view response delay, access failure count, ...;
* **service KPIs** — the aggregation of a service's instance KPIs.

The evaluation additionally characterises each KPI as *seasonal*,
*stationary* or *variable* (section 4.2.1), which drives both the
synthetic generators and the per-type accuracy breakdown of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exceptions import TelemetryError
from ..types import KpiCharacter

__all__ = ["KpiSpec", "KpiCatalog", "standard_server_kpis", "KpiKey"]


@dataclass(frozen=True)
class KpiSpec:
    """Static description of one KPI metric.

    Attributes:
        name: identifier, e.g. ``"memory_utilization"``.
        level: ``"server"``, ``"instance"`` or ``"service"``.
        character: the archetype of its normal behaviour.
        unit: free-form unit label for reports.
        aggregation: how instance series roll up into the service KPI —
            ``"sum"`` for counts (page views), ``"mean"`` for intensities
            (response delay, utilisation).
    """

    name: str
    level: str
    character: KpiCharacter
    unit: str = ""
    aggregation: str = "mean"

    def __post_init__(self) -> None:
        if self.level not in ("server", "instance", "service"):
            raise TelemetryError("invalid KPI level %r" % self.level)
        if self.aggregation not in ("mean", "sum"):
            raise TelemetryError(
                "invalid aggregation %r for KPI %r"
                % (self.aggregation, self.name)
            )


@dataclass(frozen=True)
class KpiKey:
    """Addresses one concrete KPI series: (entity type, entity name, metric).

    ``entity_type`` is ``"server"``, ``"instance"`` or ``"service"``;
    ``entity`` a hostname, ``service@host`` instance name, or service
    name; ``metric`` a :class:`KpiSpec` name.
    """

    entity_type: str
    entity: str
    metric: str

    def __post_init__(self) -> None:
        if self.entity_type not in ("server", "instance", "service"):
            raise TelemetryError("invalid entity type %r" % self.entity_type)
        if not self.entity or not self.metric:
            raise TelemetryError("entity and metric must be non-empty")

    def __str__(self) -> str:
        return "%s:%s:%s" % (self.entity_type, self.entity, self.metric)


class KpiCatalog:
    """Registry of :class:`KpiSpec` by name.

    The operations team defines service/instance KPIs per service (paper
    section 4.1); the catalog lets the rest of the library look up a
    metric's character and aggregation rule.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, KpiSpec] = {}

    def register(self, spec: KpiSpec) -> KpiSpec:
        existing = self._specs.get(spec.name)
        if existing is not None and existing != spec:
            raise TelemetryError(
                "KPI %r already registered with a different spec" % spec.name
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> KpiSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise TelemetryError("unknown KPI %r" % name) from None

    def maybe_get(self, name: str) -> Optional[KpiSpec]:
        return self._specs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def by_level(self, level: str) -> List[KpiSpec]:
        return sorted(
            (s for s in self._specs.values() if s.level == level),
            key=lambda s: s.name,
        )


def standard_server_kpis(catalog: Optional[KpiCatalog] = None) -> KpiCatalog:
    """Register the server KPIs the paper's evaluation uses (section 4.1).

    "We used the CPU context switch count and the memory utilization as
    the KPIs of all the servers": context switches are the canonical
    *variable* KPI, memory utilisation the canonical *stationary* one.
    NIC throughput appears in the Redis case study (Fig. 6).
    """
    catalog = catalog or KpiCatalog()
    catalog.register(KpiSpec(
        name="cpu_context_switch_count", level="server",
        character=KpiCharacter.VARIABLE, unit="1/min",
    ))
    catalog.register(KpiSpec(
        name="memory_utilization", level="server",
        character=KpiCharacter.STATIONARY, unit="%",
    ))
    catalog.register(KpiSpec(
        name="nic_throughput", level="server",
        character=KpiCharacter.VARIABLE, unit="MB/s",
    ))
    catalog.register(KpiSpec(
        name="cpu_utilization", level="server",
        character=KpiCharacter.STATIONARY, unit="%",
    ))
    return catalog
