"""KPI quality screening.

Paper section 2.2: "In large services, there might exist some KPIs of
dubious quality ... FUNNEL detects all KPI changes in the impact set
regardless of the quality of the KPI, and delivers the results to the
operations team", who then judge low-quality KPIs themselves.  This
module automates the judging aid: it does *not* filter anything out of
the pipeline (matching the paper's position), it annotates each series
with the defects an operator would check for:

* **missing data** — runs of non-finite samples;
* **flatlines** — long constant runs (a stuck collector);
* **quantisation** — too few distinct values for the series length;
* **staleness** — the trailing samples are all identical (agent died).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import ParameterError

__all__ = ["QualityIssue", "QualityReport", "assess_quality"]


@dataclass(frozen=True)
class QualityIssue:
    """One detected quality defect.

    Attributes:
        kind: ``"missing"``, ``"flatline"``, ``"quantised"`` or
            ``"stale"``.
        start / end: sample range the issue covers (``end`` exclusive);
            for whole-series issues the full range.
        detail: human-readable specifics.
    """

    kind: str
    start: int
    end: int
    detail: str = ""


@dataclass(frozen=True)
class QualityReport:
    """All issues found in one series plus a summary verdict."""

    n_samples: int
    issues: Tuple[QualityIssue, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({issue.kind for issue in self.issues}))

    def coverage(self) -> float:
        """Fraction of samples untouched by any issue."""
        if self.n_samples == 0:
            return 0.0
        flagged = np.zeros(self.n_samples, dtype=bool)
        for issue in self.issues:
            flagged[issue.start:issue.end] = True
        return float(1.0 - flagged.mean())


def _runs_of(mask: np.ndarray) -> List[Tuple[int, int]]:
    """[start, end) spans of consecutive True values."""
    out: List[Tuple[int, int]] = []
    start = None
    for i, value in enumerate(mask):
        if value and start is None:
            start = i
        elif not value and start is not None:
            out.append((start, i))
            start = None
    if start is not None:
        out.append((start, mask.size))
    return out


def assess_quality(values: Sequence[float], min_flatline: int = 30,
                   min_missing: int = 3, min_distinct_ratio: float = 0.01,
                   stale_tail: int = 15) -> QualityReport:
    """Annotate one KPI series with quality issues.

    Args:
        values: the samples (non-finite entries mark missing data — this
            is the one entry point in the library that accepts them).
        min_flatline: constant-run length that counts as a flatline.
        min_missing: missing-run length worth reporting.
        min_distinct_ratio: below ``distinct/length`` the series is
            flagged as quantised (subject to a floor of 5 distinct
            values, so short series are not misflagged).
        stale_tail: trailing constant-run length flagged as staleness.
    """
    x = np.asarray(values, dtype=np.float64).ravel()
    if x.size == 0:
        raise ParameterError("cannot assess an empty series")
    issues: List[QualityIssue] = []

    missing = ~np.isfinite(x)
    for start, end in _runs_of(missing):
        if end - start >= min_missing:
            issues.append(QualityIssue(
                kind="missing", start=start, end=end,
                detail="%d consecutive missing samples" % (end - start),
            ))

    finite = np.where(np.isfinite(x), x, np.nan)
    same_as_prev = np.zeros(x.size, dtype=bool)
    same_as_prev[1:] = finite[1:] == finite[:-1]
    for start, end in _runs_of(same_as_prev):
        run_start = start - 1          # include the first equal sample
        if end - run_start >= min_flatline:
            issues.append(QualityIssue(
                kind="flatline", start=run_start, end=end,
                detail="constant at %r for %d samples"
                       % (float(finite[start]), end - run_start),
            ))

    finite_only = x[np.isfinite(x)]
    if finite_only.size:
        distinct = np.unique(finite_only).size
        if (distinct < max(5, int(min_distinct_ratio * finite_only.size))
                and distinct < finite_only.size):
            issues.append(QualityIssue(
                kind="quantised", start=0, end=x.size,
                detail="%d distinct values over %d samples"
                       % (distinct, finite_only.size),
            ))

    if x.size >= stale_tail:
        tail = finite[-stale_tail:]
        if np.all(tail == tail[0]):
            already = any(i.kind == "flatline" and i.end == x.size
                          for i in issues)
            if not already:
                issues.append(QualityIssue(
                    kind="stale", start=x.size - stale_tail, end=x.size,
                    detail="trailing %d samples identical" % stale_tail,
                ))

    return QualityReport(n_samples=int(x.size), issues=tuple(issues))
