"""The centralised metric store and its subscription tool.

Paper section 2.2: agents deliver KPI measurements to "a centralized
Hadoop-based database, which also stores the service KPIs aggregated
based on the KPIs of the instances.  The database also provides a
subscription tool for other systems, such as FUNNEL, to periodically
receive the subscribed measurements."

:class:`MetricStore` is the in-memory stand-in: it keys
:class:`~repro.telemetry.timeseries.TimeSeries` fragments by
:class:`~repro.telemetry.kpi.KpiKey`, merges appends, serves range
queries, and pushes appended data to subscribers (FUNNEL's online
pipeline registers one subscription per impact set).

Appends are amortized O(1) per fragment: each key owns a geometrically
over-allocated column buffer, so a KPI receiving one bin per minute for
a day costs one reallocation every doubling instead of a full-history
copy per push.  The materialised :class:`TimeSeries` view is cached per
key and invalidated by the next append.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..exceptions import TelemetryError
from .kpi import KpiKey
from .timeseries import MINUTE, TimeSeries

__all__ = ["MetricStore", "Subscription"]

Callback = Callable[[KpiKey, TimeSeries], None]
BatchCallback = Callable[[List], None]

#: Initial column capacity, in bins.
_MIN_CAPACITY = 64


@dataclass(eq=False)
class Subscription:
    """A standing request for pushes of appended measurements.

    Identity semantics (``eq=False``): two subscriptions with the same
    keys and callback are still distinct registrations, so cancelling
    one can never prune the other from the store's push list.

    ``batch_callback``, when set, receives one call with the matched
    ``[(key, fragment), ...]`` sublist of a batched append instead of
    one ``callback`` call per fragment — the fused ingest plane's
    fan-out.  Per-fragment appends always use ``callback``.
    """

    keys: frozenset
    callback: Callback
    active: bool = True
    batch_callback: Optional[BatchCallback] = None
    _store: Optional["MetricStore"] = field(default=None, repr=False,
                                            compare=False)

    def cancel(self) -> None:
        """Deactivate and unregister: a cancelled subscription costs the
        store nothing — it is pruned from the push list immediately, not
        merely skipped on every future append."""
        self.active = False
        if self._store is not None:
            self._store._drop(self)
            self._store = None


class _Column:
    """One key's growable storage: start time + over-allocated values."""

    __slots__ = ("start", "values", "length")

    def __init__(self, start: int, values: np.ndarray) -> None:
        self.start = start
        self.length = int(values.size)
        capacity = max(_MIN_CAPACITY, 2 * self.length)
        self.values = np.empty(capacity, dtype=np.float64)
        self.values[:self.length] = values

    def extend(self, values: np.ndarray) -> None:
        needed = self.length + int(values.size)
        if needed > self.values.size:
            grown = np.empty(max(2 * self.values.size, needed),
                             dtype=np.float64)
            grown[:self.length] = self.values[:self.length]
            self.values = grown
        self.values[self.length:needed] = values
        self.length = needed


class MetricStore:
    """In-memory, append-only KPI database with push subscriptions.

    Example:
        >>> store = MetricStore()
        >>> key = KpiKey("server", "web-1", "memory_utilization")
        >>> store.append(key, TimeSeries(0, 60, [10.0, 11.0]))
        >>> store.append(key, TimeSeries(120, 60, [12.0]))
        >>> store.series(key).values.tolist()
        [10.0, 11.0, 12.0]
    """

    def __init__(self, bin_seconds: int = MINUTE) -> None:
        self.bin_seconds = bin_seconds
        self._columns: Dict[KpiKey, _Column] = {}
        self._views: Dict[KpiKey, TimeSeries] = {}
        self._subscriptions: List[Subscription] = []
        #: lifetime ingest totals (health telemetry reads the deltas)
        self.appended_fragments = 0
        self.appended_bins = 0

    # -- writes ---------------------------------------------------------------

    def append(self, key: KpiKey, fragment: TimeSeries) -> None:
        """Append ``fragment`` to the series stored under ``key``.

        The fragment must use the store's bin width and continue the
        stored series exactly (same start for a new key, ``end`` of the
        stored data otherwise) — agents emit contiguous measurements.
        """
        self._ingest(key, fragment)
        self._push(key, fragment)

    def append_batch(self, items: List) -> None:
        """Append one tick's ``[(key, fragment), ...]`` in a single call.

        Storage-wise this is :meth:`append` per item — same validation,
        same counters.  The push fan-out differs: each subscription is
        visited **once** with its matched sublist, so a subscriber
        watching hundreds of keys pays one Python call per tick instead
        of one per fragment; subscriptions with a ``batch_callback``
        receive the sublist whole.  Delivery order within a
        subscription is the item order, so per-key fragment order — the
        only order the live queues preserve anyway — is unchanged.
        """
        for key, fragment in items:
            self._ingest(key, fragment)
        if not items:
            return
        for sub in tuple(self._subscriptions):
            if not sub.active:
                continue
            matched = [(key, fragment) for key, fragment in items
                       if key in sub.keys]
            if not matched:
                continue
            if sub.batch_callback is not None:
                sub.batch_callback(matched)
            else:
                for key, fragment in matched:
                    sub.callback(key, fragment)

    def _ingest(self, key: KpiKey, fragment: TimeSeries) -> None:
        """Validate and store one fragment (no subscription fan-out)."""
        if fragment.bin_seconds != self.bin_seconds:
            raise TelemetryError(
                "fragment bin width %d != store bin width %d"
                % (fragment.bin_seconds, self.bin_seconds)
            )
        column = self._columns.get(key)
        if column is None:
            self._columns[key] = _Column(fragment.start, fragment.values)
        else:
            end = column.start + column.length * self.bin_seconds
            if fragment.start != end:
                raise TelemetryError(
                    "fragment for %s starts at %d, expected %d"
                    % (key, fragment.start, end)
                )
            column.extend(fragment.values)
        self.appended_fragments += 1
        self.appended_bins += len(fragment)
        self._views.pop(key, None)

    def _push(self, key: KpiKey, fragment: TimeSeries) -> None:
        # Snapshot: a callback may subscribe or cancel (mutating the
        # list) while this append is being delivered.
        for sub in tuple(self._subscriptions):
            if sub.active and key in sub.keys:
                sub.callback(key, fragment)

    # -- reads ---------------------------------------------------------------

    def __contains__(self, key: KpiKey) -> bool:
        return key in self._columns

    def keys(self) -> List[KpiKey]:
        return sorted(self._columns, key=str)

    def series(self, key: KpiKey) -> TimeSeries:
        view = self._views.get(key)
        if view is not None:
            return view
        column = self._columns.get(key)
        if column is None:
            raise TelemetryError("no measurements stored for %s" % key)
        # Materialise an owning copy: handing out a slice of the live
        # column buffer would let any caller mutation corrupt the store
        # (``as_float_array`` is a no-op on a contiguous float64 view).
        # The copy is additionally frozen because the view is cached and
        # shared between callers until the next append.
        view = TimeSeries(start=column.start, bin_seconds=self.bin_seconds,
                          values=column.values[:column.length].copy())
        view.values.flags.writeable = False
        self._views[key] = view
        return view

    def maybe_series(self, key: KpiKey) -> Optional[TimeSeries]:
        if key not in self._columns:
            return None
        return self.series(key)

    def range(self, key: KpiKey, from_time: int, to_time: int) -> TimeSeries:
        """Measurements of ``key`` over ``[from_time, to_time)``."""
        return self.series(key).slice_time(from_time, to_time)

    def window_matrix(self, keys: Iterable[KpiKey], from_time: int,
                      to_time: int) -> np.ndarray:
        """Stack aligned range queries into a ``(len(keys), bins)`` matrix.

        This is the shape the DiD panels consume: one row per
        server/instance, one column per time-bin.
        """
        rows = []
        expected = (to_time - from_time) // self.bin_seconds
        for key in keys:
            fragment = self.range(key, from_time, to_time)
            if len(fragment) != expected:
                raise TelemetryError(
                    "%s covers only %d of %d requested bins"
                    % (key, len(fragment), expected)
                )
            rows.append(fragment.values)
        if not rows:
            raise TelemetryError("window_matrix needs at least one key")
        return np.vstack(rows)

    # -- subscriptions -----------------------------------------------------------

    def subscribe(self, keys: Iterable[KpiKey], callback: Callback,
                  batch_callback: Optional[BatchCallback] = None
                  ) -> Subscription:
        """Register ``callback`` for every future append to ``keys``.

        ``batch_callback`` opts the subscription into whole-sublist
        delivery on :meth:`append_batch` (per-fragment appends still go
        through ``callback``).
        """
        sub = Subscription(keys=frozenset(keys), callback=callback,
                           batch_callback=batch_callback, _store=self)
        if not sub.keys:
            raise TelemetryError("subscription must name at least one KPI")
        self._subscriptions.append(sub)
        return sub

    def _drop(self, sub: Subscription) -> None:
        try:
            self._subscriptions.remove(sub)
        except ValueError:
            pass

    def subscription_count(self) -> int:
        return sum(1 for s in self._subscriptions if s.active)
