"""The centralised metric store and its subscription tool.

Paper section 2.2: agents deliver KPI measurements to "a centralized
Hadoop-based database, which also stores the service KPIs aggregated
based on the KPIs of the instances.  The database also provides a
subscription tool for other systems, such as FUNNEL, to periodically
receive the subscribed measurements."

:class:`MetricStore` is the in-memory stand-in: it keys
:class:`~repro.telemetry.timeseries.TimeSeries` fragments by
:class:`~repro.telemetry.kpi.KpiKey`, merges appends, serves range
queries, and pushes appended data to subscribers (FUNNEL's online
pipeline registers one subscription per impact set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..exceptions import TelemetryError
from .kpi import KpiKey
from .timeseries import MINUTE, TimeSeries

__all__ = ["MetricStore", "Subscription"]

Callback = Callable[[KpiKey, TimeSeries], None]


@dataclass
class Subscription:
    """A standing request for pushes of appended measurements."""

    keys: frozenset
    callback: Callback
    active: bool = True

    def cancel(self) -> None:
        self.active = False


class MetricStore:
    """In-memory, append-only KPI database with push subscriptions.

    Example:
        >>> store = MetricStore()
        >>> key = KpiKey("server", "web-1", "memory_utilization")
        >>> store.append(key, TimeSeries(0, 60, [10.0, 11.0]))
        >>> store.append(key, TimeSeries(120, 60, [12.0]))
        >>> store.series(key).values.tolist()
        [10.0, 11.0, 12.0]
    """

    def __init__(self, bin_seconds: int = MINUTE) -> None:
        self.bin_seconds = bin_seconds
        self._series: Dict[KpiKey, TimeSeries] = {}
        self._subscriptions: List[Subscription] = []

    # -- writes ---------------------------------------------------------------

    def append(self, key: KpiKey, fragment: TimeSeries) -> None:
        """Append ``fragment`` to the series stored under ``key``.

        The fragment must use the store's bin width and continue the
        stored series exactly (same start for a new key, ``end`` of the
        stored data otherwise) — agents emit contiguous measurements.
        """
        if fragment.bin_seconds != self.bin_seconds:
            raise TelemetryError(
                "fragment bin width %d != store bin width %d"
                % (fragment.bin_seconds, self.bin_seconds)
            )
        existing = self._series.get(key)
        if existing is None:
            self._series[key] = fragment
        else:
            if fragment.start != existing.end:
                raise TelemetryError(
                    "fragment for %s starts at %d, expected %d"
                    % (key, fragment.start, existing.end)
                )
            self._series[key] = TimeSeries(
                start=existing.start,
                bin_seconds=self.bin_seconds,
                values=np.concatenate([existing.values, fragment.values]),
            )
        self._push(key, fragment)

    def _push(self, key: KpiKey, fragment: TimeSeries) -> None:
        for sub in self._subscriptions:
            if sub.active and key in sub.keys:
                sub.callback(key, fragment)

    # -- reads ---------------------------------------------------------------

    def __contains__(self, key: KpiKey) -> bool:
        return key in self._series

    def keys(self) -> List[KpiKey]:
        return sorted(self._series, key=str)

    def series(self, key: KpiKey) -> TimeSeries:
        try:
            return self._series[key]
        except KeyError:
            raise TelemetryError("no measurements stored for %s" % key) from None

    def maybe_series(self, key: KpiKey) -> Optional[TimeSeries]:
        return self._series.get(key)

    def range(self, key: KpiKey, from_time: int, to_time: int) -> TimeSeries:
        """Measurements of ``key`` over ``[from_time, to_time)``."""
        return self.series(key).slice_time(from_time, to_time)

    def window_matrix(self, keys: Iterable[KpiKey], from_time: int,
                      to_time: int) -> np.ndarray:
        """Stack aligned range queries into a ``(len(keys), bins)`` matrix.

        This is the shape the DiD panels consume: one row per
        server/instance, one column per time-bin.
        """
        rows = []
        expected = (to_time - from_time) // self.bin_seconds
        for key in keys:
            fragment = self.range(key, from_time, to_time)
            if len(fragment) != expected:
                raise TelemetryError(
                    "%s covers only %d of %d requested bins"
                    % (key, len(fragment), expected)
                )
            rows.append(fragment.values)
        if not rows:
            raise TelemetryError("window_matrix needs at least one key")
        return np.vstack(rows)

    # -- subscriptions -----------------------------------------------------------

    def subscribe(self, keys: Iterable[KpiKey],
                  callback: Callback) -> Subscription:
        """Register ``callback`` for every future append to ``keys``."""
        sub = Subscription(keys=frozenset(keys), callback=callback)
        if not sub.keys:
            raise TelemetryError("subscription must name at least one KPI")
        self._subscriptions.append(sub)
        return sub

    def subscription_count(self) -> int:
        return sum(1 for s in self._subscriptions if s.active)
