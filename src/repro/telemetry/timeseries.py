"""Time-binned KPI series.

Paper section 3.1: "A time-series is constructed for each KPI by dividing
the original event series into equal time-bins.  One min is used as the
time-bin in FUNNEL."  :class:`TimeSeries` is that object: a start time, a
bin width, and one value per bin, with the alignment/slicing/resampling
operations the detectors and the DiD panels need.

Timestamps are plain integers (seconds since an arbitrary epoch) —
simulation time, not wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..exceptions import ParameterError, TelemetryError
from ..types import as_float_array

__all__ = ["TimeSeries", "bin_events", "MINUTE", "DAY"]

#: One minute, in the integer time unit used throughout (seconds).
MINUTE = 60
#: One day, in seconds.
DAY = 24 * 60 * MINUTE


@dataclass(frozen=True)
class TimeSeries:
    """An equally-binned series: ``values[i]`` covers
    ``[start + i*bin_seconds, start + (i+1)*bin_seconds)``.

    Example:
        >>> ts = TimeSeries(start=0, bin_seconds=60, values=[1.0, 2.0, 3.0])
        >>> ts.index_of(119)
        1
        >>> ts.slice_time(60, 180).values.tolist()
        [2.0, 3.0]
    """

    start: int
    bin_seconds: int
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0:
            raise ParameterError(
                "bin_seconds must be positive, got %d" % self.bin_seconds
            )
        object.__setattr__(self, "values", as_float_array(self.values))

    # -- basic geometry ------------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def end(self) -> int:
        """One past the last covered timestamp."""
        return self.start + len(self) * self.bin_seconds

    def timestamps(self) -> np.ndarray:
        """The left edge of every bin."""
        return self.start + np.arange(len(self)) * self.bin_seconds

    def index_of(self, timestamp: int) -> int:
        """The bin index covering ``timestamp``.

        Raises:
            TelemetryError: when the timestamp is outside the series.
        """
        if not self.start <= timestamp < self.end:
            raise TelemetryError(
                "timestamp %d outside series [%d, %d)"
                % (timestamp, self.start, self.end)
            )
        return (timestamp - self.start) // self.bin_seconds

    # -- transforms ----------------------------------------------------------

    def slice_time(self, from_time: int, to_time: int) -> "TimeSeries":
        """The sub-series covering ``[from_time, to_time)``.

        Bounds are clamped to the series extent; the result may be empty.
        Bounds must be bin-aligned relative to ``start``.
        """
        for bound in (from_time, to_time):
            if (bound - self.start) % self.bin_seconds:
                raise TelemetryError(
                    "bound %d is not aligned to %d-second bins starting "
                    "at %d" % (bound, self.bin_seconds, self.start)
                )
        lo = max(0, (from_time - self.start) // self.bin_seconds)
        hi = min(len(self), (to_time - self.start) // self.bin_seconds)
        hi = max(lo, hi)
        return TimeSeries(
            start=self.start + lo * self.bin_seconds,
            bin_seconds=self.bin_seconds,
            values=self.values[lo:hi].copy(),
        )

    def slice_around(self, timestamp: int, before: int,
                     after: int) -> "TimeSeries":
        """``before`` bins before ``timestamp``'s bin plus ``after`` from it."""
        pivot = self.start + self.index_of(timestamp) * self.bin_seconds
        return self.slice_time(pivot - before * self.bin_seconds,
                               pivot + after * self.bin_seconds)

    def resample(self, factor: int) -> "TimeSeries":
        """Aggregate ``factor`` consecutive bins into one by averaging.

        Trailing bins that do not fill a block are dropped.
        """
        if factor < 1:
            raise ParameterError("factor must be >= 1, got %d" % factor)
        if factor == 1:
            # An owning copy, like every other transform: returning
            # ``self`` would alias the caller's buffer and re-open the
            # store-view corruption hazard for the factor-1 fast path.
            return TimeSeries(self.start, self.bin_seconds,
                              self.values.copy())
        usable = (len(self) // factor) * factor
        blocks = self.values[:usable].reshape(-1, factor)
        return TimeSeries(
            start=self.start,
            bin_seconds=self.bin_seconds * factor,
            values=blocks.mean(axis=1),
        )

    def shifted(self, seconds: int) -> "TimeSeries":
        """The same values relabelled ``seconds`` later (owning copy)."""
        return TimeSeries(self.start + seconds, self.bin_seconds,
                          self.values.copy())

    # -- arithmetic ------------------------------------------------------------

    def _check_aligned(self, other: "TimeSeries") -> None:
        if (self.start != other.start
                or self.bin_seconds != other.bin_seconds
                or len(self) != len(other)):
            raise TelemetryError(
                "series are not aligned: [%d,+%dx%d] vs [%d,+%dx%d]"
                % (self.start, len(self), self.bin_seconds,
                   other.start, len(other), other.bin_seconds)
            )

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        self._check_aligned(other)
        return TimeSeries(self.start, self.bin_seconds,
                          self.values + other.values)

    @staticmethod
    def average(series: Sequence["TimeSeries"]) -> "TimeSeries":
        """Pointwise mean of aligned series (service-KPI aggregation)."""
        series = list(series)
        if not series:
            raise TelemetryError("cannot average zero series")
        first = series[0]
        for other in series[1:]:
            first._check_aligned(other)
        stacked = np.vstack([s.values for s in series])
        return TimeSeries(first.start, first.bin_seconds,
                          stacked.mean(axis=0))


def bin_events(event_times: Iterable[int], start: int, end: int,
               bin_seconds: int = MINUTE,
               weights: Optional[Sequence[float]] = None) -> TimeSeries:
    """Divide an event stream into equal time-bins (paper section 3.1).

    Args:
        event_times: timestamps of individual events (e.g. page views).
        start, end: the covered interval ``[start, end)``; events outside
            it are dropped.
        bin_seconds: bin width (1 minute by default).
        weights: optional per-event weights (e.g. response delays); the
            result is then the per-bin weight *sum*, not the event count.

    Returns:
        A :class:`TimeSeries` of per-bin counts (or weight sums).
    """
    if end <= start:
        raise ParameterError("end must exceed start")
    if (end - start) % bin_seconds:
        raise ParameterError(
            "interval length %d is not a multiple of bin width %d"
            % (end - start, bin_seconds)
        )
    times = np.fromiter(event_times, dtype=np.int64)
    n_bins = (end - start) // bin_seconds
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != times.shape:
            raise ParameterError("weights must match event_times in length")
    keep = (times >= start) & (times < end)
    times = times[keep]
    bins = (times - start) // bin_seconds
    if weights is None:
        counts = np.bincount(bins, minlength=n_bins).astype(np.float64)
    else:
        counts = np.bincount(bins, weights=weights[keep], minlength=n_bins)
    return TimeSeries(start=start, bin_seconds=bin_seconds, values=counts)
