"""Service/server/instance topology and impact-set identification."""

from .entities import Fleet, Instance, Server, Service
from .graph import ServiceGraph
from .impact import ImpactSet, identify_impact_set
from .naming import derive_relationships, validate_service_name

__all__ = ["Fleet", "Instance", "Server", "Service", "ServiceGraph",
           "ImpactSet", "identify_impact_set", "derive_relationships",
           "validate_service_name"]
