"""Services, servers, instances and the fleet that contains them.

Paper section 2.2 and Fig. 1: a *service* runs as one *instance*
(process) per *server*; an agent on each server collects server KPIs
(CPU context switch count, memory utilisation, NIC throughput, ...) and
instance KPIs (page view count, response delay, ...); a *service KPI* is
the aggregation of the service's instance KPIs.

The :class:`Fleet` is the registry the rest of the library works
against: impact-set identification queries it for a service's instances
and servers; the synthetic workload generators populate it; the
deployment simulation mutates it as rollouts progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import TopologyError
from .graph import ServiceGraph
from .naming import derive_relationships, validate_service_name

__all__ = ["Server", "Instance", "Service", "Fleet"]


@dataclass(frozen=True)
class Server:
    """A physical/virtual machine.

    In the studied environment a server is dedicated to one service
    (section 1: "a server is usually dedicated to a specific service in
    our context").
    """

    hostname: str
    service: str

    def __post_init__(self) -> None:
        if not self.hostname:
            raise TopologyError("server hostname must be non-empty")
        validate_service_name(self.service)


@dataclass(frozen=True)
class Instance:
    """A process of a specific service on a specific server."""

    service: str
    hostname: str

    def __post_init__(self) -> None:
        validate_service_name(self.service)
        if not self.hostname:
            raise TopologyError("instance hostname must be non-empty")

    @property
    def name(self) -> str:
        return "%s@%s" % (self.service, self.hostname)


@dataclass
class Service:
    """A named service and the hostnames it is deployed on."""

    name: str
    hostnames: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        validate_service_name(self.name)

    @property
    def instances(self) -> List[Instance]:
        return [Instance(self.name, host) for host in self.hostnames]


class Fleet:
    """Registry of services, servers and instances with their relationships.

    Example:
        >>> fleet = Fleet()
        >>> _ = fleet.add_service("search.frontend", ["fe-1", "fe-2"])
        >>> _ = fleet.add_service("search.backend", ["be-1"])
        >>> fleet.relationships.has_edge("search.backend", "search.frontend")
        True
        >>> [i.name for i in fleet.instances_of("search.frontend")]
        ['search.frontend@fe-1', 'search.frontend@fe-2']
    """

    def __init__(self, explicit_edges: Iterable[Tuple[str, str]] = ()) -> None:
        self._services: Dict[str, Service] = {}
        self._servers: Dict[str, Server] = {}
        self._explicit_edges: List[Tuple[str, str]] = list(explicit_edges)
        self._relationships: Optional[ServiceGraph] = None

    # -- mutation ----------------------------------------------------------

    def add_service(self, name: str, hostnames: Iterable[str]) -> Service:
        """Register a service deployed on ``hostnames``.

        Each hostname becomes a :class:`Server` dedicated to the service;
        a hostname already owned by a different service is an error.
        """
        validate_service_name(name)
        if name in self._services:
            raise TopologyError("service %r already registered" % name)
        hostnames = list(hostnames)
        if len(set(hostnames)) != len(hostnames):
            raise TopologyError("duplicate hostnames for service %r" % name)
        for host in hostnames:
            owner = self._servers.get(host)
            if owner is not None and owner.service != name:
                raise TopologyError(
                    "server %r already dedicated to %r" % (host, owner.service)
                )
        service = Service(name, hostnames)
        self._services[name] = service
        for host in hostnames:
            self._servers[host] = Server(host, name)
        self._relationships = None      # invalidate cache
        return service

    def add_relationship(self, source: str, target: str) -> None:
        """Record an explicit service relationship (request/response flow)."""
        for name in (source, target):
            if name not in self._services:
                raise TopologyError("unknown service %r" % name)
        self._explicit_edges.append((source, target))
        self._relationships = None

    # -- queries ------------------------------------------------------------

    @property
    def service_names(self) -> List[str]:
        return sorted(self._services)

    @property
    def server_names(self) -> List[str]:
        return sorted(self._servers)

    def service(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise TopologyError("unknown service %r" % name) from None

    def server(self, hostname: str) -> Server:
        try:
            return self._servers[hostname]
        except KeyError:
            raise TopologyError("unknown server %r" % hostname) from None

    def instances_of(self, service_name: str) -> List[Instance]:
        return self.service(service_name).instances

    def servers_of(self, service_name: str) -> List[Server]:
        return [self._servers[h] for h in self.service(service_name).hostnames]

    def __contains__(self, service_name: str) -> bool:
        return service_name in self._services

    def __len__(self) -> int:
        return len(self._services)

    @property
    def relationships(self) -> ServiceGraph:
        """The relationship graph (naming-derived + explicit), cached."""
        if self._relationships is None:
            self._relationships = derive_relationships(
                self.service_names, self._explicit_edges
            )
        return self._relationships
