"""A small directed graph for service relationships.

The service-relationship structure FUNNEL consumes (paper section 3.1,
Fig. 4) is tiny — tens of services with request/response edges — so the
library carries its own dependency-free digraph rather than pulling in a
graph framework.  Edges are directed ("Service A sends requests and
responses to Service B"), but impact propagates along relationships in
either direction, so the traversals used for impact-set identification
treat the graph as undirected unless asked otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..exceptions import TopologyError

__all__ = ["ServiceGraph"]


class ServiceGraph:
    """Directed graph over hashable node names with reachability queries."""

    def __init__(self) -> None:
        self._successors: Dict[str, Set[str]] = {}
        self._predecessors: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Register ``node``; adding an existing node is a no-op."""
        self._successors.setdefault(node, set())
        self._predecessors.setdefault(node, set())

    def add_edge(self, source: str, target: str) -> None:
        """Add the relationship ``source -> target``.

        Self-loops are rejected: a service is trivially related to itself
        and a loop would only distort traversals.
        """
        if source == target:
            raise TopologyError("self-relationship on %r" % source)
        self.add_node(source)
        self.add_node(target)
        self._successors[source].add(target)
        self._predecessors[target].add(source)

    def remove_edge(self, source: str, target: str) -> None:
        if not self.has_edge(source, target):
            raise TopologyError("no edge %r -> %r" % (source, target))
        self._successors[source].discard(target)
        self._predecessors[target].discard(source)

    # -- queries -------------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self._successors

    def __len__(self) -> int:
        return len(self._successors)

    def __iter__(self) -> Iterator[str]:
        return iter(self._successors)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._successors)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        return sorted(
            (src, dst)
            for src, targets in self._successors.items()
            for dst in targets
        )

    def has_edge(self, source: str, target: str) -> bool:
        return target in self._successors.get(source, ())

    def successors(self, node: str) -> Set[str]:
        self._require(node)
        return set(self._successors[node])

    def predecessors(self, node: str) -> Set[str]:
        self._require(node)
        return set(self._predecessors[node])

    def neighbors(self, node: str) -> Set[str]:
        """Nodes related to ``node`` in either direction."""
        self._require(node)
        return self._successors[node] | self._predecessors[node]

    def degree(self, node: str) -> int:
        return len(self.neighbors(node))

    # -- traversals ------------------------------------------------------------

    def reachable(self, start: str, directed: bool = False,
                  max_hops: Optional[int] = None) -> Set[str]:
        """Every node reachable from ``start``, excluding ``start`` itself.

        Args:
            start: traversal origin.
            directed: follow only outgoing edges if True; by default the
                traversal is undirected, matching the paper's notion that
                impact flows along relationships both ways (Fig. 4: a
                change in A affects B, C and D; B and D are A's direct
                relations, C is related to B).
            max_hops: optional traversal radius.
        """
        self._require(start)
        frontier = deque([(start, 0)])
        seen = {start}
        result: Set[str] = set()
        while frontier:
            node, hops = frontier.popleft()
            if max_hops is not None and hops >= max_hops:
                continue
            step = (self._successors[node] if directed
                    else self._successors[node] | self._predecessors[node])
            for nxt in step:
                if nxt not in seen:
                    seen.add(nxt)
                    result.add(nxt)
                    frontier.append((nxt, hops + 1))
        return result

    def connected_component(self, start: str) -> Set[str]:
        """The undirected component containing ``start`` (inclusive)."""
        return self.reachable(start, directed=False) | {start}

    def _require(self, node: str) -> None:
        if node not in self._successors:
            raise TopologyError("unknown service %r" % node)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]]) -> "ServiceGraph":
        graph = cls()
        for source, target in edges:
            graph.add_edge(source, target)
        return graph
