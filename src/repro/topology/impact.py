"""Impact-set identification — paper section 3.1 and Fig. 4.

For a software change deployed on a subset of a service's servers, the
*impact set* — the entities whose KPIs FUNNEL must assess — consists of

* the **tservers**: the servers named in the change log;
* the **tinstances**: the changed service's instances on those servers;
* the **changed service** itself; and
* the **affected services**: every service reachable from the changed
  service through the relationship graph (Fig. 4: for a change in A with
  A-B, A-D and B-C relationships, the affected services are B, C and D).

Instances of affected services are deliberately *not* included: load
balancing makes it unlikely that one instance of an affected service is
individually impacted, so the affected service's aggregate KPI suffices.

The complementary control entities are identified at the same time:

* the **cservers**: the same service's servers without the change;
* the **cinstances**: the instances on those servers.

Both are empty under Full Launching, which is what routes FUNNEL's
decision flow (Fig. 3, step 7) to the historical/seasonal control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from ..exceptions import TopologyError
from .entities import Fleet, Instance, Server

__all__ = ["ImpactSet", "identify_impact_set"]


@dataclass(frozen=True)
class ImpactSet:
    """The entities to assess for one software change, plus its controls."""

    changed_service: str
    tservers: Tuple[Server, ...]
    tinstances: Tuple[Instance, ...]
    cservers: Tuple[Server, ...]
    cinstances: Tuple[Instance, ...]
    affected_services: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def dark_launched(self) -> bool:
        """True when a control group of peers exists (Dark Launching)."""
        return bool(self.cservers)

    @property
    def treated_hostnames(self) -> Tuple[str, ...]:
        return tuple(s.hostname for s in self.tservers)

    @property
    def control_hostnames(self) -> Tuple[str, ...]:
        return tuple(s.hostname for s in self.cservers)

    def monitored_entities(self) -> List[Tuple[str, str]]:
        """Every ``(entity_type, entity_name)`` FUNNEL must watch.

        Entity types are ``"server"``, ``"instance"`` and ``"service"``;
        the changed service and each affected service appear as services.
        """
        out: List[Tuple[str, str]] = []
        out.extend(("server", s.hostname) for s in self.tservers)
        out.extend(("instance", i.name) for i in self.tinstances)
        out.append(("service", self.changed_service))
        out.extend(("service", name) for name in sorted(self.affected_services))
        return out


def identify_impact_set(fleet: Fleet, service_name: str,
                        treated_hostnames: Iterable[str]) -> ImpactSet:
    """Identify the impact set of a change on ``service_name``.

    Args:
        fleet: the fleet registry holding services and relationships.
        service_name: the changed service.
        treated_hostnames: the servers the change log says the change was
            deployed on; must all be servers of ``service_name``.

    Raises:
        TopologyError: for an unknown service, an empty deployment, or a
            hostname that does not belong to the changed service.
    """
    service = fleet.service(service_name)
    treated = list(dict.fromkeys(treated_hostnames))
    if not treated:
        raise TopologyError(
            "software change on %r deployed on no servers" % service_name
        )
    known = set(service.hostnames)
    for host in treated:
        if host not in known:
            raise TopologyError(
                "server %r does not run service %r" % (host, service_name)
            )

    control = [h for h in service.hostnames if h not in set(treated)]
    affected = fleet.relationships.reachable(service_name, directed=False)

    return ImpactSet(
        changed_service=service_name,
        tservers=tuple(Server(h, service_name) for h in treated),
        tinstances=tuple(Instance(service_name, h) for h in treated),
        cservers=tuple(Server(h, service_name) for h in control),
        cinstances=tuple(Instance(service_name, h) for h in control),
        affected_services=frozenset(affected),
    )
