"""Service naming rules and the relationships derived from them.

Paper section 3.1: "the operations team names the services based on the
service hierarchy ... FUNNEL derives the relationship among services
using the naming rules."  This module models that practice:

* service names are dot-separated paths in a hierarchy, e.g.
  ``search.frontend.query`` is a child of ``search.frontend``;
* sibling and parent/child services in the hierarchy exchange requests by
  construction (a frontend talks to its backends), so naming alone yields
  a useful relationship graph that explicit edges can then extend.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Tuple

from ..exceptions import TopologyError
from .graph import ServiceGraph

__all__ = [
    "validate_service_name",
    "parent_of",
    "ancestors_of",
    "hierarchy_distance",
    "derive_relationships",
]

_NAME_SEGMENT = re.compile(r"^[a-z][a-z0-9_-]*$")


def validate_service_name(name: str) -> str:
    """Check a dot-separated service name; returns it unchanged.

    Raises:
        TopologyError: for empty names or malformed segments.
    """
    if not name:
        raise TopologyError("service name must be non-empty")
    for segment in name.split("."):
        if not _NAME_SEGMENT.match(segment):
            raise TopologyError(
                "invalid segment %r in service name %r" % (segment, name)
            )
    return name


def parent_of(name: str) -> str:
    """The immediate parent of ``name`` in the hierarchy, or ``""``."""
    validate_service_name(name)
    head, _, _ = name.rpartition(".")
    return head


def ancestors_of(name: str) -> List[str]:
    """All strict ancestors of ``name``, nearest first."""
    out = []
    current = parent_of(name)
    while current:
        out.append(current)
        current = parent_of(current)
    return out


def hierarchy_distance(a: str, b: str) -> int:
    """Tree distance between two names in the naming hierarchy."""
    validate_service_name(a)
    validate_service_name(b)
    pa = a.split(".")
    pb = b.split(".")
    common = 0
    for xa, xb in zip(pa, pb):
        if xa != xb:
            break
        common += 1
    return (len(pa) - common) + (len(pb) - common)


def derive_relationships(names: Sequence[str],
                         explicit_edges: Iterable[Tuple[str, str]] = ()
                         ) -> ServiceGraph:
    """Build the service-relationship graph from names plus explicit edges.

    Naming rules contribute edges between services whose names are
    hierarchy-adjacent: a parent is related to each of its children
    (``search`` -> ``search.frontend``), and siblings under the same
    parent are related to each other (``search.frontend`` <->
    ``search.backend``) since a service tier typically fans out to its
    peer tiers.  Explicit edges (from the operations team's relationship
    inventory) are merged on top.

    Only the *given* names become nodes: a parent that is not itself a
    deployed service does not appear (its children are still linked as
    siblings).
    """
    graph = ServiceGraph()
    known = set()
    for name in names:
        validate_service_name(name)
        if name in known:
            raise TopologyError("duplicate service name %r" % name)
        known.add(name)
        graph.add_node(name)

    by_parent: dict = {}
    for name in known:
        by_parent.setdefault(parent_of(name), []).append(name)

    for name in sorted(known):
        parent = parent_of(name)
        if parent in known:
            graph.add_edge(parent, name)
    for siblings in by_parent.values():
        ordered = sorted(siblings)
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                graph.add_edge(first, second)

    for source, target in explicit_edges:
        if source not in known or target not in known:
            raise TopologyError(
                "explicit edge %r -> %r references an unknown service"
                % (source, target)
            )
        graph.add_edge(source, target)
    return graph
