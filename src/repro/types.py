"""Common lightweight types shared across the repro packages.

The types here are deliberately dependency-free (NumPy only) so that any
subpackage may import them without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "ChangeKind",
    "LaunchMode",
    "KpiCharacter",
    "Verdict",
    "DetectedChange",
    "Assessment",
    "as_float_array",
]


class ChangeKind(enum.Enum):
    """The two software-change types FUNNEL assesses (paper section 2.1)."""

    SOFTWARE_UPGRADE = "software_upgrade"
    CONFIG_CHANGE = "config_change"


class LaunchMode(enum.Enum):
    """How a software change is rolled out (paper sections 1 and 3.2.4)."""

    DARK = "dark"
    """Dark Launching: deployed to a subset of servers first, leaving
    cservers/cinstances available as a control group."""

    FULL = "full"
    """Full Launching: deployed to all servers at once; the control group
    must come from 30 days of historical measurements instead."""


class KpiCharacter(enum.Enum):
    """KPI archetypes used throughout the paper's evaluation (section 4.2.1)."""

    SEASONAL = "seasonal"
    STATIONARY = "stationary"
    VARIABLE = "variable"


class Verdict(enum.Enum):
    """Outcome of FUNNEL's per-item assessment (Fig. 3 terminal states)."""

    NO_CHANGE = "no_change"
    """No behaviour change was detected in the KPI."""

    CAUSED_BY_CHANGE = "caused_by_change"
    """A behaviour change was detected and attributed to the software
    change by the DiD comparison."""

    OTHER_REASONS = "other_reasons"
    """A behaviour change was detected but the control-group comparison
    attributed it to other factors (step 10 in Fig. 3)."""

    SEASONALITY = "seasonality"
    """A behaviour change was detected but the historical comparison
    attributed it to time-of-day / day-of-week effects (step 11)."""

    @property
    def positive(self) -> bool:
        """Whether this verdict reports a software-change-induced change."""
        return self is Verdict.CAUSED_BY_CHANGE


@dataclass(frozen=True)
class DetectedChange:
    """A behaviour change found by a change-point detector.

    Attributes:
        index: sample index (time-bin) at which the change was *declared*.
        start_index: estimated sample index at which the change *started*.
        score: the detector's change score at declaration time.
        kind: ``"level_shift"`` or ``"ramp"`` (paper Fig. 2), or
            ``"unclassified"`` when the detector does not classify.
        direction: +1 for an increase, -1 for a decrease, 0 if unknown.
    """

    index: int
    start_index: int
    score: float
    kind: str = "unclassified"
    direction: int = 0

    def __post_init__(self) -> None:
        if self.start_index > self.index:
            raise ValueError(
                "change start %d cannot follow its detection at %d"
                % (self.start_index, self.index)
            )

    @property
    def delay(self) -> int:
        """Detection delay in time-bins (paper section 4.4)."""
        return self.index - self.start_index


@dataclass(frozen=True)
class Assessment:
    """FUNNEL's full answer for one (change, entity, KPI) item.

    Attributes:
        verdict: terminal state of the Fig. 3 decision flow.
        change: the underlying detection, if any behaviour change was found.
        did_estimate: the DiD impact estimator ``alpha`` (Eq. 16), when a
            control-group comparison ran; ``None`` otherwise.
        control: which control group was used: ``"peers"`` for
            cservers/cinstances, ``"history"`` for the 30-day baseline,
            ``None`` when no change was detected.
    """

    verdict: Verdict
    change: Optional[DetectedChange] = None
    did_estimate: Optional[float] = None
    control: Optional[str] = None
    notes: tuple = field(default=())

    @property
    def positive(self) -> bool:
        """Whether the item is reported as impacted by the software change."""
        return self.verdict.positive


def as_float_array(values: Sequence[float], name: str = "series") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array.

    Raises:
        repro.exceptions.ParameterError: if the input is not 1-dimensional
            or contains non-finite entries.
    """
    from .exceptions import ParameterError

    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ParameterError("%s must be 1-D, got shape %s" % (name, arr.shape))
    if arr.size and not np.all(np.isfinite(arr)):
        raise ParameterError("%s contains NaN or infinite values" % name)
    return arr
