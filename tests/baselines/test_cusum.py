"""Tests for the CUSUM (MERCURY) baseline."""

import numpy as np
import pytest

from repro.baselines.cusum import CusumDetector, CusumParams
from repro.exceptions import InsufficientDataError, ParameterError


class TestCusumParams:
    def test_paper_window(self):
        assert CusumParams().window == 60      # W_CUSUM = 60 (section 4.1)

    def test_calibration_is_half_window(self):
        assert CusumParams(window=60).calibration == 30

    @pytest.mark.parametrize("kwargs", [
        dict(window=4), dict(slack=-0.1), dict(threshold=0.0),
        dict(n_bootstrap=-1), dict(confidence=0.0), dict(confidence=1.5),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            CusumParams(**kwargs)


class TestStatistic:
    def test_zero_on_constant(self):
        detector = CusumDetector(CusumParams(window=20))
        # Constant calibration yields sigma -> epsilon but z = 0 exactly.
        assert detector.statistic_for_window(np.full(20, 5.0)) == 0.0

    def test_grows_with_shift_size(self, rng):
        detector = CusumDetector(CusumParams(window=40))
        base = 10.0 + 0.5 * rng.normal(size=40)
        small = base.copy()
        small[25:] += 1.0
        large = base.copy()
        large[25:] += 4.0
        assert (detector.statistic_for_window(large)
                > detector.statistic_for_window(small))

    def test_two_sided(self, rng):
        detector = CusumDetector(CusumParams(window=40))
        base = 10.0 + 0.5 * rng.normal(size=40)
        down = base.copy()
        down[25:] -= 4.0
        assert detector.statistic_for_window(down) > 2.0

    def test_short_window_raises(self, rng):
        detector = CusumDetector()
        with pytest.raises(InsufficientDataError):
            detector.statistic_for_window(rng.normal(size=30))

    def test_accumulation_beats_instant_deviation(self, rng):
        """A persistent 1-sigma shift accumulates past a 3-sigma spike —
        the defining property of CUSUM."""
        detector = CusumDetector(CusumParams(window=60))
        persistent = rng.normal(size=60)
        persistent[30:] += 1.5
        spiky = rng.normal(size=60)
        spiky[45] += 3.0
        assert (detector.statistic_for_window(persistent)
                > detector.statistic_for_window(spiky))


class TestDetect:
    def test_detects_step(self, rng):
        x = 10.0 + 0.4 * rng.normal(size=200)
        x[120:] += 3.0
        changes = CusumDetector().detect(x, first_only=True)
        assert changes
        assert changes[0].index >= 120

    def test_long_delay_for_small_shift(self, rng):
        """Crossing h takes ~h/shift samples: CUSUM's delay problem."""
        params = CusumParams(threshold=20.0, n_bootstrap=0)
        x = 10.0 + 0.5 * rng.normal(size=300)
        x[150:] += 1.0             # 2-sigma shift
        changes = CusumDetector(params).detect(x, first_only=True)
        if changes:
            assert changes[0].index - 150 > 5

    def test_quiet_series_no_detection(self, rng):
        x = 10.0 + 0.4 * rng.normal(size=200)
        detector = CusumDetector(CusumParams(threshold=15.0))
        assert detector.detect(x, first_only=True) == []

    def test_scores_normalised_by_threshold(self, rng):
        x = 10.0 + 0.4 * rng.normal(size=100)
        x[60:] += 5.0
        detector = CusumDetector()
        scores = detector.scores(x)
        assert scores.shape == x.shape
        assert scores[70:].max() > 1.0

    def test_bootstrap_rejects_shuffled_noise(self, rng):
        detector = CusumDetector(CusumParams(n_bootstrap=200), seed=3)
        noise = rng.normal(size=60)
        x = np.sort(noise)           # maximally trend-like arrangement
        assert detector._bootstrap_significant(x)
        # Plain noise: the shuffle distribution covers the observed range.
        assert not detector._bootstrap_significant(noise)

    def test_deterministic_given_seed(self, rng):
        x = 10.0 + 0.4 * rng.normal(size=150)
        x[100:] += 3.0
        a = CusumDetector(seed=9).detect(x)
        b = CusumDetector(seed=9).detect(x)
        assert a == b

    def test_series_shorter_than_window_raises(self, rng):
        with pytest.raises(InsufficientDataError):
            CusumDetector().detect(rng.normal(size=40))
