"""Shared contract tests for all detector ``scores()`` surfaces.

Every detector exposes a per-index statistic normalised so that
``scores[t] > 1`` means "the declaration threshold was crossed at t" —
the calibration sweep and the ROC analysis both rely on this contract.
"""

import numpy as np
import pytest

from repro.baselines.cusum import CusumDetector, CusumParams
from repro.baselines.mrls import MrlsDetector, MrlsParams

DETECTORS = [
    ("cusum", lambda: CusumDetector(CusumParams(threshold=8.0))),
    ("mrls", lambda: MrlsDetector(MrlsParams(threshold=4.0))),
]


@pytest.mark.parametrize("name,factory", DETECTORS)
class TestScoresContract:
    def test_same_length_as_input(self, name, factory, rng):
        x = 10.0 + 0.4 * rng.normal(size=90)
        scores = factory().scores(x)
        assert scores.shape == x.shape

    def test_warmup_prefix_zero(self, name, factory, rng):
        detector = factory()
        x = 10.0 + 0.4 * rng.normal(size=90)
        scores = detector.scores(x)
        warmup = detector.params.window - 1
        assert np.all(scores[:warmup] == 0.0)

    def test_nonnegative(self, name, factory, rng):
        x = 10.0 + 0.4 * rng.normal(size=90)
        assert np.all(factory().scores(x) >= 0.0)

    def test_crossing_matches_statistic(self, name, factory, rng):
        """scores[t] > 1 iff the raw statistic exceeds the threshold."""
        detector = factory()
        x = 10.0 + 0.4 * rng.normal(size=120)
        x[80:] += 4.0
        scores = detector.scores(x)
        w = detector.params.window
        for end in (90, 100, 110):
            raw = detector.statistic_for_window(x[end - w:end])
            assert scores[end - 1] == pytest.approx(
                raw / detector.params.threshold)

    def test_rises_after_change(self, name, factory, rng):
        detector = factory()
        x = 10.0 + 0.4 * rng.normal(size=160)
        x[100:] += 4.0
        scores = detector.scores(x)
        pre = scores[detector.params.window:99].max()
        post = scores[101:130].max()
        assert post > pre


class TestCalibrationStatistic:
    def test_peak_post_statistic_ignores_pre_change(self, rng):
        from repro.eval.calibrate import _peak_post_statistic
        from repro.synthetic.dataset import CorpusSpec, EvaluationCorpus

        item = next(iter(EvaluationCorpus(CorpusSpec(scale=0.01,
                                                     seed=13))))
        detector = CusumDetector()
        peak = _peak_post_statistic(detector, item)
        scores = detector.scores(item.treated_aggregate)
        raw = scores * detector.params.threshold
        assert peak == pytest.approx(raw[item.change_index:].max())
        assert peak <= raw.max() + 1e-12
