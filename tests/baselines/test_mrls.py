"""Tests for the MRLS (PRISM) baseline."""

import numpy as np
import pytest

from repro.baselines.mrls import MrlsDetector, MrlsParams
from repro.exceptions import InsufficientDataError, ParameterError


class TestMrlsParams:
    def test_paper_window(self):
        assert MrlsParams().window == 32      # W_MRLS = 32 (section 4.1)

    @pytest.mark.parametrize("kwargs", [
        dict(window=4), dict(scales=()), dict(scales=(0,)),
        dict(scales=(16,)), dict(recent=0), dict(threshold=0.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            MrlsParams(**kwargs)


class TestStatistic:
    def test_low_on_noise(self, rng):
        detector = MrlsDetector()
        values = [detector.statistic_for_window(
            10.0 + 0.3 * np.random.default_rng(s).normal(size=32))
            for s in range(10)]
        assert np.median(values) < 2.0

    def test_high_on_outsized_spike(self, rng):
        """The sparse channel fires on spikes — MRLS's reported weakness
        on variable KPIs (Table 1)."""
        detector = MrlsDetector()
        x = 10.0 + 0.3 * rng.normal(size=32)
        x[28] += 4.0           # ~13-sigma one-off spike near the tail
        assert detector.statistic_for_window(x) > 3.0

    def test_aged_step_scores_higher_than_young_step(self, rng):
        """The l1 absorption lag: a shift scores low while young."""
        detector = MrlsDetector()
        base = 10.0 + 0.3 * rng.normal(size=64)
        young = base.copy()
        young[61:] += 1.2      # 3 post-change samples in the window
        aged = base.copy()
        aged[48:] += 1.2       # 16 post-change samples
        young_stat = detector.statistic_for_window(young[-32:])
        aged_stat = detector.statistic_for_window(aged[-32:])
        assert aged_stat > young_stat

    def test_smooth_trend_tolerated(self, rng):
        """A locally-linear seasonal climb stays inside the local
        subspace (MRLS's strength on smooth seasonal data)."""
        detector = MrlsDetector()
        t = np.arange(32, dtype=float)
        x = 10.0 + 0.05 * t + 0.3 * rng.normal(size=32)
        assert detector.statistic_for_window(x) < 3.0

    def test_short_window_raises(self, rng):
        with pytest.raises(InsufficientDataError):
            MrlsDetector().statistic_for_window(rng.normal(size=20))

    def test_spike_weight_scales_spike_channel(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=32)
        x[29] += 5.0
        low = MrlsDetector(MrlsParams(spike_weight=0.1))
        high = MrlsDetector(MrlsParams(spike_weight=1.0))
        assert (high.statistic_for_window(x)
                > low.statistic_for_window(x))

    def test_sparsity_scale_slows_absorption(self, rng):
        """Lower RPCA sparsity weight keeps a young shift in the sparse
        component longer (ablation knob)."""
        base = 10.0 + 0.3 * rng.normal(size=64)
        base[54:] += 1.5
        window = base[-32:]
        default = MrlsDetector(MrlsParams())
        slow = MrlsDetector(MrlsParams(rpca_sparsity_scale=0.5))
        # Same input; the slow variant sees less of the shift in its
        # low-rank channel.  (Both still compute a finite statistic.)
        assert np.isfinite(default.statistic_for_window(window))
        assert np.isfinite(slow.statistic_for_window(window))


class TestDetect:
    def test_detects_step(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=160)
        x[100:] += 2.0
        changes = MrlsDetector().detect(x, first_only=True)
        assert changes
        assert changes[0].index >= 100
        assert changes[0].direction == 1

    def test_quiet_series_no_detection(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=160)
        assert MrlsDetector(MrlsParams(threshold=6.0)).detect(
            x, first_only=True) == []

    def test_scores_shape(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=80)
        scores = MrlsDetector().scores(x)
        assert scores.shape == x.shape
        assert np.all(scores[:31] == 0.0)

    def test_short_series_raises(self, rng):
        with pytest.raises(InsufficientDataError):
            MrlsDetector().detect(rng.normal(size=20))

    def test_iterated_svd_cost_dominates(self, rng):
        """MRLS spends orders of magnitude more per window than a plain
        SVD — the Table 2 mechanism."""
        import time
        x = 10.0 + 0.3 * rng.normal(size=32)
        detector = MrlsDetector()
        t0 = time.perf_counter()
        detector.statistic_for_window(x)
        mrls_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        np.linalg.svd(np.outer(x[:8], x[:8]))
        svd_time = time.perf_counter() - t0
        assert mrls_time > 5 * svd_time
