"""Tests for Robust PCA (inexact ALM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rpca import robust_pca
from repro.exceptions import ConvergenceError, ParameterError


def low_rank_plus_sparse(rng, m=30, n=40, rank=2, n_outliers=20,
                         outlier_scale=10.0):
    u = rng.normal(size=(m, rank))
    v = rng.normal(size=(rank, n))
    low = u @ v
    sparse = np.zeros((m, n))
    idx = rng.choice(m * n, size=n_outliers, replace=False)
    sparse.flat[idx] = outlier_scale * rng.choice([-1.0, 1.0],
                                                  size=n_outliers)
    return low, sparse


class TestRobustPca:
    def test_exact_recovery(self, rng):
        low, sparse = low_rank_plus_sparse(rng)
        result = robust_pca(low + sparse)
        assert result.converged
        np.testing.assert_allclose(result.low_rank, low, atol=1e-3)
        np.testing.assert_allclose(result.sparse, sparse, atol=1e-3)

    def test_decomposition_sums_to_input(self, rng):
        low, sparse = low_rank_plus_sparse(rng)
        d = low + sparse
        result = robust_pca(d)
        np.testing.assert_allclose(result.low_rank + result.sparse, d,
                                   atol=1e-5)

    def test_rank_recovered(self, rng):
        low, sparse = low_rank_plus_sparse(rng, rank=3)
        result = robust_pca(low + sparse)
        assert result.rank == 3

    def test_pure_low_rank_gives_empty_sparse(self, rng):
        low, _ = low_rank_plus_sparse(rng, n_outliers=0)
        result = robust_pca(low)
        assert np.abs(result.sparse).max() < 1e-4

    def test_zero_matrix(self):
        result = robust_pca(np.zeros((5, 6)))
        assert result.converged
        assert result.rank == 0
        assert np.all(result.sparse == 0.0)

    def test_spike_in_time_series_trajectory_goes_to_sparse(self, rng):
        from repro.core.hankel import hankel_matrix
        x = 10.0 + 0.1 * rng.normal(size=40)
        x[20] += 8.0
        trajectory = hankel_matrix(x, window=8, count=33)
        result = robust_pca(trajectory)
        # The spike's anti-diagonal dominates the sparse component.
        spike_cells = [abs(result.sparse[i, 20 - i]) for i in range(8)]
        assert max(spike_cells) > 1.0

    def test_invalid_inputs(self, rng):
        with pytest.raises(ParameterError):
            robust_pca(np.zeros(5))
        with pytest.raises(ParameterError):
            robust_pca(np.zeros((0, 3)))
        with pytest.raises(ParameterError):
            robust_pca(rng.normal(size=(3, 3)), sparsity=-1.0)
        bad = rng.normal(size=(3, 3))
        bad[0, 0] = np.inf
        with pytest.raises(ParameterError):
            robust_pca(bad)

    def test_strict_mode_raises_on_no_convergence(self, rng):
        d = rng.normal(size=(20, 20))
        with pytest.raises(ConvergenceError):
            robust_pca(d, max_iterations=1, strict=True)

    def test_nonstrict_returns_partial(self, rng):
        d = rng.normal(size=(20, 20))
        result = robust_pca(d, max_iterations=1)
        assert not result.converged
        assert result.iterations == 1

    def test_higher_sparsity_weight_means_smaller_sparse(self, rng):
        low, sparse = low_rank_plus_sparse(rng)
        d = low + sparse
        loose = robust_pca(d, sparsity=0.05)
        tight = robust_pca(d, sparsity=0.8)
        assert (np.count_nonzero(np.abs(tight.sparse) > 1e-6)
                <= np.count_nonzero(np.abs(loose.sparse) > 1e-6))

    @given(st.integers(0, 2 ** 31), st.integers(5, 15), st.integers(5, 15))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_property(self, seed, m, n):
        """L + S == D always holds at convergence tolerance."""
        rng = np.random.default_rng(seed)
        u = rng.normal(size=(m, 1))
        v = rng.normal(size=(1, n))
        d = u @ v
        result = robust_pca(d, max_iterations=300)
        residual = np.linalg.norm(d - result.low_rank - result.sparse)
        denominator = np.linalg.norm(d) or 1.0
        assert residual / denominator < 1e-5
