"""Tests for the week-over-week seasonal baseline."""

import numpy as np
import pytest

from repro.baselines.wow import WeekOverWeekDetector, WowParams
from repro.exceptions import InsufficientDataError, ParameterError
from repro.synthetic.patterns import SeasonalPattern
from repro.telemetry.timeseries import MINUTE


def daily_params(**kwargs):
    defaults = dict(period=1440, n_periods=3, threshold_sigmas=4.0,
                    persistence=7)
    defaults.update(kwargs)
    return WowParams(**defaults)


@pytest.fixture
def seasonal_series(rng):
    """5 simulated days of a strongly seasonal KPI at 1-min bins."""
    pattern = SeasonalPattern(base=200.0, daily_amplitude=0.6,
                              noise_sigma=3.0, weekend_factor=1.0)
    timestamps = np.arange(5 * 1440, dtype=np.int64) * MINUTE
    return pattern.sample(timestamps, rng)


class TestWowParams:
    def test_defaults_weekly(self):
        assert WowParams().period == 10080

    @pytest.mark.parametrize("kwargs", [
        dict(period=1), dict(n_periods=0), dict(threshold_sigmas=0.0),
        dict(persistence=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            daily_params(**kwargs)


class TestDeviations:
    def test_seasonal_pattern_cancelled(self, seasonal_series):
        detector = WeekOverWeekDetector(daily_params())
        z = detector.deviations(seasonal_series)
        active = z[3 * 1440:]
        # The diurnal swing is tens of sigmas of the flat noise; week-
        # over-week it disappears almost entirely.
        assert np.percentile(np.abs(active), 95) < 4.0

    def test_shift_shows_up(self, seasonal_series):
        x = seasonal_series.copy()
        x[4 * 1440 + 720:] -= 80.0
        detector = WeekOverWeekDetector(daily_params())
        z = detector.deviations(x)
        assert np.abs(z[4 * 1440 + 730:]).max() > 4.0

    def test_needs_history(self, rng):
        detector = WeekOverWeekDetector(daily_params())
        with pytest.raises(InsufficientDataError):
            detector.deviations(rng.normal(size=3 * 1440))

    def test_zero_where_no_history(self, seasonal_series):
        detector = WeekOverWeekDetector(daily_params())
        z = detector.deviations(seasonal_series)
        assert np.all(z[:3 * 1440] == 0.0)


class TestDetect:
    def test_detects_seasonal_incident(self, seasonal_series):
        x = seasonal_series.copy()
        incident = 4 * 1440 + 800
        x[incident:] -= 100.0
        detector = WeekOverWeekDetector(daily_params())
        changes = detector.detect(x, first_only=True)
        assert changes
        assert incident <= changes[0].index <= incident + 30
        assert changes[0].direction == -1

    def test_no_false_alarm_on_clean_seasonality(self, seasonal_series):
        detector = WeekOverWeekDetector(daily_params())
        assert detector.detect(seasonal_series, first_only=True) == []

    def test_one_off_spike_rejected(self, seasonal_series):
        x = seasonal_series.copy()
        x[4 * 1440 + 500:4 * 1440 + 503] += 150.0
        detector = WeekOverWeekDetector(daily_params())
        assert detector.detect(x, first_only=True) == []

    def test_persistence_boundary(self, seasonal_series):
        x = seasonal_series.copy()
        at = 4 * 1440 + 500
        x[at:at + 10] += 150.0          # 10 > persistence 7
        detector = WeekOverWeekDetector(daily_params())
        changes = detector.detect(x, first_only=True)
        assert changes
        assert changes[0].index == at + 6

    def test_daily_event_not_flagged(self, rng):
        """A sharp recurring intraday event fools raw detectors but not
        week-over-week — the same property FUNNEL gets from DiD."""
        pattern = SeasonalPattern(base=200.0, daily_amplitude=0.5,
                                  noise_sigma=3.0, weekend_factor=1.0,
                                  daily_events=((9 * 3600, 11 * 3600,
                                                 0.4),))
        timestamps = np.arange(5 * 1440, dtype=np.int64) * MINUTE
        x = pattern.sample(timestamps, rng)
        detector = WeekOverWeekDetector(daily_params())
        assert detector.detect(x, first_only=True) == []
