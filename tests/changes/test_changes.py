"""Tests for software-change records, the change log and rollouts."""

import pytest

from repro.changes.change import ConfigScope, SoftwareChange, next_change_id
from repro.changes.log import ChangeLog
from repro.changes.rollout import RolloutPlan, RolloutPolicy, plan_rollout
from repro.exceptions import ChangeLogError, ParameterError
from repro.types import ChangeKind, LaunchMode


def make_change(change_id="c1", service="svc.a", hosts=("h1",), at=0,
                kind=ChangeKind.SOFTWARE_UPGRADE, **kwargs):
    return SoftwareChange(change_id=change_id, kind=kind, service=service,
                          hostnames=tuple(hosts), at_time=at, **kwargs)


class TestSoftwareChange:
    def test_unique_ids(self):
        assert next_change_id() != next_change_id()

    def test_launch_mode_dark(self):
        change = make_change(hosts=("h1",))
        assert change.launch_mode(("h1", "h2")) is LaunchMode.DARK

    def test_launch_mode_full(self):
        change = make_change(hosts=("h1", "h2"))
        assert change.launch_mode(("h1", "h2")) is LaunchMode.FULL

    def test_config_scope_valid(self):
        change = make_change(kind=ChangeKind.CONFIG_CHANGE,
                             config_scope=ConfigScope.SERVICE)
        assert change.config_scope == "service"

    def test_config_scope_invalid(self):
        with pytest.raises(ChangeLogError):
            make_change(kind=ChangeKind.CONFIG_CHANGE,
                        config_scope="kernel")

    def test_upgrade_with_scope_rejected(self):
        with pytest.raises(ChangeLogError):
            make_change(kind=ChangeKind.SOFTWARE_UPGRADE,
                        config_scope=ConfigScope.OS)

    @pytest.mark.parametrize("kwargs", [
        dict(change_id=""), dict(service=""), dict(hosts=()),
        dict(hosts=("h1", "h1")),
    ])
    def test_invalid_records(self, kwargs):
        with pytest.raises(ChangeLogError):
            make_change(**kwargs)


class TestChangeLog:
    def test_record_and_get(self):
        log = ChangeLog()
        change = make_change()
        log.record(change)
        assert log.get("c1") is change
        assert len(log) == 1

    def test_duplicate_id_rejected(self):
        log = ChangeLog()
        log.record(make_change())
        with pytest.raises(ChangeLogError):
            log.record(make_change())

    def test_concurrency_guard(self):
        log = ChangeLog(concurrency_guard_seconds=3600)
        log.record(make_change("c1", at=0))
        with pytest.raises(ChangeLogError):
            log.record(make_change("c2", at=1800))
        log.record(make_change("c3", at=3600))       # exactly at guard: ok
        # Different services are never in conflict.
        log.record(make_change("c4", service="svc.b", at=10))

    def test_guard_disabled(self):
        log = ChangeLog(concurrency_guard_seconds=0)
        log.record(make_change("c1", at=0))
        log.record(make_change("c2", at=1))
        assert len(log) == 2

    def test_iteration_time_ordered(self):
        log = ChangeLog(concurrency_guard_seconds=0)
        log.record(make_change("late", at=100))
        log.record(make_change("early", at=5))
        assert [c.change_id for c in log] == ["early", "late"]

    def test_in_window(self):
        log = ChangeLog(concurrency_guard_seconds=0)
        for i, at in enumerate((0, 100, 200)):
            log.record(make_change("c%d" % i, at=at))
        window = log.in_window(50, 200)
        assert [c.change_id for c in window] == ["c1"]

    def test_latest_before(self):
        log = ChangeLog()
        log.record(make_change("c1", at=0))
        log.record(make_change("c2", at=7200))
        latest = log.latest_before("svc.a", 7000)
        assert latest.change_id == "c1"
        assert log.latest_before("svc.a", 0) is None

    def test_unknown_id_raises(self):
        with pytest.raises(ChangeLogError):
            ChangeLog().get("zzz")


class TestRollout:
    def test_dark_plan_splits(self):
        plan = plan_rollout(["h%d" % i for i in range(8)],
                            RolloutPolicy(treated_fraction=0.25, seed=1))
        assert plan.mode is LaunchMode.DARK
        assert len(plan.treated) == 2
        assert len(plan.control) == 6
        assert not set(plan.treated) & set(plan.control)

    def test_full_plan(self):
        plan = plan_rollout(["h1", "h2"],
                            RolloutPolicy(mode=LaunchMode.FULL))
        assert plan.mode is LaunchMode.FULL
        assert plan.control == ()

    def test_dark_always_leaves_control(self):
        plan = plan_rollout(["h1", "h2"],
                            RolloutPolicy(treated_fraction=0.99, seed=0))
        assert len(plan.control) >= 1

    def test_single_server_dark_rejected(self):
        with pytest.raises(ParameterError):
            plan_rollout(["h1"], RolloutPolicy())

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            plan_rollout([])

    def test_deterministic_with_seed(self):
        hosts = ["h%d" % i for i in range(10)]
        p1 = plan_rollout(hosts, RolloutPolicy(seed=4))
        p2 = plan_rollout(hosts, RolloutPolicy(seed=4))
        assert p1.treated == p2.treated

    def test_invalid_fraction(self):
        with pytest.raises(ParameterError):
            RolloutPolicy(treated_fraction=1.0)

    def test_plan_to_change(self):
        plan = plan_rollout(["h1", "h2", "h3", "h4"],
                            RolloutPolicy(seed=2))
        change = plan.to_change("svc.a", ChangeKind.CONFIG_CHANGE,
                                at_time=500,
                                config_scope=ConfigScope.SERVICE)
        assert change.service == "svc.a"
        assert change.hostnames == plan.treated
        assert change.at_time == 500

    def test_inconsistent_plan_rejected(self):
        with pytest.raises(ChangeLogError):
            RolloutPlan(treated=("h1",), control=("h1",),
                        mode=LaunchMode.DARK)
        with pytest.raises(ChangeLogError):
            RolloutPlan(treated=("h1",), control=(), mode=LaunchMode.DARK)
        with pytest.raises(ChangeLogError):
            RolloutPlan(treated=("h1",), control=("h2",),
                        mode=LaunchMode.FULL)
