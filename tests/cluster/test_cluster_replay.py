"""End-to-end cluster guarantees: determinism, recovery, telemetry.

The headline contract: the merged cluster verdict file is
**byte-identical** to the single-process ``live-replay`` output under
any shard count, and stays byte-identical after a shard is killed or
hangs mid-run and is restarted from its checkpoint.  Alongside it, the
operator surfaces: worker spans and counters absorbed into the parent
context, per-shard reports namespaced by shard id, and gauge-like
fields (queue depths) max-merged rather than summed.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import (ClusterVerdictBus, cluster_replay_scenario,
                           merge_reports)
from repro.engine.fleet import FleetScenarioSpec
from repro.exceptions import ClusterError
from repro.live import (ClusterConfig, JsonlVerdictSink, parity_live_config,
                        replay_scenario, verdict_sort_key)
from repro.obs import ObsContext

SPEC = FleetScenarioSpec(n_services=3, n_servers=12, n_changes=3,
                         impact_fraction=0.5, history_days=1,
                         window_bins=80, change_offset=40, seed=11)
FLUSH_BINS = 4


def _write_sorted(verdicts, path):
    with JsonlVerdictSink(str(path)) as sink:
        for verdict in sorted(verdicts, key=verdict_sort_key):
            sink(verdict)


@pytest.fixture(scope="module")
def single_process(tmp_path_factory):
    """The reference run: single process, canonically sorted bytes."""
    config = parity_live_config(SPEC)
    report = replay_scenario(spec=SPEC, live_config=config,
                             flush_bins=FLUSH_BINS)
    path = tmp_path_factory.mktemp("single") / "verdicts.jsonl"
    _write_sorted(report.verdicts, path)
    return report, path.read_bytes()


def _cluster(tmp_path, n_shards, **kwargs):
    cluster = kwargs.pop("cluster", None) or ClusterConfig(
        n_shards=n_shards, checkpoint_every_ticks=10)
    merged = tmp_path / "merged.jsonl"
    report = cluster_replay_scenario(
        spec=SPEC, live_config=parity_live_config(SPEC),
        flush_bins=FLUSH_BINS, cluster=cluster,
        workdir=str(tmp_path / "work"), verdicts_path=str(merged),
        **kwargs)
    return report, merged.read_bytes()


def test_merged_output_is_byte_identical_across_shard_counts(
        single_process, tmp_path):
    _, reference = single_process
    for n_shards in (1, 3):
        report, merged = _cluster(tmp_path / str(n_shards), n_shards)
        assert merged == reference
        assert report.duplicate_verdicts == 0
        assert report.restarts == {k: 0 for k in range(n_shards)}


def test_killed_shard_recovers_to_identical_bytes(single_process, tmp_path):
    _, reference = single_process
    report, merged = _cluster(tmp_path, 4, kill_shard=1, kill_at_tick=15)
    assert merged == reference
    assert report.restarts[1] == 1
    assert sum(report.restarts.values()) == 1
    # The crashed attempt left a readable (possibly torn) verdict file
    # plus a checkpoint the replacement resumed from.
    shard_dir = os.path.join(report.workdir, "shard-1")
    assert os.path.exists(os.path.join(shard_dir, "verdicts-a0.jsonl"))
    assert os.path.exists(os.path.join(shard_dir, "verdicts-a1.jsonl"))
    assert os.path.exists(os.path.join(shard_dir, "checkpoint.jsonl"))


def test_hung_shard_is_terminated_and_recovers(single_process, tmp_path):
    _, reference = single_process
    cluster = ClusterConfig(n_shards=3, checkpoint_every_ticks=10,
                            heartbeat_timeout_seconds=2.0)
    report, merged = _cluster(tmp_path, 3, cluster=cluster,
                              hang_shard=2, hang_at_tick=20)
    assert merged == reference
    assert report.restarts[2] == 1


def test_restart_budget_exhaustion_raises(tmp_path):
    # max_restarts=0: the first crash must surface as a ClusterError.
    cluster = ClusterConfig(n_shards=2, max_restarts=0,
                            checkpoint_every_ticks=10)
    with pytest.raises(ClusterError):
        cluster_replay_scenario(
            spec=SPEC, live_config=parity_live_config(SPEC),
            flush_bins=FLUSH_BINS, cluster=cluster,
            workdir=str(tmp_path / "work"),
            kill_shard=0, kill_at_tick=5)


def test_merged_verdicts_match_offline_engine(tmp_path):
    report, _ = _cluster(tmp_path, 3, check_offline=True)
    assert report.parity_ok is True


def test_worker_telemetry_lands_in_parent_context(single_process, tmp_path):
    single, _ = single_process
    obs = ObsContext()
    report, _ = _cluster(tmp_path, 3, obs=obs)
    names = [span.name for span in obs.spans()]
    assert "cluster_replay" in names
    assert names.count("live_replay") == 3  # one per shard, adopted
    assert "live_change" in names
    # Counters sum losslessly across shards: every published verdict is
    # visible in the parent registry exactly once.
    counter = obs.metrics.get("repro_live_verdicts_total")
    assert counter is not None and counter.total() == len(report.verdicts)
    assert len(report.verdicts) == len(single.verdicts)


def test_reports_are_namespaced_by_shard_and_peaks_not_summed(
        single_process, tmp_path):
    _, _ = single_process
    report, _ = _cluster(tmp_path, 3, health=True)
    merged = report.service_report
    for shard_id, doc in merged["shards"].items():
        assert doc["shard_id"] == int(shard_id)
    peaks = merged["peak_queue_depth"]
    assert peaks["max"] == max(peaks["per_shard"].values())
    assert set(peaks["per_shard"]) == {"0", "1", "2"}
    # Every heartbeat record carries its shard id.
    for shard_id in range(3):
        path = os.path.join(report.workdir, "shard-%d" % shard_id,
                            "heartbeat.jsonl")
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert records
        assert all(record.get("shard") == shard_id for record in records
                   if record.get("kind", "heartbeat") == "heartbeat")


def test_fan_in_bus_deduplicates_and_counts():
    from repro.live.bus import LiveVerdict
    verdict = LiveVerdict(change_id="chg-1", entity_type="server",
                          entity="host-1", metric="cpu", verdict="impact",
                          reason="declared", emitted_at=100)
    other = LiveVerdict(change_id="chg-1", entity_type="server",
                        entity="host-2", metric="cpu", verdict="no_change",
                        reason="deadline", emitted_at=50)
    bus = ClusterVerdictBus()
    bus.collect([verdict, other])
    bus.collect([verdict])  # a crashed attempt's re-read duplicate
    merged = bus.merge()
    assert [v.entity for v in merged] == ["host-2", "host-1"]  # sorted
    assert bus.duplicates == 1


def test_merge_reports_sums_counts_and_maxes_gauges():
    merged = merge_reports({
        0: {"verdicts": 3, "closed_changes": 1, "active_changes": 0,
            "peak_queue_depth": 10, "queue_depth": 2,
            "counters": {"x": 1}, "shed_change_ids": ["chg-9"]},
        1: {"verdicts": 5, "closed_changes": 2, "active_changes": 0,
            "peak_queue_depth": 4, "queue_depth": 0,
            "counters": {"x": 2}, "shed_change_ids": []},
    }, restarts={0: 1, 1: 0}, duplicates=2)
    assert merged["verdicts"] == 8
    assert merged["closed_changes"] == 3
    assert merged["peak_queue_depth"]["max"] == 10
    assert merged["peak_queue_depth"]["per_shard"] == {"0": 10, "1": 4}
    assert merged["queue_depth"]["max"] == 2
    assert merged["counters"] == {"x": 3}
    assert merged["restarts"] == {0: 1, 1: 0}
    assert merged["duplicate_verdicts"] == 2
    assert merged["shed_change_ids"] == ["chg-9"]
