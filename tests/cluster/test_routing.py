"""Routing stability: the hash ring must be boring and stay boring.

The merged-output byte-identity guarantee rests on every process —
parent, workers, CI runners — deriving the *same* entity→shard map from
``(n_shards, replicas)`` alone.  These tests pin that map with golden
assignments (a changed blake2b recipe fails loudly), the consistent-
hashing movement bound, and the control-panel mirroring that keeps
per-shard DiD identical to the single-process run.
"""

from __future__ import annotations

import pytest

from repro.cluster.routing import HashRing, control_keys, plan_shards
from repro.engine.fleet import FleetScenarioSpec, SyntheticFleetSource
from repro.engine.planner import ENTITY_METRICS
from repro.exceptions import ParameterError
from repro.live.replay import fleet_kpi_keys
from repro.topology.impact import identify_impact_set

SPEC = FleetScenarioSpec(n_services=3, n_servers=12, n_changes=3,
                         impact_fraction=0.5, history_days=1,
                         window_bins=80, change_offset=40, seed=11)

#: Golden entity→shard assignments for ``HashRing(4, replicas=64)``.
#: These pin the blake2b recipe across processes and platforms: if any
#: of them ever changes, merged files stop being reproducible and every
#: existing shard checkpoint silently routes differently.
GOLDEN_OWNERS_4 = {
    "search.backend": 0,
    "search.cache": 1,
    "search.frontend": 1,
    "search-backend-0005": 0,
    "search-backend-0006": 1,
    "search-backend-0007": 3,
    "search.backend@search-backend-0005": 2,
}


def test_golden_assignments_pin_the_hash_recipe():
    ring = HashRing(4, replicas=64)
    assert {name: ring.owner(name) for name in GOLDEN_OWNERS_4} \
        == GOLDEN_OWNERS_4


def test_rings_are_identical_across_instances():
    a, b = HashRing(5, replicas=32), HashRing(5, replicas=32)
    names = ["host-%04d" % i for i in range(200)]
    assert [a.owner(n) for n in names] == [b.owner(n) for n in names]


def test_single_shard_owns_everything():
    ring = HashRing(1)
    assert {ring.owner("host-%04d" % i) for i in range(50)} == {0}


def test_adding_a_shard_moves_about_one_nth():
    names = ["host-%04d" % i for i in range(2000)] \
        + ["svc-%02d@host-%04d" % (i % 7, i) for i in range(2000)]
    before = HashRing(4, replicas=64)
    after = HashRing(5, replicas=64)
    moved = sum(before.owner(n) != after.owner(n) for n in names)
    fraction = moved / len(names)
    # Ideal is 1/5 = 0.20 (only entities the new shard claims move);
    # virtual nodes keep the spread near that, nowhere near a rehash
    # (which would move ~3/4 of everything).
    assert 0.10 < fraction < 0.35


def test_every_shard_gets_a_reasonable_share():
    ring = HashRing(4, replicas=64)
    names = ["host-%04d" % i for i in range(4000)]
    counts = [0] * 4
    for name in names:
        counts[ring.owner(name)] += 1
    for count in counts:
        assert 0.5 * len(names) / 4 < count < 1.7 * len(names) / 4


def test_ring_rejects_degenerate_parameters():
    with pytest.raises(ParameterError):
        HashRing(0)
    with pytest.raises(ParameterError):
        HashRing(2, replicas=0)


def test_plans_partition_changes_and_fleet_keys():
    source = SyntheticFleetSource(SPEC)
    plans = plan_shards(source, 4, replicas=64,
                        max_control_units=SPEC.max_control_units)
    ring = HashRing(4, replicas=64)
    all_keys = fleet_kpi_keys(source)

    # Every change is assessed somewhere; a change appears on a shard
    # iff that shard owns at least one of its monitored entities.
    for change in source.changes:
        impact = identify_impact_set(source.fleet, change.service,
                                     change.hostnames)
        owners = {ring.owner(entity)
                  for _, entity in impact.monitored_entities()}
        assert owners == {plan.shard_id for plan in plans
                          if change.change_id in plan.change_ids}

    # Owned fleet keys partition exactly; extras are control keys only.
    for key in all_keys:
        holders = [plan.shard_id for plan in plans if key in plan.keys]
        assert ring.owner(key.entity) in holders

    # Monitored trackers are disjoint across shards: each monitored
    # entity has exactly one owner, so no verdict is produced twice.
    for plan in plans:
        for key in plan.keys:
            if ring.owner(key.entity) == plan.shard_id:
                others = [p for p in plans if p.shard_id != plan.shard_id
                          and key in p.keys
                          and ring.owner(key.entity) == p.shard_id]
                assert not others


def test_control_keys_mirror_the_watcher_panels():
    source = SyntheticFleetSource(SPEC)
    for change in source.changes:
        impact = identify_impact_set(source.fleet, change.service,
                                     change.hostnames)
        keys = control_keys(impact, SPEC.max_control_units)
        if not impact.dark_launched:
            assert keys == []
            continue
        expected = []
        for entity_type, peers in (
                ("server", impact.control_hostnames),
                ("instance", tuple(i.name for i in impact.cinstances))):
            for metric in ENTITY_METRICS.get(entity_type, ()):
                expected.extend((entity_type, peer, metric)
                                for peer in peers[:SPEC.max_control_units])
        assert [(k.entity_type, k.entity, k.metric) for k in keys] \
            == expected
