"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh, deterministically seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def step_series(rng):
    """A noisy level shift: 4 sigma up at index 100 of 200."""
    x = 10.0 + 0.5 * rng.normal(size=200)
    x[100:] += 2.0
    return x


@pytest.fixture
def ramp_series(rng):
    """A noisy ramp: 5 sigma over 25 bins starting at index 100."""
    x = 10.0 + 0.5 * rng.normal(size=200)
    x[100:125] += np.linspace(0.1, 2.5, 25)
    x[125:] += 2.5
    return x


@pytest.fixture
def noise_series(rng):
    """Pure stationary noise, no change anywhere."""
    return 10.0 + 0.5 * rng.normal(size=200)
