"""Tests for the difference-in-difference estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.did import (DiDEstimator, DiDPanel, did_estimate,
                            historical_control_windows)
from repro.exceptions import InsufficientDataError, ParameterError


def make_panel(rng, n_treated=4, n_control=12, omega=30, effect=0.0,
               common_shift=0.0, noise=0.5, base=10.0):
    pre = base + rng.normal(0, noise, size=(n_treated + n_control, omega))
    post = pre + rng.normal(0, noise, size=pre.shape) + common_shift
    post[:n_treated] += effect
    return DiDPanel(pre[:n_treated], post[:n_treated],
                    pre[n_treated:], post[n_treated:])


class TestDiDPanel:
    def test_1d_input_promoted(self):
        panel = DiDPanel([1.0, 2.0], [3.0, 4.0], [1.0, 2.0], [1.0, 2.0])
        assert panel.n_treated == panel.n_control == 1

    def test_unit_count_mismatch_raises(self, rng):
        with pytest.raises(ParameterError):
            DiDPanel(rng.normal(size=(3, 5)), rng.normal(size=(2, 5)),
                     rng.normal(size=(4, 5)), rng.normal(size=(4, 5)))

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            DiDPanel([], [], [], [])

    def test_nan_raises(self, rng):
        bad = rng.normal(size=(2, 5))
        bad[0, 0] = np.nan
        with pytest.raises(ParameterError):
            DiDPanel(bad, bad, bad, bad)

    def test_unit_differences(self):
        panel = DiDPanel([[0.0, 0.0]], [[2.0, 4.0]],
                         [[1.0, 1.0]], [[1.0, 1.0]])
        treated, control = panel.unit_differences()
        assert treated[0] == 3.0
        assert control[0] == 0.0


class TestDiDEstimate:
    def test_recovers_injected_effect(self, rng):
        panel = make_panel(rng, effect=5.0)
        assert did_estimate(panel) == pytest.approx(5.0, abs=0.5)

    def test_common_shift_cancels(self, rng):
        """Other factors hitting both groups leave alpha ~ 0 (the DiD
        identification assumption, paper section 3.2.4)."""
        panel = make_panel(rng, effect=0.0, common_shift=8.0)
        assert abs(did_estimate(panel)) < 0.5

    def test_effect_on_top_of_common_shift(self, rng):
        panel = make_panel(rng, effect=3.0, common_shift=8.0)
        assert did_estimate(panel) == pytest.approx(3.0, abs=0.5)

    def test_negative_effect(self, rng):
        panel = make_panel(rng, effect=-4.0)
        assert did_estimate(panel) == pytest.approx(-4.0, abs=0.5)

    @given(st.integers(0, 2 ** 31), st.floats(-50, 50),
           st.floats(-50, 50))
    @settings(max_examples=30, deadline=None)
    def test_double_difference_identity_property(self, seed, effect,
                                                 common):
        """alpha == (treated post-pre) - (control post-pre), Eq. 16."""
        rng = np.random.default_rng(seed)
        panel = make_panel(rng, effect=effect, common_shift=common,
                           noise=0.1)
        treated, control = panel.unit_differences()
        expected = treated.mean() - control.mean()
        assert did_estimate(panel) == pytest.approx(expected, abs=1e-9)


class TestDiDEstimator:
    def test_alpha_matches_plain_double_difference(self, rng):
        panel = make_panel(rng, effect=2.0)
        result = DiDEstimator().fit(panel)
        assert result.alpha == pytest.approx(did_estimate(panel), abs=1e-9)

    def test_significance_on_clear_effect(self, rng):
        panel = make_panel(rng, effect=5.0, noise=0.3)
        result = DiDEstimator().fit(panel)
        assert result.p_value < 0.01
        assert result.significant(threshold=0.5)

    def test_insignificant_on_null(self, rng):
        panel = make_panel(rng, effect=0.0, noise=0.3)
        result = DiDEstimator().fit(panel)
        assert not result.significant(threshold=0.5)

    def test_normalised_alpha_scale_free(self, rng):
        panel1 = make_panel(rng, effect=5.0, noise=0.5)
        rng2 = np.random.default_rng(12345)
        panel2 = make_panel(rng2, effect=500.0, noise=50.0, base=1000.0)
        r1 = DiDEstimator().fit(panel1)
        r2 = DiDEstimator().fit(panel2)
        assert r1.normalised_alpha == pytest.approx(r2.normalised_alpha,
                                                    rel=0.5)

    def test_single_unit_groups_have_nan_se(self, rng):
        panel = DiDPanel(rng.normal(size=(1, 10)), rng.normal(size=(1, 10)),
                         rng.normal(size=(1, 10)), rng.normal(size=(1, 10)))
        result = DiDEstimator().fit(panel)
        assert math.isnan(result.std_error)
        assert math.isnan(result.p_value)

    def test_significant_requires_p_value_when_asked(self, rng):
        panel = make_panel(rng, effect=5.0, noise=0.3)
        result = DiDEstimator().fit(panel)
        assert result.significant(threshold=0.5, max_p_value=0.05)
        weak = make_panel(np.random.default_rng(7), effect=0.9, noise=3.0,
                          n_treated=2, n_control=2)
        weak_result = DiDEstimator().fit(weak)
        if math.isfinite(weak_result.p_value):
            assert (weak_result.significant(0.01, max_p_value=1e-12)
                    in (False, True))  # does not crash

    def test_docstring_example(self):
        rng = np.random.default_rng(0)
        pre = rng.normal(10.0, 0.5, size=(8, 30))
        post = pre + rng.normal(0.0, 0.5, size=(8, 30))
        post[:4] += 5.0
        panel = DiDPanel(pre[:4], post[:4], pre[4:], post[4:])
        result = DiDEstimator().fit(panel)
        assert round(result.alpha, 0) == 5.0


class TestHistoricalControlWindows:
    def _history(self, rng, days=35, samples_per_day=100, omega=10):
        n = days * samples_per_day
        return 50.0 + rng.normal(0, 1.0, size=n)

    def test_shapes(self, rng):
        x = self._history(rng)
        change = 33 * 100 + 40
        panel = historical_control_windows(x, change, omega=10, days=30,
                                           samples_per_day=100)
        assert panel.treated_pre.shape == (1, 10)
        assert panel.control_pre.shape[0] == 30
        assert panel.control_post.shape == panel.control_pre.shape

    def test_short_history_truncates_days(self, rng):
        x = self._history(rng, days=5)
        change = 4 * 100 + 50
        panel = historical_control_windows(x, change, omega=10, days=30,
                                           samples_per_day=100)
        assert 1 <= panel.control_pre.shape[0] <= 5

    def test_no_full_day_raises(self, rng):
        x = rng.normal(size=150)
        with pytest.raises(InsufficientDataError):
            historical_control_windows(x, 80, omega=10, days=30,
                                       samples_per_day=1000)

    def test_change_at_edge_raises(self, rng):
        x = self._history(rng)
        with pytest.raises(InsufficientDataError):
            historical_control_windows(x, 5, omega=10)

    def test_seasonal_alignment_cancels_diurnal_pattern(self, rng):
        """A pure daily cycle yields alpha ~ 0 (section 3.2.5)."""
        samples_per_day = 144            # 10-minute bins
        days = 32
        t = np.arange(days * samples_per_day)
        cycle = 10.0 * np.sin(2 * np.pi * t / samples_per_day)
        x = 100.0 + cycle + 0.3 * rng.normal(size=t.size)
        change = 31 * samples_per_day + 60
        panel = historical_control_windows(x, change, omega=12, days=30,
                                           samples_per_day=samples_per_day)
        assert abs(did_estimate(panel)) < 1.0
