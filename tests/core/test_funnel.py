"""Tests for the FUNNEL pipeline (Fig. 3 decision flow)."""

import numpy as np
import pytest

from repro.core.funnel import Funnel, FunnelConfig
from repro.core.rsst import ImprovedSSTParams
from repro.exceptions import ParameterError
from repro.types import Verdict


def correlated_groups(rng, n_treated=4, n_control=12, bins=200, base=50.0):
    shared = base + rng.normal(0, 1.0, size=bins)
    noise = rng.normal(0, 0.5, size=(n_treated + n_control, bins))
    series = shared + noise
    return series[:n_treated].copy(), series[n_treated:].copy()


class TestFunnelConfig:
    def test_defaults(self):
        cfg = FunnelConfig()
        assert cfg.sst.omega == 9
        assert cfg.effective_did_window == 17

    def test_explicit_did_window(self):
        assert FunnelConfig(did_window=25).effective_did_window == 25

    def test_invalid(self):
        with pytest.raises(ParameterError):
            FunnelConfig(did_threshold=0.0)
        with pytest.raises(ParameterError):
            FunnelConfig(did_window=-1)


class TestDetect:
    def test_detects_post_change_shift(self, rng):
        treated, _ = correlated_groups(rng)
        series = treated.mean(axis=0)
        series[120:] += 6.0
        changes = Funnel().detect(series, change_index=120)
        assert changes
        assert changes[0].start_index >= 119

    def test_ignores_pre_change_shift(self, rng):
        treated, _ = correlated_groups(rng)
        series = treated.mean(axis=0)
        series[50:] += 6.0          # pre-existing change
        changes = Funnel().detect(series, change_index=120)
        assert changes == []

    def test_invalid_change_index(self, rng):
        with pytest.raises(ParameterError):
            Funnel().detect(rng.normal(size=100), change_index=100)


class TestAssessWithPeers:
    def test_treated_only_impact_attributed(self, rng):
        treated, control = correlated_groups(rng)
        treated[:, 100:] += 8.0
        result = Funnel().assess(treated, 100, control=control)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE
        assert result.control == "peers"
        assert result.did_estimate > 1.0

    def test_common_event_excluded(self, rng):
        treated, control = correlated_groups(rng)
        treated[:, 100:] += 8.0
        control[:, 100:] += 8.0          # the event hits everyone
        result = Funnel().assess(treated, 100, control=control)
        assert result.verdict is Verdict.OTHER_REASONS
        assert abs(result.did_estimate) < 1.0

    def test_no_change_verdict(self, rng):
        treated, control = correlated_groups(rng)
        result = Funnel().assess(treated, 100, control=control)
        assert result.verdict is Verdict.NO_CHANGE
        assert result.change is None

    def test_negative_impact_attributed(self, rng):
        treated, control = correlated_groups(rng)
        treated[:, 100:] -= 8.0
        result = Funnel().assess(treated, 100, control=control)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE
        assert result.did_estimate < -1.0

    def test_direction_mismatch_not_attributed(self, rng):
        """A detected up-shift whose DiD says 'down' is control noise."""
        treated, control = correlated_groups(rng, n_treated=1, n_control=2)
        # Up-shift in treated AND a much larger up-shift in control: the
        # detection is positive but the relative movement is negative.
        treated[:, 100:] += 6.0
        control[:, 100:] += 14.0
        result = Funnel().assess(treated, 100, control=control)
        assert result.verdict is Verdict.OTHER_REASONS


class TestAssessWithHistory:
    def _seasonal(self, rng, bins=240):
        # A day-long cycle: the 2 h assessment window sees a steady
        # seasonal drift, the classic confounder.
        t = np.arange(bins, dtype=float)
        return 100.0 + 30.0 * np.sin(2 * np.pi * t / 1440.0)

    def test_seasonality_excluded(self, rng):
        base = self._seasonal(rng)
        today = base + rng.normal(0, 1.0, size=base.size)
        today[120:150] += 8.0            # a blip also present in history
        history = np.vstack([
            base + rng.normal(0, 1.0, size=base.size) for _ in range(30)
        ])
        history[:, 120:150] += 8.0
        result = Funnel().assess(today, 120, history=history)
        assert result.verdict in (Verdict.NO_CHANGE, Verdict.SEASONALITY)

    def test_real_impact_vs_history(self, rng):
        base = self._seasonal(rng)
        today = base + rng.normal(0, 1.0, size=base.size)
        today[120:] -= 40.0
        history = np.vstack([
            base + rng.normal(0, 1.0, size=base.size) for _ in range(30)
        ])
        result = Funnel().assess(today, 120, history=history)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE
        assert result.control == "history"

    def test_no_control_at_all_reports_with_note(self, rng):
        series = 50.0 + rng.normal(0, 0.5, size=200)
        series[100:] += 6.0
        result = Funnel().assess(series, 100)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE
        assert result.control is None
        assert result.notes


class TestConfigurationVariants:
    def test_omega5_quick_profile(self, rng):
        cfg = FunnelConfig(sst=ImprovedSSTParams(omega=5))
        treated, control = correlated_groups(rng)
        treated[:, 100:] += 8.0
        quick = Funnel(cfg).assess(treated, 100, control=control)
        slow = Funnel().assess(treated, 100, control=control)
        assert quick.verdict is Verdict.CAUSED_BY_CHANGE
        # omega = 5 declares earlier than omega = 9 (less lookahead).
        assert quick.change.index <= slow.change.index

    def test_strict_did_threshold_filters_small_effects(self, rng):
        treated, control = correlated_groups(rng)
        treated[:, 100:] += 3.0
        lenient = Funnel(FunnelConfig(did_threshold=0.5)).assess(
            treated, 100, control=control)
        strict = Funnel(FunnelConfig(did_threshold=50.0)).assess(
            treated, 100, control=control)
        assert lenient.verdict is Verdict.CAUSED_BY_CHANGE
        assert strict.verdict is Verdict.OTHER_REASONS

    def test_single_series_input(self, rng):
        series = 50.0 + rng.normal(0, 0.5, size=200)
        series[100:] += 5.0
        control = 50.0 + rng.normal(0, 0.5, size=(6, 200))
        result = Funnel().assess(series, 100, control=control)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE


class TestDetectBatch:
    def test_matches_per_series_detect(self, rng):
        stack = []
        indices = []
        for i in range(6):
            treated, _ = correlated_groups(rng)
            series = treated.mean(axis=0)
            if i % 2 == 0:
                series[120:] += rng.uniform(3.0, 7.0)
            stack.append(series)
            indices.append(120)
        stack = np.vstack(stack)
        funnel = Funnel()
        batched = funnel.detect_batch(stack, indices)
        for row in range(stack.shape[0]):
            assert batched[row] == funnel.detect(stack[row],
                                                 change_index=indices[row])
        assert any(batched[0::2])

    def test_mixed_change_indices(self, rng):
        treated, _ = correlated_groups(rng)
        a = treated.mean(axis=0).copy()
        b = treated.mean(axis=0).copy()
        a[120:] += 5.0
        b[90:] += 5.0
        funnel = Funnel()
        batched = funnel.detect_batch(np.vstack([a, b]), [120, 90])
        assert batched[0] == funnel.detect(a, change_index=120)
        assert batched[1] == funnel.detect(b, change_index=90)

    def test_baseline_stats_override(self, rng):
        treated, _ = correlated_groups(rng)
        series = treated.mean(axis=0)
        series[120:] += 5.0
        funnel = Funnel()
        from repro.core.robust import median_and_mad
        stats = median_and_mad(series[:120])
        with_stats = funnel.detect_batch(series[None, :], [120],
                                         baseline_stats=[stats])
        without = funnel.detect_batch(series[None, :], [120])
        assert with_stats == without

    def test_invalid_change_index(self, rng):
        with pytest.raises(ParameterError):
            Funnel().detect_batch(rng.normal(size=(2, 100)), [50, 100])
